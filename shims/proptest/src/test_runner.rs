//! Test execution: configuration, the deterministic RNG, and case errors.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// FNV-1a, used to derive a stable per-test seed from the test's path.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives the cases of one property test. The RNG is seeded from the
/// test's module path and name, so every run of the same binary explores
/// the same sequence of cases and failures reproduce.
#[derive(Debug)]
pub struct TestRunner {
    rng: TestRng,
    base_seed: u64,
    cases_started: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(_config: &ProptestConfig, name: &str) -> Self {
        let base_seed = fnv1a(name.as_bytes());
        TestRunner {
            rng: TestRng(StdRng::seed_from_u64(base_seed)),
            base_seed,
            cases_started: 0,
        }
    }

    /// The RNG strategies generate from.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Marks the start of the next case and returns an identifier for it
    /// (reported on failure so the case can be discussed and reproduced).
    pub fn case_seed(&mut self) -> u64 {
        let s = self.base_seed.wrapping_add(self.cases_started);
        self.cases_started += 1;
        s
    }

    /// Unwraps the RNG (handy for driving strategies outside `proptest!`).
    pub fn into_rng(self) -> TestRng {
        self.rng
    }
}

/// Why a single case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// A failed case with the given explanation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            reason: reason.into(),
        }
    }

    /// Alias of [`TestCaseError::fail`] kept for API parity: real proptest
    /// distinguishes rejections from failures, this shim does not.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for TestCaseError {}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError::fail(s)
    }
}

impl From<&str> for TestCaseError {
    fn from(s: &str) -> Self {
        TestCaseError::fail(s)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_name_dependent() {
        let cfg = ProptestConfig::default();
        let mut a = TestRunner::new(&cfg, "x::y");
        let mut b = TestRunner::new(&cfg, "x::y");
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        let mut c = TestRunner::new(&cfg, "x::z");
        assert_ne!(
            TestRunner::new(&cfg, "x::y").rng().next_u64(),
            c.rng().next_u64()
        );
        assert_ne!(a.case_seed(), a.case_seed());
    }

    #[test]
    fn error_formatting() {
        let e = TestCaseError::fail("boom");
        assert_eq!(e.to_string(), "boom");
        let from: TestCaseError = "via-from".into();
        assert_eq!(from, TestCaseError::fail("via-from"));
    }
}
