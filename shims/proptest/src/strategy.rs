//! Strategies: deterministic value generators.
//!
//! A [`Strategy`] produces one value per call from the test runner's RNG.
//! Unlike real proptest there is no shrink tree; determinism comes from
//! the per-test seed, so a failure is reproduced by rerunning the test.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// Size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// Strategy for `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn collection_vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `Option`s (≈ 3:1 odds of `Some`, matching proptest's
/// default weighting closely enough for coverage).
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `prop::option::of(strategy)`.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Uniform choice among type-erased strategies (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if no arms are given.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// Generates a string matching a small regex subset: literal characters,
/// `[a-z0-9_]`-style classes (ranges and singletons), and the quantifiers
/// `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8 repeats).
fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");

        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad {m,n} quantifier"),
                    n.trim().parse::<usize>().expect("bad {m,n} quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad {n} quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && matches!(chars[i], '?' | '*' | '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };

        let count = rng.gen_range(min..=max);
        for _ in 0..count {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    fn rng() -> TestRng {
        TestRunner::new(&ProptestConfig::default(), "strategy-tests").into_rng()
    }

    #[test]
    fn ranges_tuples_arrays() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0u8..5).generate(&mut r);
            assert!(v < 5);
            let (a, b) = (0usize..3, -2i64..=2).generate(&mut r);
            assert!(a < 3 && (-2..=2).contains(&b));
            let arr = [0usize..2, 0usize..2, 0usize..2].generate(&mut r);
            assert!(arr.iter().all(|&x| x < 2));
        }
    }

    #[test]
    fn vec_and_option_and_map() {
        let mut r = rng();
        let strat = collection_vec((0u32..7, 1i64..4), 2..5);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            let v = strat.generate(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&(x, y)| x < 7 && (1..4).contains(&y)));
            match option_of(0u64..9).generate(&mut r) {
                None => saw_none = true,
                Some(x) => {
                    saw_some = true;
                    assert!(x < 9);
                }
            }
            let doubled = (0u8..4).prop_map(|x| x * 2).generate(&mut r);
            assert!(doubled % 2 == 0 && doubled <= 6);
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), (5u8..7).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(u.generate(&mut r));
        }
        assert!(seen.contains(&1) && seen.contains(&2));
        assert!(seen.contains(&5) || seen.contains(&6));
    }

    #[test]
    fn regex_subset() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut r);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "x[0-9]{2}y?".generate(&mut r);
            assert!(t.starts_with('x'));
            let digits: String = t[1..3].to_string();
            assert!(digits.chars().all(|c| c.is_ascii_digit()));
        }
    }
}
