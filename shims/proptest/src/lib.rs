//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the API slice the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]` headers and
//!   `pattern in strategy` arguments),
//! - the [`Strategy`](strategy::Strategy) trait with `prop_map` and
//!   `boxed`, range / tuple / array / `Just` / regex-literal strategies,
//! - `prop::collection::vec`, `prop::option::of`, [`prop_oneof!`],
//!   [`any`](arbitrary::any),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] and
//!   [`TestCaseError`](test_runner::TestCaseError).
//!
//! Cases are generated from a deterministic per-test seed (FNV-1a of the
//! test's module path and name), so failures reproduce across runs. There
//! is **no shrinking**: a failing case reports its case number and seed.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

/// Module tree mirroring `proptest::prop::*` paths (`prop::collection::vec`,
/// `prop::option::of`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
        pub use crate::strategy::VecStrategy;
    }
    /// `Option` strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
        pub use crate::strategy::OptionStrategy;
    }
}

/// The common import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each function body runs `config.cases` times
/// against freshly generated inputs; `prop_assert*` failures and
/// `TestCaseError`s propagated with `?` abort the run with the case
/// number and seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)+);
            let mut __runner = $crate::test_runner::TestRunner::new(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __seed = __runner.case_seed();
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, __runner.rng());
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed (case seed {:#x}): {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __seed,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (not panicking) so the harness can report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
                );
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type (the unweighted `prop_oneof!` form).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Generated ranges stay in bounds; tuples destructure.
        #[test]
        fn ranges_and_tuples(x in 0u8..5, (a, b) in (0usize..3, -4i64..=4)) {
            prop_assert!(x < 5);
            prop_assert!(a < 3);
            prop_assert!((-4..=4).contains(&b));
        }

        /// Collection, option, map, oneof and regex strategies compose.
        #[test]
        fn combinators(
            v in prop::collection::vec((0u32..10, any::<bool>()), 0..8),
            o in prop::option::of(0u64..50),
            m in (0u8..3).prop_map(|k| k * 2),
            c in prop_oneof![Just(1usize), Just(2), 5usize..7],
            w in "[a-z]{1,6}",
            arr in [0usize..2, 0usize..2, 0usize..2],
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|(n, _)| *n < 10));
            prop_assert!(o.is_none() || o.unwrap() < 50);
            prop_assert!(m % 2 == 0 && m <= 4);
            prop_assert!(c == 1 || c == 2 || c == 5 || c == 6);
            prop_assert!((1..=6).contains(&w.len()));
            prop_assert!(w.chars().all(|ch| ch.is_ascii_lowercase()));
            prop_assert!(arr.iter().all(|&x| x < 2));
        }
    }

    #[test]
    fn failures_report_seed_and_case() {
        let config = ProptestConfig::with_cases(3);
        let mut runner = TestRunner::new(&config, "seed_probe");
        let s1: Vec<u64> = (0..10)
            .map(|_| Strategy::generate(&(0u64..1000), runner.rng()))
            .collect();
        let mut runner2 = TestRunner::new(&config, "seed_probe");
        let s2: Vec<u64> = (0..10)
            .map(|_| Strategy::generate(&(0u64..1000), runner2.rng()))
            .collect();
        assert_eq!(s1, s2, "same test name ⇒ same deterministic stream");
    }
}
