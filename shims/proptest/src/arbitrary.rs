//! `any::<T>()`: canonical strategies for primitive types.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for the type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u8>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for a primitive; produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_primitives {
    ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t {
                $gen
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_primitives! {
    bool => |rng| rng.gen();
    u8 => |rng| rng.gen();
    u16 => |rng| rng.gen();
    u32 => |rng| rng.gen();
    u64 => |rng| rng.gen();
    usize => |rng| rng.gen();
    i8 => |rng| rng.gen();
    i16 => |rng| rng.gen();
    i32 => |rng| rng.gen();
    i64 => |rng| rng.gen();
    isize => |rng| rng.gen();
    f64 => |rng| rng.gen();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    #[test]
    fn any_covers_domains() {
        let mut rng = TestRunner::new(&ProptestConfig::default(), "arb").into_rng();
        let mut saw_true = false;
        let mut saw_false = false;
        let mut bytes = std::collections::HashSet::new();
        for _ in 0..300 {
            match any::<bool>().generate(&mut rng) {
                true => saw_true = true,
                false => saw_false = true,
            }
            bytes.insert(any::<u8>().generate(&mut rng));
            let f = any::<f64>().generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
        assert!(saw_true && saw_false);
        assert!(bytes.len() > 50, "u8 samples must spread");
    }
}
