//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the API slice the workspace benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function` (by `&str` or
//! [`BenchmarkId`]), `Bencher::iter` / `iter_with_setup`,
//! [`criterion_group!`] and [`criterion_main!`]. Statistics are minimal —
//! each benchmark runs a warm-up iteration plus `sample_size` timed
//! samples and reports min / median / max wall-clock per iteration.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark within a group (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running one warm-up and `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs built by `setup` (setup time excluded).
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_duration(b.samples[0]),
        fmt_duration(median),
        fmt_duration(*b.samples.last().unwrap()),
    );
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, self.sample_size, &mut f);
        self
    }
}

/// Declares a benchmark group function (`criterion_group!(benches, a, b)`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main` (`criterion_main!(benches)`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("smoke");
            g.sample_size(3);
            g.bench_function(BenchmarkId::new("inc", 1), |b| b.iter(|| runs += 1));
            g.bench_function("plain", |b| {
                b.iter_with_setup(|| vec![1, 2, 3], |v| v.into_iter().sum::<i32>())
            });
            g.finish();
        }
        // 1 warm-up + 3 samples for the first bench.
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("raw").id, "raw");
    }
}
