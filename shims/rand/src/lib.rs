//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the slice of `rand` the workspace uses: `rngs::StdRng`
//! seeded via `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256** with SplitMix64 seed expansion — deterministic for a
//! given seed, which is all the seeded data generators require.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random (the `Standard` distribution).
pub trait FromRandom: Sized {
    /// Samples a uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRandom for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniformly samples `span` (> 0) values without modulo bias
/// (Lemire's rejection method).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span; // (2^64 - span) mod span
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges that can be sampled uniformly (`Rng::gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of `T` (the `Standard` distribution).
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seed-expanded by SplitMix64.
    /// API-compatible stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: std::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples must span the unit interval");
    }

    #[test]
    fn range_sampling_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_mut_ref_bounds() {
        fn sum3(rng: &mut impl Rng) -> u64 {
            (0..3).map(|_| rng.gen_range(0u64..10)).sum()
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sum3(&mut rng) < 30);
    }
}
