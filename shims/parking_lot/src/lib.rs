//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API slice it actually uses: [`Mutex`] with a
//! `lock()` that returns the guard directly (no `Result`, no poisoning —
//! a poisoned std mutex is recovered with `into_inner`, matching
//! parking_lot's semantics of simply not having poisoning).

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, returning the guard directly. A mutex poisoned
    /// by a panicking holder is recovered rather than propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with parking_lot's panic-free guard API.
///
/// Wraps `std::sync::RwLock`, recovering poisoned locks like the shim
/// [`Mutex`]. Unlike real parking_lot (which is writer-preferring and
/// deadlocks on recursive reads when a writer is queued), the std lock on
/// Linux allows a thread that already holds a read guard to re-acquire the
/// lock for reading; callers should still avoid holding a guard across a
/// second acquisition.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, returning the guard directly. A lock
    /// poisoned by a panicking writer is recovered rather than propagated.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, returning the guard directly.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

/// Whether a [`Condvar`] wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with the shim [`Mutex`].
///
/// The guard-consuming `wait_timeout(guard, dur) -> (guard, result)` shape
/// follows `std` (whose guard type the shim `Mutex` reuses); like the
/// shim's `lock()`, a wait on a mutex poisoned by a panicking holder is
/// recovered rather than propagated.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the lock while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (g, r) = self
            .inner
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        (g, WaitTimeoutResult(r.timed_out()))
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_notifies_and_times_out() {
        use std::time::Duration;
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = std::sync::Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            let (g, _) = cv.wait_timeout(ready, Duration::from_secs(5));
            ready = g;
        }
        assert!(*ready);
        drop(ready); // guard types drop at scope end, not last use — release before re-locking
        t.join().unwrap();
        // A wait with nobody notifying reports a timeout.
        let (guard, r) = cv.wait_timeout(m.lock(), Duration::from_millis(10));
        assert!(r.timed_out());
        drop(guard);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (1, 1));
            assert!(l.try_write().is_none(), "readers must block writers");
        }
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn rwlock_poisoned_by_writer_recovers() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
        assert_eq!(*l.try_read().unwrap(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
