//! Offline stand-in for the `parking_lot` crate, extended with the
//! engine's **lock-witness** mode.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API slice it actually uses: [`Mutex`] with a
//! `lock()` that returns the guard directly (no `Result`, no poisoning —
//! a poisoned std mutex is recovered with `into_inner`, matching
//! parking_lot's semantics of simply not having poisoning).
//!
//! # Lock witness (deadlock-freedom proof at runtime)
//!
//! Every production lock in the workspace is declared in the repo-root
//! `locks.toml` manifest with a **rank** (DESIGN.md §14) and constructed
//! through [`Mutex::ranked`] / [`RwLock::ranked`] with the matching
//! [`rank`] constant. The discipline: a thread may only *block* on a
//! lock whose rank is **strictly greater** than every lock it already
//! holds. Any execution obeying that discipline is deadlock-free (a wait
//! cycle needs at least one rank inversion).
//!
//! With `SOLAP_LOCK_WITNESS=1` (read once, seeded at the first `ranked`
//! construction — the same pattern as the failpoint registry), each
//! thread keeps a stack of held ranked locks and every blocking acquire
//! checks rank monotonicity, panicking with **both** acquisition sites on
//! violation. `try_*` acquires never block, so they skip the check, but
//! a successfully try-acquired lock still joins the held stack and
//! constrains later blocking acquires. When the witness is off (the
//! default) a ranked acquire costs one relaxed atomic load, and unranked
//! locks (`new`) cost nothing — hot paths carry the instrumentation
//! permanently, like failpoints.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::{self, TryLockError};

/// Declared lock ranks, kept byte-for-byte consistent with the repo-root
/// `locks.toml` manifest and the DESIGN.md §14 rank table by solint's
/// `doc-locks` drift rule. Lower ranks are acquired first (outermost);
/// every acquisition edge must go strictly upward.
pub mod rank {
    /// Worker job queue; held across the pool condvar wait.
    pub const SERVER_POOL_QUEUE: u16 = 10;
    /// The durable event log / ingest lock; appends hold it end to end.
    pub const ENGINE_LOG: u16 = 20;
    /// The event database `RwLock`; queries hold the read side end to end.
    pub const ENGINE_DB: u16 = 30;
    /// Recently executed specs (incremental-maintenance candidates).
    pub const ENGINE_LIVE: u16 = 40;
    /// The sequence-group LRU cache's inner lock.
    pub const EVENTDB_SEQ_CACHE: u16 = 50;
    /// The inverted-index store's inner lock.
    pub const INDEX_STORE: u16 = 55;
    /// The cuboid repository's inner lock.
    pub const CORE_CUBOID_REPO: u16 = 60;
    /// Worker completion queue; leaf on the worker's report-home path.
    pub const SERVER_POOL_COMPLETIONS: u16 = 70;
    /// The event-loop waker's latched flag.
    pub const SERVER_WAKER: u16 = 80;
    /// The failpoint registry; `fail_point!` can fire under any engine
    /// lock, so it outranks the whole engine band.
    pub const FAILPOINT_REGISTRY: u16 = 90;
}

/// The witness machinery: arming flag, per-thread held stack, checks.
mod witness {
    use std::cell::RefCell;
    use std::panic::Location;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::OnceLock;

    /// Fast path: true only while the witness is armed. Mirrors the
    /// failpoint `ACTIVE` flag — one relaxed load per ranked acquire.
    static ARMED: AtomicBool = AtomicBool::new(false);

    /// Seeds `ARMED` from `SOLAP_LOCK_WITNESS` exactly once. Called from
    /// every `ranked` constructor (cold: locks are built once at engine /
    /// server construction, before any acquire of a ranked lock).
    pub(crate) fn init() {
        static SEEDED: OnceLock<bool> = OnceLock::new();
        let on = *SEEDED.get_or_init(|| {
            std::env::var("SOLAP_LOCK_WITNESS").is_ok_and(|v| !v.is_empty() && v != "0")
        });
        if on {
            // ord: advisory arming flag seeded before any ranked acquire can
            // happen; witness state is all thread-local afterwards
            ARMED.store(true, Ordering::Relaxed);
        }
    }

    /// Whether acquires are being checked.
    #[inline]
    pub(crate) fn armed() -> bool {
        // ord: advisory fast-path flag; a stale read only skips/adds one
        // thread-local bookkeeping step, never corrupts shared state
        ARMED.load(Ordering::Relaxed)
    }

    /// Arms or disarms the witness in-process, for unit tests that cannot
    /// set the environment before the `OnceLock` seeds. Toggling can only
    /// *under*-track (locks acquired while disarmed are absent from the
    /// stack), never fabricate a held entry, so concurrent tests stay
    /// sound.
    #[doc(hidden)]
    pub fn force_arm(on: bool) {
        // ord: test-only toggle; same advisory semantics as the env seed
        ARMED.store(on, Ordering::Relaxed);
    }

    /// One held ranked lock.
    struct Held {
        rank: u16,
        name: &'static str,
        site: &'static Location<'static>,
        id: u64,
    }

    thread_local! {
        /// (next acquire id, stack of held ranked locks). Ranks are
        /// strictly increasing bottom-to-top whenever the discipline
        /// holds, so the top entry is the maximum.
        static HELD: RefCell<(u64, Vec<Held>)> = const { RefCell::new((0, Vec::new())) };
    }

    /// Records a ranked acquire. `blocking` acquires are checked for rank
    /// monotonicity first (panicking on violation, before the caller
    /// would block); `try_*` acquires only join the stack. Returns the
    /// token to pass to [`release`], `None` while disarmed.
    pub(crate) fn acquire(
        rank: u16,
        name: &'static str,
        site: &'static Location<'static>,
        blocking: bool,
    ) -> Option<u64> {
        if !armed() {
            return None;
        }
        HELD.with(|held| {
            let (counter, stack) = &mut *held.borrow_mut();
            if blocking {
                // try_* acquires can push below the top, so the stack is
                // not always sorted: compare against the maximum held
                // rank (stacks are 1–4 deep in practice).
                if let Some(top) = stack.iter().max_by_key(|e| e.rank) {
                    if rank <= top.rank {
                        panic!(
                            "lock-order violation: acquiring `{name}` (rank {rank}) at {site} \
                             while holding `{held_name}` (rank {held_rank}) acquired at \
                             {held_site}; ranks must strictly increase along every \
                             acquisition chain (locks.toml / DESIGN.md \u{a7}14)",
                            held_name = top.name,
                            held_rank = top.rank,
                            held_site = top.site,
                        );
                    }
                }
            }
            *counter += 1;
            let id = *counter;
            stack.push(Held {
                rank,
                name,
                site,
                id,
            });
            Some(id)
        })
    }

    /// Drops the held-stack entry for `id` (guard drop). Entries released
    /// out of acquisition order are removed in place; a token the stack
    /// no longer knows (witness toggled mid-hold) is ignored.
    pub(crate) fn release(id: u64) {
        let _ = HELD.try_with(|held| {
            let stack = &mut held.borrow_mut().1;
            if let Some(pos) = stack.iter().rposition(|e| e.id == id) {
                stack.remove(pos);
            }
        });
    }

    /// The ranks currently held by this thread, bottom-of-stack first
    /// (diagnostics and tests).
    pub fn held_ranks() -> Vec<u16> {
        HELD.with(|held| held.borrow().1.iter().map(|e| e.rank).collect())
    }
}

pub use witness::{force_arm, held_ranks};

/// Forces the one-time `SOLAP_LOCK_WITNESS` environment seeding to happen
/// now. `ranked` constructors seed implicitly; long-lived entry points
/// (engine construction) call this for symmetry with
/// `failpoint::init`.
pub fn witness_init() {
    witness::init();
}

/// The declared (rank, name) of a ranked lock.
#[derive(Debug, Clone, Copy)]
struct LockMeta {
    rank: u16,
    name: &'static str,
}

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    meta: Option<LockMeta>,
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the witness entry (for
/// ranked locks under an armed witness) and the lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
    token: Option<u64>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Splits the guard for a condvar wait: the raw std guard travels
    /// through `Condvar::wait`, the witness token survives alongside (the
    /// waiting thread cannot acquire anything while parked, so its
    /// held-stack entry stays put).
    fn into_raw_parts(mut self) -> (sync::MutexGuard<'a, T>, Option<u64>) {
        let inner = self.inner.take().unwrap_or_else(|| {
            unreachable!("guard invariant: inner is Some until drop/into_raw_parts")
        });
        (inner, self.token.take())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard invariant: inner is Some until drop"),
        }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard invariant: inner is Some until drop"),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.token.take() {
            witness::release(id);
        }
    }
}

impl<T> Mutex<T> {
    /// Creates an unranked mutex (tests, scratch state). Production locks
    /// use [`Mutex::ranked`] — solint's `lock-order` rule enforces it.
    pub const fn new(value: T) -> Self {
        Mutex {
            meta: None,
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a mutex with a declared hierarchy rank (see [`rank`] and
    /// the repo-root `locks.toml`). Construction also seeds the
    /// `SOLAP_LOCK_WITNESS` arming flag, so any process that builds a
    /// ranked lock before acquiring one (all of them) honors the env.
    pub fn ranked(rank: u16, name: &'static str, value: T) -> Self {
        witness::init();
        Mutex {
            meta: Some(LockMeta { rank, name }),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, returning the guard directly. A mutex poisoned
    /// by a panicking holder is recovered rather than propagated.
    ///
    /// # Panics
    ///
    /// Under an armed witness, panics if this lock is ranked and its rank
    /// does not strictly exceed every ranked lock the thread holds.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let token = match self.meta {
            Some(m) => witness::acquire(m.rank, m.name, Location::caller(), true),
            None => None,
        };
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            token,
        }
    }

    /// Attempts to acquire the lock without blocking. A try-acquire can
    /// never deadlock, so the witness records but does not rank-check it.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        let token = match self.meta {
            Some(m) => witness::acquire(m.rank, m.name, Location::caller(), false),
            None => None,
        };
        Some(MutexGuard {
            inner: Some(inner),
            token,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with parking_lot's panic-free guard API.
///
/// Wraps `std::sync::RwLock`, recovering poisoned locks like the shim
/// [`Mutex`]. Unlike real parking_lot (which is writer-preferring and
/// deadlocks on recursive reads when a writer is queued), the std lock on
/// Linux allows a thread that already holds a read guard to re-acquire the
/// lock for reading; the witness treats a recursive read as a rank
/// violation (equal rank), which is exactly the writer-preferring hazard.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    meta: Option<LockMeta>,
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<sync::RwLockReadGuard<'a, T>>,
    token: Option<u64>,
}

/// Guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
    token: Option<u64>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard invariant: inner is Some until drop"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard invariant: inner is Some until drop"),
        }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard invariant: inner is Some until drop"),
        }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.token.take() {
            witness::release(id);
        }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.token.take() {
            witness::release(id);
        }
    }
}

impl<T> RwLock<T> {
    /// Creates an unranked reader-writer lock (tests, scratch state).
    pub const fn new(value: T) -> Self {
        RwLock {
            meta: None,
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a reader-writer lock with a declared hierarchy rank — see
    /// [`Mutex::ranked`].
    pub fn ranked(rank: u16, name: &'static str, value: T) -> Self {
        witness::init();
        RwLock {
            meta: Some(LockMeta { rank, name }),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, returning the guard directly. A lock
    /// poisoned by a panicking writer is recovered rather than propagated.
    ///
    /// # Panics
    ///
    /// Under an armed witness, same rank-monotonicity contract as
    /// [`Mutex::lock`] — including recursive reads of the same lock.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = match self.meta {
            Some(m) => witness::acquire(m.rank, m.name, Location::caller(), true),
            None => None,
        };
        RwLockReadGuard {
            inner: Some(self.inner.read().unwrap_or_else(|e| e.into_inner())),
            token,
        }
    }

    /// Acquires exclusive write access, returning the guard directly.
    ///
    /// # Panics
    ///
    /// Under an armed witness, same contract as [`Mutex::lock`].
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = match self.meta {
            Some(m) => witness::acquire(m.rank, m.name, Location::caller(), true),
            None => None,
        };
        RwLockWriteGuard {
            inner: Some(self.inner.write().unwrap_or_else(|e| e.into_inner())),
            token,
        }
    }

    /// Attempts to acquire read access without blocking (recorded but not
    /// rank-checked, like [`Mutex::try_lock`]).
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        let token = match self.meta {
            Some(m) => witness::acquire(m.rank, m.name, Location::caller(), false),
            None => None,
        };
        Some(RwLockReadGuard {
            inner: Some(inner),
            token,
        })
    }

    /// Attempts to acquire write access without blocking (recorded but
    /// not rank-checked).
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        let token = match self.meta {
            Some(m) => witness::acquire(m.rank, m.name, Location::caller(), false),
            None => None,
        };
        Some(RwLockWriteGuard {
            inner: Some(inner),
            token,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

/// Whether a [`Condvar`] wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with the shim [`Mutex`].
///
/// The guard-consuming `wait_timeout(guard, dur) -> (guard, result)` shape
/// follows `std`; like the shim's `lock()`, a wait on a mutex poisoned by
/// a panicking holder is recovered rather than propagated. The witness
/// token rides across the wait: a parked thread cannot acquire anything,
/// so its held-stack entry for the waited mutex stays in place and the
/// re-acquired guard keeps the original acquisition site.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the lock while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (inner, token) = guard.into_raw_parts();
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            inner: Some(inner),
            token,
        }
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (inner, token) = guard.into_raw_parts();
        let (inner, r) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        (
            MutexGuard {
                inner: Some(inner),
                token,
            },
            WaitTimeoutResult(r.timed_out()),
        )
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Witness state is per-thread but the arming flag is process-global;
    /// tests that arm it serialize here so unrelated shim tests can run
    /// in parallel threads (unranked locks are never tracked, and a
    /// disarmed thread records nothing, so they are unaffected either
    /// way).
    static WITNESS_TESTS: sync::Mutex<()> = sync::Mutex::new(());

    fn armed() -> impl Drop {
        struct Disarm(Option<sync::MutexGuard<'static, ()>>);
        impl Drop for Disarm {
            fn drop(&mut self) {
                force_arm(false);
                self.0.take();
            }
        }
        let g = WITNESS_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        force_arm(true);
        Disarm(Some(g))
    }

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_notifies_and_times_out() {
        use std::time::Duration;
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = std::sync::Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            let (g, _) = cv.wait_timeout(ready, Duration::from_secs(5));
            ready = g;
        }
        assert!(*ready);
        drop(ready); // guard types drop at scope end, not last use — release before re-locking
        t.join().unwrap();
        // A wait with nobody notifying reports a timeout.
        let (guard, r) = cv.wait_timeout(m.lock(), Duration::from_millis(10));
        assert!(r.timed_out());
        drop(guard);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (1, 1));
            assert!(l.try_write().is_none(), "readers must block writers");
        }
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn rwlock_poisoned_by_writer_recovers() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
        assert_eq!(*l.try_read().unwrap(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }

    #[test]
    fn witness_allows_upward_chains_and_tracks_the_stack() {
        let _arm = armed();
        let a = Mutex::ranked(10, "test.a", ());
        let b = RwLock::ranked(20, "test.b", ());
        let c = Mutex::ranked(30, "test.c", ());
        let ga = a.lock();
        let gb = b.read();
        let gc = c.lock();
        assert_eq!(held_ranks(), vec![10, 20, 30]);
        // Out-of-order release is legal; only acquisition order is ranked.
        drop(gb);
        assert_eq!(held_ranks(), vec![10, 30]);
        drop(gc);
        drop(ga);
        assert!(held_ranks().is_empty());
        // Re-acquiring after release is fine, including lower ranks.
        let _gc = c.lock();
        drop(_gc);
        let _ga = a.lock();
    }

    #[test]
    fn witness_panics_on_rank_inversion_with_both_sites() {
        let _arm = armed();
        let low = Mutex::ranked(10, "test.low", ());
        let high = Mutex::ranked(20, "test.high", ());
        let _gh = high.lock();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gl = low.lock();
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(msg.contains("`test.low` (rank 10)"), "{msg}");
        assert!(msg.contains("`test.high` (rank 20)"), "{msg}");
        // Both acquisition sites name this file.
        assert!(msg.matches("lib.rs").count() >= 2, "{msg}");
        // The failed acquire left no stack entry behind.
        assert_eq!(held_ranks(), vec![20]);
    }

    #[test]
    fn witness_panics_on_equal_rank_and_recursive_read() {
        let _arm = armed();
        let l = RwLock::ranked(30, "test.recursive", ());
        let _g = l.read();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _again = l.read();
        }));
        assert!(err.is_err(), "recursive read must trip the witness");
    }

    #[test]
    fn witness_skips_try_acquires_but_tracks_their_holds() {
        let _arm = armed();
        let low = Mutex::ranked(10, "test.try_low", ());
        let high = Mutex::ranked(20, "test.try_high", ());
        let _gh = high.lock();
        // Downward try: never blocks, so never checked — and succeeds.
        let gl = low.try_lock().expect("uncontended");
        assert_eq!(held_ranks(), vec![20, 10]);
        // But the try-held low lock constrains later blocking acquires.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let again = Mutex::ranked(15, "test.try_mid", ());
            let _g = again.lock();
        }));
        assert!(err.is_err(), "blocking acquire below a try-held rank");
        drop(gl);
    }

    #[test]
    fn witness_token_rides_across_condvar_waits() {
        use std::time::Duration;
        let _arm = armed();
        let m = Mutex::ranked(10, "test.cv", false);
        let cv = Condvar::new();
        let g = m.lock();
        assert_eq!(held_ranks(), vec![10]);
        let (g, r) = cv.wait_timeout(g, Duration::from_millis(5));
        assert!(r.timed_out());
        assert_eq!(held_ranks(), vec![10], "entry survived the wait");
        drop(g);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn witness_off_matches_witness_on_results() {
        // The same workload, witness disarmed vs armed, must produce
        // identical data results (the fast path changes bookkeeping only).
        fn workload(m: &Mutex<Vec<u32>>, l: &RwLock<u32>) -> (Vec<u32>, u32) {
            for i in 0..8 {
                m.lock().push(i);
                *l.write() += i;
            }
            (m.lock().clone(), *l.read())
        }
        let _serial = WITNESS_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        force_arm(false);
        let off = workload(
            &Mutex::ranked(10, "test.off_m", Vec::new()),
            &RwLock::ranked(20, "test.off_l", 0),
        );
        force_arm(true);
        let on = workload(
            &Mutex::ranked(10, "test.on_m", Vec::new()),
            &RwLock::ranked(20, "test.on_l", 0),
        );
        force_arm(false);
        assert_eq!(off, on);
    }

    #[test]
    fn unranked_locks_are_never_tracked() {
        let _arm = armed();
        let m = Mutex::new(0);
        let l = RwLock::new(0);
        let _g = m.lock();
        let _r = l.read();
        assert!(held_ranks().is_empty());
    }
}
