//! # s-olap
//!
//! A from-scratch Rust reproduction of **"OLAP on Sequence Data"** (Lo,
//! Kao, Ho, Lee, Chui, Cheung — SIGMOD 2008): an S-OLAP system supporting
//! *pattern-based grouping and aggregation* over sequence data.
//!
//! A sequence can be characterised not only by the attribute values of its
//! constituting events but by the substring/subsequence patterns it
//! possesses. An S-OLAP query such as the paper's Q1 — *"the number of
//! round-trip passengers and their distributions over all
//! origin-destination station pairs"* — groups sequences by the pattern
//! `(X, Y, Y, X)` and tabulates a **sequence cuboid** over the pattern
//! dimensions `X`, `Y` and any global dimensions.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`eventdb`] — the event database substrate: columnar store, concept
//!   hierarchies, the sequence query engine (steps 1–4 of S-cuboid
//!   formation), and the sequence cache.
//! * [`pattern`] — pattern templates, matching, cell restrictions and
//!   matching predicates (step 5), and aggregation (step 6).
//! * [`index`] — inverted indices: BUILDINDEX, joins, merges, bitmap sets.
//! * [`core`] — the S-OLAP engine: counter-based and inverted-index
//!   construction, the cuboid repository, the six S-OLAP operations,
//!   navigation sessions, the S-cube lattice, and the §6 extensions
//!   (iceberg, online aggregation, incremental update).
//! * [`query`] — the Figure-3 query language (lexer + parser).
//! * [`datagen`] — seeded data generators: the §5.2 synthetic workload and
//!   the transit/clickstream substitutes for the paper's proprietary
//!   datasets.
//! * [`server`] — the multi-client serving layer: a TCP server sharing one
//!   engine across per-connection sessions, the wire-protocol client, and
//!   the statement-dispatch layer shared with the REPL.
//!
//! ## Quickstart
//!
//! ```
//! use s_olap::prelude::*;
//!
//! // A small transit dataset (Figure 1's schema, all hierarchies attached).
//! let db = s_olap::datagen::generate_transit(&Default::default()).unwrap();
//! let engine = Engine::new(db);
//!
//! // The paper's Q3: single-trip origin/destination distribution.
//! let spec = s_olap::query::parse_query(
//!     &engine.db(),
//!     r#"
//!     SELECT COUNT(*) FROM Event
//!     CLUSTER BY card-id AT individual, time AT day
//!     SEQUENCE BY time ASCENDING
//!     CUBOID BY SUBSTRING (X, Y)
//!       WITH X AS location AT station, Y AS location AT station
//!       LEFT-MAXIMALITY (x1, y1)
//!       WITH x1.action = "in" AND y1.action = "out"
//!     "#,
//! )
//! .unwrap();
//! let out = engine.execute(&spec).unwrap();
//! assert!(out.cuboid.len() > 0);
//! ```

#![forbid(unsafe_code)]

pub use solap_core as core;
pub use solap_datagen as datagen;
pub use solap_eventdb as eventdb;
pub use solap_index as index;
pub use solap_pattern as pattern;
pub use solap_query as query;
pub use solap_server as server;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use solap_core::{
        Engine, EngineConfig, Op, QueryOutput, SCuboid, SCuboidSpec, Session, Strategy,
    };
    pub use solap_eventdb::{
        AttrLevel, CancelToken, CmpOp, ColumnType, EventDb, EventDbBuilder, Pred, QueryGovernor,
        QueryProfile, SortKey, Value,
    };
    pub use solap_index::SetBackend;
    pub use solap_pattern::{
        AggFunc, CellRestriction, MatchPred, PatternKind, PatternTemplate, SumMode,
    };
    pub use solap_query::{parse_query, parse_statement, ExplainMode, Statement};
}
