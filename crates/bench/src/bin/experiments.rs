//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run -p solap-bench --release --bin experiments -- all --scale 0.05
//! ```
//!
//! Experiments: `table1`, `fig16`, `qa-vary-l`, `qb`, `qc`, `vary-theta`,
//! `vary-i`, `subsequence`, `ablation`, `threads`, `profile` (per-stage
//! timings dumped to `BENCH_profile.json`), `serve` (concurrent wire
//! clients against the TCP server, dumped to `BENCH_serve.json`), `index`
//! (list vs bitmap vs compressed posting-list backends, dumped to
//! `BENCH_index.json`), `plan` (cost-based planner vs fixed strategies,
//! dumped to `BENCH_plan.json`), or `all`. `--scale s` multiplies
//! the paper's sequence counts `D` (1.0 = the paper's 100K–1M sizes;
//! default 0.05 finishes in a few minutes).

use std::time::Instant;

use solap_bench::plans::{clickstream_plan, query_set_a, query_set_b, query_set_c, synthetic_spec};
use solap_bench::report::{format_comparison, format_cumulative, format_profiles, format_run};
use solap_bench::runner::{run_plan, RunReport};
use solap_core::cb::CounterMode;
use solap_core::{Engine, EngineConfig, Strategy};
use solap_datagen::{generate_clickstream, generate_synthetic, ClickstreamConfig, SyntheticConfig};
use solap_eventdb::EventDb;
use solap_index::SetBackend;
use solap_pattern::{AggFunc, PatternKind, SumMode};

fn cfg(strategy: Strategy) -> EngineConfig {
    EngineConfig {
        strategy,
        ..Default::default()
    }
}

fn synthetic(i: usize, l: f64, theta: f64, d: usize, hierarchy: bool) -> EventDb {
    let cfg = SyntheticConfig {
        i,
        l,
        theta,
        d,
        seed: 42,
        hierarchy,
    };
    let t0 = Instant::now();
    let db = generate_synthetic(&cfg).expect("generator");
    println!(
        "dataset {}: {} events generated in {:.1}s",
        cfg.name(),
        db.len(),
        t0.elapsed().as_secs_f64()
    );
    db
}

fn compare(db: EventDb, plan: &solap_bench::plans::Plan) {
    let cb = run_plan(db.clone(), plan, cfg(Strategy::CounterBased), "CB").expect("CB run");
    let ii = run_plan(db, plan, cfg(Strategy::InvertedIndex), "II").expect("II run");
    println!("{}", format_comparison(&cb, &ii));
    println!("{}", format_cumulative(&cb));
    println!("{}", format_cumulative(&ii));
}

/// Table 1: the real-data (clickstream substitute) exploration Qa→Qb→Qc.
fn table1(scale: f64) {
    println!("=== Table 1: real-data experiment (clickstream substitute) ===");
    let sessions = ((50_524.0 * scale.max(0.02)) as usize).max(1_000);
    let db = generate_clickstream(&ClickstreamConfig {
        sessions,
        ..Default::default()
    })
    .expect("generator");
    println!("clickstream: {sessions} sessions, {} events", db.len());
    let plan = clickstream_plan(&db).expect("plan");
    compare(db, &plan);
}

/// Figure 16: QuerySet A, varying D ∈ {100K, 500K, 1000K} × scale.
fn fig16(scale: f64) {
    println!("=== Figure 16: QuerySet A, varying D (I100.L20.θ0.9.Dx) ===");
    for base in [100_000usize, 500_000, 1_000_000] {
        let d = ((base as f64) * scale) as usize;
        let db = synthetic(100, 20.0, 0.9, d.max(100), false);
        let plan = query_set_a(&db, PatternKind::Substring, 5).expect("plan");
        compare(db, &plan);
    }
}

/// QuerySet A varying L ∈ {10, 20, 40} at D = 500K × scale.
fn qa_vary_l(scale: f64) {
    println!("=== QuerySet A: varying L (I100.Lx.θ0.9.D500K) ===");
    let d = ((500_000.0 * scale) as usize).max(100);
    for l in [10.0, 20.0, 40.0] {
        let db = synthetic(100, l, 0.9, d, false);
        let plan = query_set_a(&db, PatternKind::Substring, 5).expect("plan");
        compare(db, &plan);
    }
}

/// QuerySet B: P-ROLL-UP / P-DRILL-DOWN with the 3-level hierarchy,
/// varying D and L.
fn qb(scale: f64) {
    println!("=== QuerySet B: P-ROLL-UP / P-DRILL-DOWN (3-level hierarchy) ===");
    println!("--- (a) varying D ---");
    for base in [100_000usize, 500_000] {
        let d = ((base as f64) * scale) as usize;
        let db = synthetic(100, 20.0, 0.9, d.max(100), true);
        let plan = query_set_b(&db).expect("plan");
        compare(db, &plan);
    }
    println!("--- (b) varying L ---");
    let d = ((200_000.0 * scale) as usize).max(100);
    for l in [10.0, 30.0] {
        let db = synthetic(100, l, 0.9, d, true);
        let plan = query_set_b(&db).expect("plan");
        compare(db, &plan);
    }
}

/// QuerySet C: the restricted template (X, Y, Y, X).
fn qc(scale: f64) {
    println!("=== QuerySet C: restricted template (X, Y, Y, X) ===");
    let d = ((200_000.0 * scale) as usize).max(100);
    let db = synthetic(100, 20.0, 0.9, d, true);
    let plan = query_set_c(&db).expect("plan");
    compare(db, &plan);
}

/// Varying the skew factor θ.
fn vary_theta(scale: f64) {
    println!("=== Varying skew θ (I100.L20.θx.D200K) ===");
    let d = ((200_000.0 * scale) as usize).max(100);
    for theta in [0.5, 0.9, 1.2] {
        let db = synthetic(100, 20.0, theta, d, false);
        let plan = query_set_a(&db, PatternKind::Substring, 4).expect("plan");
        compare(db, &plan);
    }
}

/// Varying the symbol domain I.
fn vary_i(scale: f64) {
    println!("=== Varying domain I (Ix.L20.θ0.9.D200K) ===");
    let d = ((200_000.0 * scale) as usize).max(100);
    for i in [50, 100, 200] {
        let db = synthetic(i, 20.0, 0.9, d, false);
        let plan = query_set_a(&db, PatternKind::Substring, 4).expect("plan");
        compare(db, &plan);
    }
}

/// Subsequence patterns (QuerySet A with SUBSEQUENCE, three queries).
fn subsequence(scale: f64) {
    println!("=== Subsequence patterns (QuerySet A, SUBSEQUENCE) ===");
    let d = ((100_000.0 * scale) as usize).max(100);
    let db = synthetic(100, 12.0, 0.9, d, false);
    let plan = query_set_a(&db, PatternKind::Subsequence, 3).expect("plan");
    compare(db, &plan);
}

/// Ablations of this implementation's design choices.
fn ablation(scale: f64) {
    let d = ((200_000.0 * scale) as usize).max(100);
    println!("=== Ablation: list vs bitmap inverted lists (QuerySet A) ===");
    let db = synthetic(100, 20.0, 0.9, d, false);
    let plan = query_set_a(&db, PatternKind::Substring, 5).expect("plan");
    let list = run_plan(
        db.clone(),
        &plan,
        EngineConfig {
            strategy: Strategy::InvertedIndex,
            backend: SetBackend::List,
            ..Default::default()
        },
        "II/list",
    )
    .expect("run");
    let bitmap = run_plan(
        db.clone(),
        &plan,
        EngineConfig {
            strategy: Strategy::InvertedIndex,
            backend: SetBackend::Bitmap,
            ..Default::default()
        },
        "II/bitmap",
    )
    .expect("run");
    println!("{}", format_run(&list));
    println!("{}", format_run(&bitmap));

    println!("=== Ablation: dense vs hash counters (CB, single (X, Y) query) ===");
    for (mode, label) in [(CounterMode::Hash, "hash"), (CounterMode::Dense, "dense")] {
        let engine = Engine::builder(db.clone())
            .strategy(Strategy::CounterBased)
            .counter_mode(mode)
            .build();
        let spec =
            synthetic_spec(&engine.db(), PatternKind::Substring, &["X", "Y"], 0).expect("spec");
        let out = engine.execute(&spec).expect("query");
        println!(
            "  CB/{label:<6} runtime {:>8.1} ms, {} cells",
            out.stats.elapsed.as_secs_f64() * 1000.0,
            out.cuboid.len()
        );
    }

    thread_scaling(scale);

    println!("=== Ablation: iceberg minimum support (§6) ===");
    let engine = Engine::new(db);
    let spec = synthetic_spec(&engine.db(), PatternKind::Substring, &["X", "Y"], 0).expect("spec");
    let full = engine.execute(&spec).expect("query");
    println!(
        "  min-support  cells (of {})  runtime(ms)",
        full.cuboid.len()
    );
    for ms in [0u64, 2, 10, 100, 1000] {
        let sliced = spec.clone().with_min_support(ms);
        let out = engine.execute(&sliced).expect("query");
        println!(
            "  {:>11}  {:>14}  {:>10.1}",
            ms,
            out.cuboid.len(),
            out.stats.elapsed.as_secs_f64() * 1000.0
        );
    }
}

/// Per-stage profiling of the paper's comparison workloads: runs the
/// QuerySet A/B/C plans and the clickstream plan under both strategies
/// with detailed counters forced on, prints each step's profile, and dumps
/// everything to `BENCH_profile.json` for offline analysis.
fn profile_dump(scale: f64) {
    println!("=== Profile: per-stage timings and counters for the comparison workloads ===");
    solap_eventdb::metrics::set_enabled(true);
    let d = ((200_000.0 * scale) as usize).max(100);
    let mut runs: Vec<RunReport> = Vec::new();
    {
        let db = synthetic(100, 20.0, 0.9, d, true);
        for (plan, db) in [
            (
                query_set_a(&db, PatternKind::Substring, 4).expect("plan"),
                db.clone(),
            ),
            (query_set_b(&db).expect("plan"), db.clone()),
            (query_set_c(&db).expect("plan"), db),
        ] {
            runs.push(
                run_plan(db.clone(), &plan, cfg(Strategy::CounterBased), "CB").expect("CB run"),
            );
            runs.push(run_plan(db, &plan, cfg(Strategy::InvertedIndex), "II").expect("II run"));
        }
    }
    {
        let sessions = ((50_524.0 * scale.max(0.02)) as usize).max(1_000);
        let db = generate_clickstream(&ClickstreamConfig {
            sessions,
            ..Default::default()
        })
        .expect("generator");
        let plan = clickstream_plan(&db).expect("plan");
        runs.push(run_plan(db.clone(), &plan, cfg(Strategy::CounterBased), "CB").expect("CB run"));
        runs.push(run_plan(db, &plan, cfg(Strategy::InvertedIndex), "II").expect("II run"));
    }
    let mut json = String::from("{\"runs\":[");
    for (i, r) in runs.iter().enumerate() {
        println!("{}", format_profiles(r));
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"plan\":\"{}\",\"config\":\"{}\",\"steps\":[",
            r.name, r.config
        ));
        for (j, s) in r.steps.iter().enumerate() {
            if j > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"label\":\"{}\",\"runtime_ms\":{:.3},\"scanned\":{},\"cells\":{},\"index_bytes\":{},\"profile\":{}}}",
                s.label,
                s.runtime.as_secs_f64() * 1000.0,
                s.scanned,
                s.cells,
                s.index_bytes,
                s.profile
                    .as_ref()
                    .map(|p| p.to_json())
                    .unwrap_or_else(|| "null".into()),
            ));
        }
        json.push_str("]}");
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_profile.json", &json).expect("write BENCH_profile.json");
    println!("wrote BENCH_profile.json ({} runs)", runs.len());
}

/// Thread scaling of parallel construction on the §5.2 synthetic workload:
/// the `(X, Y)` substring query under CB COUNT, CB SUM and the II path
/// (base-index build sharded by sid range) at 1/2/4/8 worker threads.
fn thread_scaling(scale: f64) {
    let d = ((200_000.0 * scale) as usize).max(100);
    println!("=== Thread scaling: parallel construction (I=100, L=20, θ=0.9, D={d}) ===");
    let db = synthetic(100, 20.0, 0.9, d, false);
    let pos = db.attr("pos").expect("pos attr");
    let rows: [(&str, Strategy, Option<AggFunc>); 3] = [
        ("CB COUNT", Strategy::CounterBased, None),
        (
            "CB SUM",
            Strategy::CounterBased,
            Some(AggFunc::Sum(pos, SumMode::AllEvents)),
        ),
        ("II COUNT", Strategy::InvertedIndex, None),
    ];
    println!(
        "  {:<9} {:>9} {:>9} {:>9} {:>9}   ms for (X, Y) substring; speedup vs t=1 in ()",
        "query", "t=1", "t=2", "t=4", "t=8"
    );
    for (label, strategy, agg) in rows {
        let mut line = format!("  {label:<9}");
        let mut baseline_ms = 0.0f64;
        for threads in [1usize, 2, 4, 8] {
            // Best of two runs on FRESH engines (so the index store and
            // sequence cache can't turn the repeat into a cache hit).
            let ms = (0..2)
                .map(|_| {
                    let engine = Engine::builder(db.clone())
                        .strategy(strategy)
                        .threads(threads)
                        .use_cuboid_repo(false)
                        .build();
                    let mut spec =
                        synthetic_spec(&engine.db(), PatternKind::Substring, &["X", "Y"], 0)
                            .expect("spec");
                    if let Some(a) = agg {
                        spec = spec.with_agg(a);
                    }
                    engine
                        .execute(&spec)
                        .expect("query")
                        .stats
                        .elapsed
                        .as_secs_f64()
                        * 1000.0
                })
                .fold(f64::INFINITY, f64::min);
            if threads == 1 {
                baseline_ms = ms;
            }
            line.push_str(&format!(" {:>5.1} ({:>3.1}x)", ms, baseline_ms / ms));
        }
        println!("{line}");
    }
}

/// Concurrent serving: boots the readiness-driven TCP server on a
/// loopback port over a transit dataset and drives it with concurrent
/// wire clients issuing the round-trip query, at client counts
/// {1, 4, 16, 64, 256, 1024} × engine worker threads {1, 8} (the
/// `SOLAP_THREADS` axis of the thread matrix) — sequential round trips
/// plus pipelined rows (batches of 8 statements in flight) at the three
/// largest client counts. Every client is its own server-side session;
/// the cuboid repository is disabled so each request re-aggregates
/// instead of answering from cache. Writes `BENCH_serve.json`.
fn serve_bench(scale: f64) {
    use solap_server::client::Client;
    use solap_server::server::{Server, ServerConfig};

    const QUERY: &str = r#"SELECT COUNT(*) FROM Event CLUSTER BY card-id AT individual, time AT day SEQUENCE BY time ASCENDING CUBOID BY SUBSTRING (X, Y) WITH X AS location AT station, Y AS location AT station LEFT-MAXIMALITY (x1, y1) WITH x1.action = "in" AND y1.action = "out""#;
    const CLIENT_COUNTS: [usize; 6] = [1, 4, 16, 64, 256, 1024];
    /// Pipelined variants run where sequential round trips plateau.
    const PIPELINED_COUNTS: [usize; 3] = [64, 256, 1024];
    const PIPELINE_DEPTH: usize = 8;

    /// Per-client request count, shrunk at large client counts so the
    /// total stays bounded (≥ 2048 requests per row from 64 clients up).
    fn requests_per_client(clients: usize) -> usize {
        (2048 / clients).clamp(4, 20)
    }

    println!("=== Serve: concurrent wire clients against one shared engine ===");
    let passengers = ((4_000.0 * scale) as usize).max(100);
    let db = solap_datagen::generate_transit(&solap_datagen::TransitConfig {
        passengers,
        days: 7,
        ..Default::default()
    })
    .expect("generator");
    println!("transit: {passengers} passengers, {} events", db.len());
    println!(
        "  {:>7} {:>7} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "threads", "clients", "pipeline", "requests", "qps", "mean ms", "p95 ms", "errors"
    );

    let mut json = String::from("{\"results\":[");
    let mut first = true;
    for threads in [1usize, 8] {
        // The cuboid repo is ON: this is the paper's serving
        // configuration (repeated aggregate queries answered from
        // materialized cuboids, ~15µs each), and it is what makes this
        // a *serving* benchmark — with the repo off, recomputing Q3
        // costs ~0.8ms and the engine saturates one core near 1.2k qps
        // before the serving layer is ever the bottleneck.
        let engine = std::sync::Arc::new(
            Engine::builder(db.clone())
                .threads(threads)
                .use_cuboid_repo(true)
                .build(),
        );
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_conn: 2048,
            max_inflight: 16,
            // The bench saturates the pool on purpose; don't let the
            // admission gate reject queued requests and skew the numbers.
            queue_timeout: std::time::Duration::from_secs(120),
            ..Default::default()
        };
        let (handle, join) = Server::spawn(engine, config).expect("server spawn");
        let addr = handle.local_addr();
        let mut row = |clients: usize, depth: usize| {
            let requests = requests_per_client(clients);
            // Connect everyone first, then release them together so the
            // wall clock measures serving, not connection setup.
            let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients + 1));
            let workers: Vec<_> = (0..clients)
                .map(|_| {
                    let barrier = std::sync::Arc::clone(&barrier);
                    std::thread::spawn(move || -> (Vec<f64>, usize) {
                        let mut client = Client::connect(addr).expect("connect");
                        barrier.wait();
                        let mut latencies_ms = Vec::with_capacity(requests);
                        let mut errors = 0usize;
                        let mut done = 0usize;
                        while done < requests {
                            let n = depth.min(requests - done);
                            let batch = vec![QUERY; n];
                            let q0 = Instant::now();
                            match client.pipeline(&batch) {
                                Ok(responses) => {
                                    // Per-request latency: the batch's
                                    // wall clock amortized over it.
                                    let each = q0.elapsed().as_secs_f64() * 1000.0 / n as f64;
                                    for r in &responses {
                                        if r.ok {
                                            latencies_ms.push(each);
                                        } else {
                                            errors += 1;
                                        }
                                    }
                                }
                                Err(_) => errors += n,
                            }
                            done += n;
                        }
                        (latencies_ms, errors)
                    })
                })
                .collect();
            barrier.wait();
            let t0 = Instant::now();
            let mut latencies_ms: Vec<f64> = Vec::new();
            let mut errors = 0usize;
            for w in workers {
                let (l, e) = w.join().expect("client thread");
                latencies_ms.extend(l);
                errors += e;
            }
            let wall_s = t0.elapsed().as_secs_f64();
            latencies_ms.sort_by(f64::total_cmp);
            let done = latencies_ms.len();
            let qps = done as f64 / wall_s.max(1e-9);
            let mean_ms = latencies_ms.iter().sum::<f64>() / (done.max(1) as f64);
            let p95_ms = if done == 0 {
                0.0
            } else {
                latencies_ms[(((done as f64) * 0.95).ceil() as usize).clamp(1, done) - 1]
            };
            println!(
                "  {threads:>7} {clients:>7} {depth:>8} {done:>9} {qps:>9.1} {mean_ms:>9.2} {p95_ms:>9.2} {errors:>7}"
            );
            if !first {
                json.push(',');
            }
            first = false;
            json.push_str(&format!(
                "{{\"threads\":{threads},\"clients\":{clients},\"pipeline\":{depth},\
                 \"requests\":{done},\"wall_s\":{wall_s:.4},\"throughput_qps\":{qps:.2},\
                 \"mean_ms\":{mean_ms:.3},\"p95_ms\":{p95_ms:.3},\"errors\":{errors}}}"
            ));
        };
        for clients in CLIENT_COUNTS {
            row(clients, 1);
        }
        for clients in PIPELINED_COUNTS {
            row(clients, PIPELINE_DEPTH);
        }
        handle.shutdown();
        join.join().expect("event loop").expect("serve");
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}

/// Index-backend comparison: runs the QuerySet A and B workloads on the
/// II engine under every `SetBackend`, reporting per-backend index bytes
/// built and query runtimes (the §6 "bitmap-encoded lists" axis extended
/// with the block-compressed codec). Cell counts are asserted identical
/// across backends — the encodings may only trade space and time. Writes
/// `BENCH_index.json`.
fn index_bench(scale: f64) {
    println!("=== Index backends: list vs bitmap vs compressed (QuerySet A/B) ===");
    const BACKENDS: [(SetBackend, &str); 4] = [
        (SetBackend::List, "list"),
        (SetBackend::Bitmap, "bitmap"),
        (SetBackend::Compressed, "compressed"),
        (SetBackend::Auto, "auto"),
    ];
    let d = ((200_000.0 * scale) as usize).max(100);
    let workloads: Vec<(EventDb, solap_bench::plans::Plan)> = {
        let db_a = synthetic(100, 20.0, 0.9, d, false);
        let plan_a = query_set_a(&db_a, PatternKind::Substring, 5).expect("plan");
        let db_b = synthetic(100, 20.0, 0.9, d, true);
        let plan_b = query_set_b(&db_b).expect("plan");
        vec![(db_a, plan_a), (db_b, plan_b)]
    };
    let mut json = String::from("{\"runs\":[");
    let mut first = true;
    for (db, plan) in &workloads {
        println!("--- {} ---", plan.name);
        println!(
            "  {:<12} {:>12} {:>12} {:>10}",
            "backend", "index bytes", "runtime ms", "cells"
        );
        let mut baseline_cells: Option<Vec<usize>> = None;
        for (backend, name) in BACKENDS {
            let config = EngineConfig {
                strategy: Strategy::InvertedIndex,
                backend,
                ..Default::default()
            };
            let r = run_plan(db.clone(), plan, config, name).expect("II run");
            let cells: Vec<usize> = r.steps.iter().map(|s| s.cells).collect();
            match &baseline_cells {
                None => baseline_cells = Some(cells.clone()),
                Some(base) => assert_eq!(
                    base, &cells,
                    "backend {name} changed the cuboid on {}",
                    plan.name
                ),
            }
            let bytes = r.total_index_bytes();
            let ms = r.total_runtime().as_secs_f64() * 1000.0;
            println!(
                "  {:<12} {:>12} {:>12.1} {:>10}",
                name,
                bytes,
                ms,
                cells.iter().sum::<usize>()
            );
            if !first {
                json.push(',');
            }
            first = false;
            json.push_str(&format!(
                "{{\"plan\":\"{}\",\"backend\":\"{}\",\"index_bytes_built\":{},\"total_runtime_ms\":{:.3},\"steps\":[",
                plan.name, name, bytes, ms
            ));
            for (j, s) in r.steps.iter().enumerate() {
                if j > 0 {
                    json.push(',');
                }
                json.push_str(&format!(
                    "{{\"label\":\"{}\",\"runtime_ms\":{:.3},\"scanned\":{},\"cells\":{},\"index_bytes\":{}}}",
                    s.label,
                    s.runtime.as_secs_f64() * 1000.0,
                    s.scanned,
                    s.cells,
                    s.index_bytes
                ));
            }
            json.push_str("]}");
        }
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_index.json", &json).expect("write BENCH_index.json");
    println!("wrote BENCH_index.json");
}

/// Cost-based planner vs fixed strategies (DESIGN.md §15): runs the
/// QuerySet A and B workloads under the planner (`Auto` + `plan`) and
/// under fixed CB / fixed II with planning off, best-of-3 on fresh
/// engines. Results must be identical cell-for-cell; the planner's total
/// runtime must be within 10% of the best fixed strategy on every
/// workload (the PR 10 acceptance bar — asserted, not just recorded).
/// Writes `BENCH_plan.json`.
fn plan_bench(scale: f64) {
    println!("=== Plan: cost-based planner vs fixed strategies (QuerySet A/B) ===");
    const REPS: usize = 3;
    let d = ((200_000.0 * scale) as usize).max(100);
    let workloads: Vec<(EventDb, solap_bench::plans::Plan)> = {
        let db_a = synthetic(100, 20.0, 0.9, d, false);
        let plan_a = query_set_a(&db_a, PatternKind::Substring, 5).expect("plan");
        let db_b = synthetic(100, 20.0, 0.9, d, true);
        let plan_b = query_set_b(&db_b).expect("plan");
        vec![(db_a, plan_a), (db_b, plan_b)]
    };
    let configs: [(&str, Strategy, bool); 3] = [
        ("planner", Strategy::Auto, true),
        ("CB", Strategy::CounterBased, false),
        ("II", Strategy::InvertedIndex, false),
    ];
    let mut json = String::from("{\"runs\":[");
    let mut summary = String::from("\"summary\":[");
    let mut first = true;
    for (db, plan) in &workloads {
        println!("--- {} ---", plan.name);
        println!(
            "  {:<8} {:>12} {:>10}   strategies taken",
            "config", "runtime ms", "cells"
        );
        let mut runs: Vec<RunReport> = Vec::new();
        for (label, strategy, use_planner) in configs {
            // Best of REPS on fresh engines: the cost model re-seeds each
            // time, so every rep measures the same plan, not a warm cache.
            let best = (0..REPS)
                .map(|_| {
                    let config = EngineConfig {
                        strategy,
                        plan: use_planner,
                        ..Default::default()
                    };
                    run_plan(db.clone(), plan, config, label).expect("run")
                })
                .min_by(|a, b| a.total_runtime().cmp(&b.total_runtime()))
                .expect("REPS > 0");
            let taken: Vec<String> = best
                .steps
                .iter()
                .map(|s| format!("{}:{:.1}ms", s.strategy, s.runtime.as_secs_f64() * 1000.0))
                .collect();
            println!(
                "  {:<8} {:>12.1} {:>10}   {}",
                label,
                best.total_runtime().as_secs_f64() * 1000.0,
                best.steps.iter().map(|s| s.cells).sum::<usize>(),
                taken.join(" ")
            );
            runs.push(best);
        }
        // The planner is a pure optimizer: identical cells per step.
        for fixed in &runs[1..] {
            for (p, f) in runs[0].steps.iter().zip(&fixed.steps) {
                assert_eq!(
                    p.cells, f.cells,
                    "planner changed the answer on {} step {}",
                    plan.name, p.label
                );
            }
        }
        let planner_ms = runs[0].total_runtime().as_secs_f64() * 1000.0;
        let fixed_ms: Vec<f64> = runs[1..]
            .iter()
            .map(|r| r.total_runtime().as_secs_f64() * 1000.0)
            .collect();
        let best_fixed_ms = fixed_ms.iter().copied().fold(f64::INFINITY, f64::min);
        let ratio = planner_ms / best_fixed_ms;
        println!("  planner / best fixed = {ratio:.3}");
        assert!(
            ratio <= 1.10,
            "planner lost more than 10% to a fixed strategy on {}: {planner_ms:.1} ms vs {best_fixed_ms:.1} ms",
            plan.name
        );
        for r in &runs {
            if !first {
                json.push(',');
            }
            first = false;
            json.push_str(&format!(
                "{{\"plan\":\"{}\",\"config\":\"{}\",\"total_runtime_ms\":{:.3},\"steps\":[",
                r.name,
                r.config,
                r.total_runtime().as_secs_f64() * 1000.0
            ));
            for (j, s) in r.steps.iter().enumerate() {
                if j > 0 {
                    json.push(',');
                }
                json.push_str(&format!(
                    "{{\"label\":\"{}\",\"strategy\":\"{}\",\"runtime_ms\":{:.3},\"scanned\":{},\"cells\":{}}}",
                    s.label,
                    s.strategy,
                    s.runtime.as_secs_f64() * 1000.0,
                    s.scanned,
                    s.cells
                ));
            }
            json.push_str("]}");
        }
        if summary.len() > "\"summary\":[".len() {
            summary.push(',');
        }
        summary.push_str(&format!(
            "{{\"plan\":\"{}\",\"planner_ms\":{planner_ms:.3},\"cb_ms\":{:.3},\"ii_ms\":{:.3},\
             \"best_fixed_ms\":{best_fixed_ms:.3},\"planner_over_best_fixed\":{ratio:.4}}}",
            plan.name, fixed_ms[0], fixed_ms[1]
        ));
    }
    summary.push(']');
    json.push_str("],");
    json.push_str(&summary);
    json.push_str("}\n");
    std::fs::write("BENCH_plan.json", &json).expect("write BENCH_plan.json");
    println!("wrote BENCH_plan.json");
}

/// Streaming-ingestion throughput: events/second through the engine's
/// store path at each durability level — pure in-memory, and write-ahead
/// logged with `off`/`batch`/`always` fsync — with a live cuboid
/// registered so every batch also exercises incremental maintenance.
/// Emits `BENCH_ingest.json`.
fn ingest_bench(scale: f64) {
    use solap_core::SCuboidSpec;
    use solap_eventdb::{AttrLevel, ColumnType, EventDbBuilder, FsyncPolicy, SortKey, Value};
    use solap_pattern::PatternTemplate;

    let batches = ((4_000.0 * scale) as usize).max(50);
    let batch_size = 8usize;

    fn schema() -> EventDb {
        EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("symbol", ColumnType::Str)
            .build()
            .unwrap()
    }

    fn spec() -> SCuboidSpec {
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
    }

    println!("=== streaming ingestion (events/sec by durability) ===");
    println!(
        "  {:<10} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "policy", "events", "events/sec", "extended", "indexes", "fallbacks"
    );
    let mut json = String::from("{\"runs\":[");
    let policies: [(&str, Option<FsyncPolicy>); 4] = [
        ("memory", None),
        ("off", Some(FsyncPolicy::Off)),
        ("batch", Some(FsyncPolicy::Batch)),
        ("always", Some(FsyncPolicy::Always)),
    ];
    for (i, (name, policy)) in policies.iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("solap-bench-ingest-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = match policy {
            None => Engine::new(schema()),
            Some(p) => Engine::builder(schema())
                .durable_with_policy(&dir, *p)
                .expect("open durable engine")
                .build(),
        };
        // Prime a live cuboid so every append drives the incremental
        // maintenance path, not just the log.
        for sid in 0..4i64 {
            engine
                .append_events(&[
                    vec![Value::Int(sid), Value::Int(0), Value::from("s0")],
                    vec![Value::Int(sid), Value::Int(1), Value::from("s1")],
                ])
                .expect("seed batch");
        }
        engine.execute(&spec()).expect("prime live spec");
        let (mut extended, mut indexes, mut fallbacks) = (0usize, 0usize, 0usize);
        let t0 = Instant::now();
        for b in 0..batches {
            let sid = 100 + b as i64;
            let batch: Vec<Vec<Value>> = (0..batch_size)
                .map(|p| {
                    vec![
                        Value::Int(sid),
                        Value::Int(p as i64),
                        Value::from(if (b + p) % 2 == 0 { "s0" } else { "s1" }),
                    ]
                })
                .collect();
            let report = engine.append_events(&batch).expect("stream batch");
            extended += report.groups_extended;
            indexes += report.indexes_extended;
            fallbacks += report.rebuild_fallbacks;
        }
        let elapsed = t0.elapsed();
        let events = batches * batch_size;
        let eps = events as f64 / elapsed.as_secs_f64();
        println!(
            "  {:<10} {:>10} {:>12.0} {:>10} {:>10} {:>10}",
            name, events, eps, extended, indexes, fallbacks
        );
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"policy\":\"{name}\",\"events\":{events},\"batches\":{batches},\
             \"elapsed_ms\":{:.3},\"events_per_sec\":{:.0},\"groups_extended\":{extended},\
             \"indexes_extended\":{indexes},\"rebuild_fallbacks\":{fallbacks}}}",
            elapsed.as_secs_f64() * 1000.0,
            eps
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
    json.push_str("]}\n");
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    println!("wrote BENCH_ingest.json");
}

fn main() {
    // Arm SOLAP_FAILPOINTS before any measurement code runs: parts of the
    // harness touch eventdb/index paths without constructing an `Engine`,
    // so the builder's own seeding cannot be relied on here.
    solap_eventdb::failpoint::init();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.05f64;
    let mut which: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number");
            }
            other => which.push(other.to_owned()),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }
    let t0 = Instant::now();
    for exp in &which {
        match exp.as_str() {
            "table1" => table1(scale),
            "fig16" => fig16(scale),
            "qa-vary-l" => qa_vary_l(scale),
            "qb" => qb(scale),
            "qc" => qc(scale),
            "vary-theta" => vary_theta(scale),
            "vary-i" => vary_i(scale),
            "subsequence" => subsequence(scale),
            "ablation" => ablation(scale),
            "threads" => thread_scaling(scale),
            "profile" => profile_dump(scale),
            "serve" => serve_bench(scale),
            "index" => index_bench(scale),
            "plan" => plan_bench(scale),
            "ingest" => ingest_bench(scale),
            "all" => {
                table1(scale);
                fig16(scale);
                qa_vary_l(scale);
                qb(scale);
                qc(scale);
                vary_theta(scale);
                vary_i(scale);
                subsequence(scale);
                ablation(scale);
            }
            other => {
                eprintln!(
                    "unknown experiment `{other}` — table1|fig16|qa-vary-l|qb|qc|vary-theta|vary-i|subsequence|ablation|threads|profile|serve|index|plan|ingest|all"
                );
                std::process::exit(2);
            }
        }
    }
    println!(
        "\nall requested experiments finished in {:.1}s (scale {scale})",
        t0.elapsed().as_secs_f64()
    );
}
