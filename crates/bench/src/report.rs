//! Plain-text tables in the shape the paper reports.

use std::time::Duration;

use crate::runner::RunReport;

fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1000.0)
}

/// Formats one run as a per-step table.
pub fn format_run(r: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} — {}\n", r.name, r.config));
    if let Some((t, bytes)) = r.precompute {
        out.push_str(&format!(
            "  precompute: {} ms, {:.3} MB of indices\n",
            ms(t),
            bytes as f64 / 1e6
        ));
    }
    out.push_str(&format!(
        "  {:<6} {:>12} {:>12} {:>10} {:>12} {:>8}\n",
        "query", "runtime(ms)", "scanned", "cells", "index(MB)", "path"
    ));
    for s in &r.steps {
        out.push_str(&format!(
            "  {:<6} {:>12} {:>12} {:>10} {:>12.3} {:>8}\n",
            s.label,
            ms(s.runtime),
            s.scanned,
            s.cells,
            s.index_bytes as f64 / 1e6,
            s.strategy
        ));
    }
    let total: Duration = r.total_runtime();
    out.push_str(&format!(
        "  {:<6} {:>12} {:>12}\n",
        "Σ",
        ms(total),
        r.cumulative_scanned().last().copied().unwrap_or(0)
    ));
    out
}

/// Formats a CB-vs-II comparison in the layout of Table 1: one row per
/// query, both approaches side by side.
pub fn format_comparison(cb: &RunReport, ii: &RunReport) -> String {
    assert_eq!(cb.steps.len(), ii.steps.len(), "mismatched runs");
    let mut out = String::new();
    out.push_str(&format!("{}\n", cb.name));
    out.push_str(&format!(
        "  {:<6} | {:>12} {:>12} | {:>12} {:>12} {:>12}\n",
        "", "CB run(ms)", "CB scanned", "II run(ms)", "II scanned", "II idx(MB)"
    ));
    for (a, b) in cb.steps.iter().zip(&ii.steps) {
        out.push_str(&format!(
            "  {:<6} | {:>12} {:>12} | {:>12} {:>12} {:>12.3}\n",
            a.label,
            ms(a.runtime),
            a.scanned,
            ms(b.runtime),
            b.scanned,
            b.index_bytes as f64 / 1e6
        ));
    }
    out.push_str(&format!(
        "  {:<6} | {:>12} {:>12} | {:>12} {:>12} {:>12.3}\n",
        "Σ",
        ms(cb.total_runtime()),
        cb.cumulative_scanned().last().copied().unwrap_or(0),
        ms(ii.total_runtime()),
        ii.cumulative_scanned().last().copied().unwrap_or(0),
        ii.total_index_bytes() as f64 / 1e6
    ));
    if let Some((t, bytes)) = ii.precompute {
        out.push_str(&format!(
            "  (II precompute: {} ms, {:.3} MB)\n",
            ms(t),
            bytes as f64 / 1e6
        ));
    }
    out
}

/// Formats the per-stage profiles of every step of a run, one block per
/// step (the observability annex of a report).
pub fn format_profiles(r: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} — {} (profiles)\n", r.name, r.config));
    for s in &r.steps {
        let Some(p) = &s.profile else { continue };
        out.push_str(&format!("  {}\n", s.label));
        for line in p.render_text(false).lines() {
            out.push_str("    ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Formats a Figure-16-style cumulative series: one line per query with
/// the cumulative runtime and the bracketed cumulative-scans annotation.
pub fn format_cumulative(r: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("  {} ({}):\n", r.config, r.name));
    let times = r.cumulative_runtime();
    let scans = r.cumulative_scanned();
    for ((s, t), n) in r.steps.iter().zip(&times).zip(&scans) {
        out.push_str(&format!(
            "    {:<6} cum-runtime {:>10} ms  (cum-scanned {})\n",
            s.label,
            ms(*t),
            n
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::StepReport;

    fn fake_run(label: &str) -> RunReport {
        RunReport {
            name: "Demo".into(),
            config: label.into(),
            steps: vec![
                StepReport {
                    label: "Q1".into(),
                    runtime: Duration::from_millis(10),
                    scanned: 100,
                    cells: 5,
                    index_bytes: 1000,
                    strategy: "II",
                    profile: Some(solap_eventdb::QueryProfile::default()),
                    cuboid: None,
                },
                StepReport {
                    label: "Q2".into(),
                    runtime: Duration::from_millis(5),
                    scanned: 20,
                    cells: 3,
                    index_bytes: 0,
                    strategy: "II",
                    profile: None,
                    cuboid: None,
                },
            ],
            precompute: Some((Duration::from_millis(2), 5000)),
        }
    }

    #[test]
    fn run_table_contains_rows_and_total() {
        let s = format_run(&fake_run("II"));
        assert!(s.contains("Q1") && s.contains("Q2"));
        assert!(s.contains("precompute"));
        assert!(s.contains("15.0"), "{s}"); // Σ runtime
        assert!(s.contains("120"), "{s}"); // Σ scanned
    }

    #[test]
    fn comparison_pairs_rows() {
        let s = format_comparison(&fake_run("CB"), &fake_run("II"));
        assert!(s.contains("CB run(ms)"));
        assert!(s.contains("II scanned"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn cumulative_is_monotone_in_output() {
        let s = format_cumulative(&fake_run("II"));
        assert!(s.contains("cum-runtime"));
        assert!(s.contains("(cum-scanned 120)"));
    }

    #[test]
    fn profiles_block_skips_missing_profiles() {
        let s = format_profiles(&fake_run("II"));
        assert!(s.contains("Q1") && s.contains("profile:"), "{s}");
        assert!(!s.contains("Q2"), "profile-less steps are skipped: {s}");
    }
}
