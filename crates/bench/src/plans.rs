//! Experiment plans: data-dependent query sequences expressed as steps.
//!
//! The paper's query sets are *iterative*: "a query is obtained from a
//! previous one by doing a slice followed by an APPEND" (QuerySet A), or a
//! subcube selection followed by P-DRILL-DOWN / P-ROLL-UP (QuerySet B).
//! The slice targets depend on the data (the cell with the highest count),
//! so a plan is a list of [`Step`]s the runner interprets against the
//! evolving cuboid.

use solap_core::{Op, SCuboidSpec};
use solap_eventdb::{AttrId, AttrLevel, EventDb, Result, SortKey};
use solap_pattern::{MatchPred, PatternKind, PatternTemplate};

/// An untimed specification transform computed from the current cuboid.
#[derive(Debug, Clone)]
pub enum PreSlice {
    /// Slice every pattern dimension to the values of the highest cell
    /// (QuerySet A's "slice operation on the cell with the highest count").
    TopCellAllDims,
    /// Slice the first pattern dimension to the value whose subcube has
    /// the highest total count (QuerySet B's "subcube operation to select
    /// the subcube with the same X value where its total count is the
    /// highest").
    TopSubcube {
        /// The pattern dimension's symbol name.
        dim: String,
    },
}

/// One step of a plan.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // plans hold a handful of steps
pub enum Step {
    /// Execute a fresh specification (timed).
    Query {
        /// Step label (e.g. `QA1`).
        label: String,
        /// The specification to run.
        spec: SCuboidSpec,
    },
    /// Apply untimed slices, then one timed operation.
    Op {
        /// Step label (e.g. `QA2`).
        label: String,
        /// Slices applied before the operation (untimed spec transforms).
        pre: Vec<PreSlice>,
        /// The timed operation.
        op: Op,
    },
    /// Restore the spec/cuboid snapshot taken after step `index` (untimed;
    /// lets QB3 branch off QB1).
    Reset {
        /// The step to restore (0-based).
        index: usize,
    },
}

/// A full experiment plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Plan name (for reports).
    pub name: String,
    /// The steps, first of which must be a [`Step::Query`].
    pub steps: Vec<Step>,
    /// Optional offline precompute: build the generic size-`m` index over
    /// `(attr, level)` before timing anything (§5.2 precomputes L2/L3).
    pub precompute: Option<(AttrId, usize, usize)>,
}

/// Builds the base spec for synthetic data: `SUBSTRING`/`SUBSEQUENCE`
/// templates over the `symbol` column at `level`, clustered by `seq-id`,
/// ordered by `pos`.
pub fn synthetic_spec(
    db: &EventDb,
    kind: PatternKind,
    symbols: &[&str],
    level: usize,
) -> Result<SCuboidSpec> {
    let attr = db.attr("symbol")?;
    let mut bindings: Vec<(&str, AttrId, usize)> = Vec::new();
    for &s in symbols {
        if !bindings.iter().any(|(n, _, _)| *n == s) {
            bindings.push((s, attr, level));
        }
    }
    let template = PatternTemplate::new(kind, symbols, &bindings)?;
    Ok(SCuboidSpec::new(
        template,
        vec![AttrLevel::new(db.attr("seq-id")?, 0)],
        vec![SortKey {
            attr: db.attr("pos")?,
            ascending: true,
        }],
    ))
}

/// QuerySet A (§5.2): QA1 = `(X, Y)`; each following query slices the top
/// cell and APPENDs a fresh symbol — QA2 `(X, Y, Z)` … QA5 `(X, Y, Z, A, B)`
/// (sizes two through six).
pub fn query_set_a(db: &EventDb, kind: PatternKind, queries: usize) -> Result<Plan> {
    let attr = db.attr("symbol")?;
    let mut steps = vec![Step::Query {
        label: "QA1".into(),
        spec: synthetic_spec(db, kind, &["X", "Y"], 0)?,
    }];
    let fresh = ["Z", "A", "B", "C", "D", "E"];
    for i in 1..queries {
        steps.push(Step::Op {
            label: format!("QA{}", i + 1),
            pre: vec![PreSlice::TopCellAllDims],
            op: Op::Append {
                symbol: fresh[i - 1].to_owned(),
                attr,
                level: 0,
            },
        });
    }
    Ok(Plan {
        name: format!("QuerySet A ({:?})", kind),
        steps,
        precompute: Some((attr, 0, 2)),
    })
}

/// QuerySet B (§5.2): the 3-level hierarchy experiment. QB1 = `(X, Y, Z)`
/// at the middle (group) level; QB2 = subcube on the hottest X then
/// P-DRILL-DOWN X to the finest level; QB3 = (from QB1) the same subcube
/// then P-ROLL-UP Y to the highest level. `L3^(X,Y,Z)` is precomputed.
pub fn query_set_b(db: &EventDb) -> Result<Plan> {
    let attr = db.attr("symbol")?;
    let qb1 = synthetic_spec(db, PatternKind::Substring, &["X", "Y", "Z"], 1)?;
    Ok(Plan {
        name: "QuerySet B".into(),
        steps: vec![
            Step::Query {
                label: "QB1".into(),
                spec: qb1,
            },
            Step::Op {
                label: "QB2".into(),
                pre: vec![PreSlice::TopSubcube { dim: "X".into() }],
                op: Op::PDrillDown { dim: "X".into() },
            },
            Step::Reset { index: 0 },
            Step::Op {
                label: "QB3".into(),
                pre: vec![PreSlice::TopSubcube { dim: "X".into() }],
                op: Op::PRollUp { dim: "Y".into() },
            },
        ],
        precompute: Some((attr, 1, 3)),
    })
}

/// QuerySet C (§5.2): restricted-symbol templates. QC1 = `(X, Y)`,
/// QC2 appends `Y` → `(X, Y, Y)`, QC3 appends `X` → `(X, Y, Y, X)` — the
/// repeated symbols defeat the P-ROLL-UP merge, so QC4's roll-up falls back
/// to QUERYINDICES.
pub fn query_set_c(db: &EventDb) -> Result<Plan> {
    let attr = db.attr("symbol")?;
    Ok(Plan {
        name: "QuerySet C (X,Y,Y,X)".into(),
        steps: vec![
            Step::Query {
                label: "QC1".into(),
                spec: synthetic_spec(db, PatternKind::Substring, &["X", "Y"], 0)?,
            },
            Step::Op {
                label: "QC2".into(),
                pre: vec![],
                op: Op::Append {
                    symbol: "Y".into(),
                    attr,
                    level: 0,
                },
            },
            Step::Op {
                label: "QC3".into(),
                pre: vec![],
                op: Op::Append {
                    symbol: "X".into(),
                    attr,
                    level: 0,
                },
            },
            Step::Op {
                label: "QC4".into(),
                pre: vec![],
                op: Op::PRollUp { dim: "Y".into() },
            },
        ],
        precompute: Some((attr, 0, 2)),
    })
}

/// The Table 1 exploration on the clickstream: Qa = `(X, Y)` at
/// page-category; Qb = slice the hottest cell + P-DRILL-DOWN Y to raw
/// pages; Qc = APPEND Z at the raw level. No precompute — Table 1 charges
/// Qa with the on-demand index build.
pub fn clickstream_plan(db: &EventDb) -> Result<Plan> {
    let page = db.attr("page")?;
    let session = db.attr("session-id")?;
    let time = db.attr("request-time")?;
    let template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y"],
        &[("X", page, 1), ("Y", page, 1)],
    )?;
    let qa = SCuboidSpec::new(
        template,
        vec![AttrLevel::new(session, 0)],
        vec![SortKey {
            attr: time,
            ascending: true,
        }],
    )
    .with_mpred(MatchPred::True);
    Ok(Plan {
        name: "Table 1 (clickstream)".into(),
        steps: vec![
            Step::Query {
                label: "Qa".into(),
                spec: qa,
            },
            Step::Op {
                label: "Qb".into(),
                pre: vec![PreSlice::TopCellAllDims],
                op: Op::PDrillDown { dim: "Y".into() },
            },
            Step::Op {
                label: "Qc".into(),
                pre: vec![],
                op: Op::Append {
                    symbol: "Z".into(),
                    attr: page,
                    level: 0,
                },
            },
        ],
        precompute: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_datagen::{generate_synthetic, SyntheticConfig};

    fn db() -> EventDb {
        generate_synthetic(&SyntheticConfig {
            i: 20,
            l: 8.0,
            theta: 0.9,
            d: 50,
            seed: 1,
            hierarchy: true,
        })
        .unwrap()
    }

    #[test]
    fn query_set_a_shapes() {
        let db = db();
        let plan = query_set_a(&db, PatternKind::Substring, 5).unwrap();
        assert_eq!(plan.steps.len(), 5);
        assert!(matches!(&plan.steps[0], Step::Query { label, .. } if label == "QA1"));
        assert!(matches!(
            &plan.steps[4],
            Step::Op { label, op: Op::Append { symbol, .. }, .. }
                if label == "QA5" && symbol == "C"
        ));
        assert!(plan.precompute.is_some());
    }

    #[test]
    fn query_set_b_resets_to_qb1() {
        let db = db();
        let plan = query_set_b(&db).unwrap();
        assert_eq!(plan.steps.len(), 4);
        assert!(matches!(plan.steps[2], Step::Reset { index: 0 }));
        assert_eq!(plan.precompute, Some((db.attr("symbol").unwrap(), 1, 3)));
    }

    #[test]
    fn query_set_c_ends_with_roll_up() {
        let db = db();
        let plan = query_set_c(&db).unwrap();
        assert!(matches!(
            plan.steps.last().unwrap(),
            Step::Op {
                op: Op::PRollUp { .. },
                ..
            }
        ));
    }

    #[test]
    fn synthetic_spec_validates() {
        let db = db();
        for (kind, level) in [
            (PatternKind::Substring, 0),
            (PatternKind::Substring, 1),
            (PatternKind::Subsequence, 2),
        ] {
            let spec = synthetic_spec(&db, kind, &["X", "Y"], level).unwrap();
            spec.validate(&db).unwrap();
        }
    }
}
