//! Interprets experiment plans against an engine, collecting the metrics
//! the paper reports: per-query runtime, **number of sequences scanned**
//! and inverted-index bytes built (Table 1's columns, Figure 16's
//! annotations).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use solap_core::{ops, Engine, EngineConfig, Op, SCuboid, SCuboidSpec};
use solap_eventdb::{EventDb, LevelValue, QueryProfile, Result};

use crate::plans::{Plan, PreSlice, Step};

/// Metrics of one plan step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Step label (`QA1`, `Qb`, …).
    pub label: String,
    /// Wall-clock runtime of the timed query.
    pub runtime: Duration,
    /// Distinct sequences scanned by the timed query.
    pub scanned: u64,
    /// Non-empty cells of the resulting cuboid.
    pub cells: usize,
    /// Bytes of inverted indices built during the step.
    pub index_bytes: usize,
    /// Which engine path answered (`CB` / `II` / `cache`).
    pub strategy: &'static str,
    /// The step's per-stage profile (`None` for synthetic reports built
    /// without executing a query).
    pub profile: Option<QueryProfile>,
    /// The resulting cuboid (`None` for synthetic reports) — equivalence
    /// tests compare runs cell-for-cell, not just by count.
    pub cuboid: Option<Arc<SCuboid>>,
}

/// Metrics of a whole plan run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Plan name.
    pub name: String,
    /// Strategy label the run was configured with.
    pub config: String,
    /// Per-step metrics in order.
    pub steps: Vec<StepReport>,
    /// Precompute time and bytes, if the plan precomputes an index.
    pub precompute: Option<(Duration, usize)>,
}

impl RunReport {
    /// Cumulative runtime after each step (Figure 16's y-axis).
    pub fn cumulative_runtime(&self) -> Vec<Duration> {
        let mut acc = Duration::ZERO;
        self.steps
            .iter()
            .map(|s| {
                acc += s.runtime;
                acc
            })
            .collect()
    }

    /// Cumulative sequences scanned after each step (Figure 16's bracketed
    /// annotations).
    pub fn cumulative_scanned(&self) -> Vec<u64> {
        let mut acc = 0;
        self.steps
            .iter()
            .map(|s| {
                acc += s.scanned;
                acc
            })
            .collect()
    }

    /// Total runtime.
    pub fn total_runtime(&self) -> Duration {
        self.steps.iter().map(|s| s.runtime).sum()
    }

    /// Total index bytes built across steps.
    pub fn total_index_bytes(&self) -> usize {
        self.steps.iter().map(|s| s.index_bytes).sum::<usize>()
            + self.precompute.map(|(_, b)| b).unwrap_or(0)
    }
}

/// Applies an untimed pre-slice to a spec using the current cuboid.
fn apply_pre(
    db: &EventDb,
    spec: &SCuboidSpec,
    cuboid: &SCuboid,
    pre: &PreSlice,
) -> Result<SCuboidSpec> {
    match pre {
        PreSlice::TopCellAllDims => {
            let top = cuboid.top_k(1);
            let Some((key, _)) = top.first() else {
                return Ok(spec.clone()); // empty cuboid: nothing to slice
            };
            let pattern: Vec<(String, LevelValue)> = spec
                .template
                .dims
                .iter()
                .enumerate()
                .map(|(i, d)| (d.name.clone(), key.pattern[i]))
                .collect();
            ops::apply(
                db,
                spec,
                &Op::Dice {
                    global: vec![],
                    pattern,
                },
            )
        }
        PreSlice::TopSubcube { dim } => {
            let d = spec
                .template
                .dims
                .iter()
                .position(|x| x.name == *dim)
                .expect("plan names an existing dimension");
            // Total count per value of the dimension.
            let mut totals: HashMap<LevelValue, f64> = HashMap::new();
            for (k, v) in &cuboid.cells {
                *totals.entry(k.pattern[d]).or_default() += v.as_f64();
            }
            let Some((&best, _)) = totals
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN totals"))
            else {
                return Ok(spec.clone());
            };
            ops::apply(
                db,
                spec,
                &Op::SlicePattern {
                    dim: dim.clone(),
                    value: best,
                },
            )
        }
    }
}

/// Runs a plan on a fresh engine over `db` with `config`, returning the
/// metrics. The database is moved in so each strategy gets identical data
/// (clone it at the call site).
pub fn run_plan(db: EventDb, plan: &Plan, config: EngineConfig, label: &str) -> Result<RunReport> {
    let strategy = config.strategy;
    let engine = Engine::builder(db).config(config).build();
    let mut report = RunReport {
        name: plan.name.clone(),
        config: label.to_owned(),
        steps: Vec::new(),
        precompute: None,
    };
    let mut current: Option<(SCuboidSpec, Arc<SCuboid>)> = None;
    let mut snapshots: Vec<(SCuboidSpec, Arc<SCuboid>)> = Vec::new();
    for step in &plan.steps {
        match step {
            Step::Query { label, spec } => {
                if let (Some((attr, level, m)), true) =
                    (plan.precompute, report.precompute.is_none())
                {
                    // Offline precompute is charged separately (the paper
                    // reports "the precomputations took 0.43s …" apart from
                    // query times) and only applies to the II engine.
                    if matches!(
                        strategy,
                        solap_core::Strategy::InvertedIndex | solap_core::Strategy::Auto
                    ) {
                        let t0 = Instant::now();
                        let bytes = engine.precompute_index(spec, attr, level, m)?;
                        report.precompute = Some((t0.elapsed(), bytes));
                    }
                }
                let out = engine.execute(spec)?;
                report.steps.push(StepReport {
                    label: label.clone(),
                    runtime: out.stats.elapsed,
                    scanned: out.stats.sequences_scanned,
                    cells: out.cuboid.len(),
                    index_bytes: out.stats.index_bytes_built,
                    strategy: out.stats.strategy,
                    profile: Some(out.profile.clone()),
                    cuboid: Some(Arc::clone(&out.cuboid)),
                });
                current = Some((spec.clone(), Arc::clone(&out.cuboid)));
            }
            Step::Op { label, pre, op } => {
                let (mut spec, cuboid) = current.clone().expect("plan starts with a query");
                for p in pre {
                    spec = apply_pre(&engine.db(), &spec, &cuboid, p)?;
                }
                let (new_spec, out) = engine.execute_op(&spec, op)?;
                report.steps.push(StepReport {
                    label: label.clone(),
                    runtime: out.stats.elapsed,
                    scanned: out.stats.sequences_scanned,
                    cells: out.cuboid.len(),
                    index_bytes: out.stats.index_bytes_built,
                    strategy: out.stats.strategy,
                    profile: Some(out.profile.clone()),
                    cuboid: Some(Arc::clone(&out.cuboid)),
                });
                current = Some((new_spec, Arc::clone(&out.cuboid)));
            }
            Step::Reset { index } => {
                current = Some(snapshots[*index].clone());
            }
        }
        if let Some(c) = &current {
            snapshots.push(c.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plans::{clickstream_plan, query_set_a, query_set_b, query_set_c};
    use solap_core::Strategy;
    use solap_datagen::{
        generate_clickstream, generate_synthetic, ClickstreamConfig, SyntheticConfig,
    };
    use solap_pattern::PatternKind;

    fn db(d: usize) -> EventDb {
        generate_synthetic(&SyntheticConfig {
            i: 30,
            l: 10.0,
            theta: 0.9,
            d,
            seed: 17,
            hierarchy: true,
        })
        .unwrap()
    }

    fn cfg(strategy: Strategy) -> EngineConfig {
        EngineConfig {
            strategy,
            ..Default::default()
        }
    }

    #[test]
    fn query_set_a_runs_and_cb_matches_ii() {
        let data = db(300);
        let plan = query_set_a(&data, PatternKind::Substring, 4).unwrap();
        let cb = run_plan(data.clone(), &plan, cfg(Strategy::CounterBased), "CB").unwrap();
        let ii = run_plan(data, &plan, cfg(Strategy::InvertedIndex), "II").unwrap();
        assert_eq!(cb.steps.len(), 4);
        assert_eq!(ii.steps.len(), 4);
        // Identical cell counts per step (the plans are data-derived the
        // same way on both engines).
        for (a, b) in cb.steps.iter().zip(&ii.steps) {
            assert_eq!(a.cells, b.cells, "step {}", a.label);
        }
        // CB rescans everything every query; II scans strictly less in
        // total thanks to the precomputed L2 + slicing.
        let cb_scans = cb.cumulative_scanned();
        let ii_scans = ii.cumulative_scanned();
        assert_eq!(cb_scans.last(), Some(&(300 * 4)));
        assert!(ii_scans.last().unwrap() < cb_scans.last().unwrap());
        assert!(ii.precompute.is_some());
        assert!(cb.precompute.is_none());
    }

    #[test]
    fn query_set_b_branches() {
        let data = db(300);
        let plan = query_set_b(&data).unwrap();
        let ii = run_plan(data.clone(), &plan, cfg(Strategy::InvertedIndex), "II").unwrap();
        assert_eq!(ii.steps.len(), 3, "Reset produces no report row");
        assert_eq!(ii.steps[2].label, "QB3");
        // QB3 is a P-ROLL-UP answered from the merged index without
        // touching the data.
        assert_eq!(ii.steps[2].scanned, 0);
        let cb = run_plan(data, &plan, cfg(Strategy::CounterBased), "CB").unwrap();
        for (a, b) in cb.steps.iter().zip(&ii.steps) {
            assert_eq!(a.cells, b.cells, "step {}", a.label);
        }
    }

    #[test]
    fn query_set_c_restricted_template() {
        let data = db(200);
        let plan = query_set_c(&data).unwrap();
        let ii = run_plan(data.clone(), &plan, cfg(Strategy::InvertedIndex), "II").unwrap();
        let cb = run_plan(data, &plan, cfg(Strategy::CounterBased), "CB").unwrap();
        for (a, b) in cb.steps.iter().zip(&ii.steps) {
            assert_eq!(a.cells, b.cells, "step {}", a.label);
        }
        // QC4's roll-up on a repeated-symbol template cannot merge: it must
        // re-touch data (unlike QB3 above).
        assert!(ii.steps[3].scanned > 0);
    }

    #[test]
    fn clickstream_plan_runs() {
        let data = generate_clickstream(&ClickstreamConfig {
            sessions: 1500,
            ..Default::default()
        })
        .unwrap();
        let plan = clickstream_plan(&data).unwrap();
        let ii = run_plan(data.clone(), &plan, cfg(Strategy::InvertedIndex), "II").unwrap();
        let cb = run_plan(data, &plan, cfg(Strategy::CounterBased), "CB").unwrap();
        assert_eq!(ii.steps.len(), 3);
        // Table 1's shape: CB scans the whole dataset every query; II's
        // follow-ups are selective.
        assert_eq!(cb.steps[0].scanned, cb.steps[1].scanned);
        assert!(ii.steps[1].scanned < cb.steps[1].scanned / 2);
        assert!(ii.steps[2].scanned < cb.steps[2].scanned / 2);
        for (a, b) in cb.steps.iter().zip(&ii.steps) {
            assert_eq!(a.cells, b.cells, "step {}", a.label);
        }
    }

    #[test]
    fn cumulative_metrics() {
        let data = db(100);
        let plan = query_set_a(&data, PatternKind::Substring, 3).unwrap();
        let r = run_plan(data, &plan, cfg(Strategy::CounterBased), "CB").unwrap();
        let cum = r.cumulative_runtime();
        assert_eq!(cum.len(), 3);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(r.total_runtime(), *cum.last().unwrap());
        assert!(r.total_index_bytes() == 0);
    }

    #[test]
    fn steps_carry_profiles() {
        let data = db(100);
        let plan = query_set_a(&data, PatternKind::Substring, 3).unwrap();
        let r = run_plan(data, &plan, cfg(Strategy::CounterBased), "CB").unwrap();
        for s in &r.steps {
            let p = s.profile.as_ref().expect("executed steps have profiles");
            assert_eq!(p.strategy, s.strategy, "step {}", s.label);
            if p.detailed {
                assert_eq!(
                    p.counter(solap_eventdb::Counter::CellsMaterialized),
                    s.cells as u64,
                    "step {}",
                    s.label
                );
            }
        }
    }
}
