//! # solap-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (§5):
//!
//! * **Table 1** — the real-data exploration Qa → Qb → Qc on the
//!   clickstream substitute, CB vs II, reporting runtime, sequences
//!   scanned and index size.
//! * **Figure 16** — QuerySet A (iterative slice + APPEND) over synthetic
//!   data, varying the number of sequences `D`, with cumulative runtimes
//!   and cumulative sequences scanned.
//! * The summarized experiments: QuerySet A varying `L`, QuerySet B
//!   (P-ROLL-UP / P-DRILL-DOWN with the 3-level hierarchy) varying `D` and
//!   `L`, QuerySet C (restricted template `(X, Y, Y, X)`), varying `θ`,
//!   varying `I`, and subsequence patterns.
//! * **Ablations** this reproduction adds: list- vs bitmap-encoded
//!   inverted lists, dense vs hash counters, iceberg thresholds, and
//!   parallel counter scans.
//!
//! Run `cargo run -p solap-bench --release --bin experiments -- all` to
//! regenerate everything (use `--scale` to shrink `D`; the default 0.05
//! finishes in minutes, `--scale 1` reproduces the paper's sizes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plans;
pub mod report;
pub mod runner;

pub use plans::{Plan, PreSlice, Step};
pub use report::{format_comparison, format_run};
pub use runner::{run_plan, RunReport, StepReport};
