//! Micro-benchmarks of the pattern matcher: substring vs subsequence
//! occurrence enumeration and cell assignment under each restriction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use solap_datagen::{generate_synthetic, SyntheticConfig};
use solap_eventdb::{build_sequence_groups, AttrLevel, Pred, SeqQuerySpec, SortKey};
use solap_pattern::{CellRestriction, MatchPred, Matcher, PatternKind, PatternTemplate};

fn fixture() -> (solap_eventdb::EventDb, solap_eventdb::SequenceGroups) {
    let db = generate_synthetic(&SyntheticConfig {
        i: 50,
        l: 20.0,
        theta: 0.9,
        d: 500,
        seed: 7,
        hierarchy: false,
    })
    .unwrap();
    let groups = build_sequence_groups(
        &db,
        &SeqQuerySpec {
            filter: Pred::True,
            cluster_by: vec![AttrLevel::new(0, 0)],
            sequence_by: vec![SortKey {
                attr: 1,
                ascending: true,
            }],
            group_by: vec![],
        },
    )
    .unwrap();
    (db, groups)
}

fn template(kind: PatternKind, syms: &[&str]) -> PatternTemplate {
    let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
    for &s in syms {
        if !bindings.iter().any(|(n, _, _)| *n == s) {
            bindings.push((s, 2, 0));
        }
    }
    PatternTemplate::new(kind, syms, &bindings).unwrap()
}

fn bench_matching(c: &mut Criterion) {
    let (db, groups) = fixture();
    let trivial = MatchPred::True;
    let mut g = c.benchmark_group("matcher");
    for (name, kind, syms) in [
        ("substring-xy", PatternKind::Substring, &["X", "Y"][..]),
        (
            "substring-xyyx",
            PatternKind::Substring,
            &["X", "Y", "Y", "X"][..],
        ),
        ("subsequence-xy", PatternKind::Subsequence, &["X", "Y"][..]),
    ] {
        let t = template(kind, syms);
        let m = Matcher::new(&db, &t, &trivial);
        g.bench_function(BenchmarkId::new("assignments", name), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for seq in groups.iter_sequences() {
                    total += m
                        .assignments(seq, CellRestriction::LeftMaximalityMatchedGo)
                        .unwrap()
                        .len();
                }
                total
            })
        });
    }
    let t = template(PatternKind::Substring, &["X", "Y"]);
    let m = Matcher::new(&db, &t, &trivial);
    g.bench_function("all-matched-vs-left-max", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for seq in groups.iter_sequences() {
                total += m
                    .assignments(seq, CellRestriction::AllMatchedGo)
                    .unwrap()
                    .len();
            }
            total
        })
    });
    g.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
