//! Iterative-operation costs on a warm engine: APPEND (prefix join),
//! P-ROLL-UP (list merge), P-DRILL-DOWN (refinement) — §4.2.2's fast paths
//! against the cold counter-based equivalents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use solap_bench::plans::synthetic_spec;
use solap_core::{Engine, EngineConfig, Op, Strategy};
use solap_datagen::{generate_synthetic, SyntheticConfig};
use solap_pattern::PatternKind;

fn db() -> solap_eventdb::EventDb {
    generate_synthetic(&SyntheticConfig {
        i: 100,
        l: 20.0,
        theta: 0.9,
        d: 2_000,
        seed: 42,
        hierarchy: true,
    })
    .unwrap()
}

fn bench_operations(c: &mut Criterion) {
    let data = db();
    let symbol = 2u32;
    let mut g = c.benchmark_group("operations");
    g.sample_size(10);
    for (label, strategy) in [
        ("CB", Strategy::CounterBased),
        ("II", Strategy::InvertedIndex),
    ] {
        for (op_label, op) in [
            (
                "append",
                Op::Append {
                    symbol: "Z".into(),
                    attr: symbol,
                    level: 0,
                },
            ),
            ("p-roll-up", Op::PRollUp { dim: "Y".into() }),
        ] {
            g.bench_function(BenchmarkId::new(op_label, label), |b| {
                b.iter_with_setup(
                    || {
                        // Warm engine: the base query has been executed, so
                        // II has its indices; the op is the measured part.
                        let engine = Engine::with_config(
                            data.clone(),
                            EngineConfig {
                                strategy,
                                use_cuboid_repo: false,
                                ..Default::default()
                            },
                        );
                        let spec =
                            synthetic_spec(&engine.db(), PatternKind::Substring, &["X", "Y"], 0)
                                .unwrap();
                        engine.execute(&spec).unwrap();
                        (engine, spec)
                    },
                    |(engine, spec)| engine.execute_op(&spec, &op).unwrap().1.cuboid.len(),
                )
            });
        }
        // P-DRILL-DOWN from the group level.
        g.bench_function(BenchmarkId::new("p-drill-down", label), |b| {
            b.iter_with_setup(
                || {
                    let engine = Engine::with_config(
                        data.clone(),
                        EngineConfig {
                            strategy,
                            use_cuboid_repo: false,
                            ..Default::default()
                        },
                    );
                    let spec = synthetic_spec(&engine.db(), PatternKind::Substring, &["X", "Y"], 1)
                        .unwrap();
                    engine.execute(&spec).unwrap();
                    (engine, spec)
                },
                |(engine, spec)| {
                    engine
                        .execute_op(&spec, &Op::PDrillDown { dim: "X".into() })
                        .unwrap()
                        .1
                        .cuboid
                        .len()
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_operations);
criterion_main!(benches);
