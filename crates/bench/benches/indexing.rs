//! Inverted-index primitives: BUILDINDEX, list joins, and list- vs
//! bitmap- vs block-compressed intersections (the §6 bitmap optimisation
//! plus the DESIGN §12 codec).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use solap_datagen::{generate_synthetic, SyntheticConfig};
use solap_eventdb::{build_sequence_groups, AttrLevel, Pred, SeqQuerySpec, SortKey};
use solap_index::{build_index, join::join, Bitmap, CompressedSidSet, SetBackend, SidSet};
use solap_pattern::{PatternKind, PatternTemplate};

fn fixture() -> (solap_eventdb::EventDb, solap_eventdb::SequenceGroups) {
    let db = generate_synthetic(&SyntheticConfig {
        i: 60,
        l: 20.0,
        theta: 0.9,
        d: 2_000,
        seed: 5,
        hierarchy: false,
    })
    .unwrap();
    let groups = build_sequence_groups(
        &db,
        &SeqQuerySpec {
            filter: Pred::True,
            cluster_by: vec![AttrLevel::new(0, 0)],
            sequence_by: vec![SortKey {
                attr: 1,
                ascending: true,
            }],
            group_by: vec![],
        },
    )
    .unwrap();
    (db, groups)
}

fn template(syms: &[&str]) -> PatternTemplate {
    let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
    for &s in syms {
        if !bindings.iter().any(|(n, _, _)| *n == s) {
            bindings.push((s, 2, 0));
        }
    }
    PatternTemplate::new(PatternKind::Substring, syms, &bindings).unwrap()
}

fn bench_indexing(c: &mut Criterion) {
    let (db, groups) = fixture();
    let mut g = c.benchmark_group("indexing");
    g.sample_size(10);
    for backend in [
        SetBackend::List,
        SetBackend::Bitmap,
        SetBackend::Compressed,
        SetBackend::Auto,
    ] {
        g.bench_function(BenchmarkId::new("build-l2", format!("{backend:?}")), |b| {
            b.iter(|| {
                build_index(
                    &db,
                    groups.iter_sequences(),
                    &template(&["X", "Y"]),
                    backend,
                )
                .unwrap()
                .0
                .list_count()
            })
        });
    }
    let (l2, _) = build_index(
        &db,
        groups.iter_sequences(),
        &template(&["X", "Y"]),
        SetBackend::List,
    )
    .unwrap();
    let txyy = template(&["X", "Y", "Y"]);
    let (lyy, _) = build_index(
        &db,
        groups.iter_sequences(),
        &template(&["Y", "Y"]),
        SetBackend::List,
    )
    .unwrap();
    g.bench_function("join-l2-lyy", |b| {
        b.iter(|| join(&l2, &lyy, txyy.signature(), |c| txyy.is_instantiation(c)).list_count())
    });
    // Raw set intersection: sorted lists vs bitmaps.
    let a_ids: Vec<u32> = (0..20_000).step_by(3).collect();
    let b_ids: Vec<u32> = (0..20_000).step_by(5).collect();
    let (la, lb) = (
        SidSet::from_sorted(a_ids.clone()),
        SidSet::from_sorted(b_ids.clone()),
    );
    let (ba, bb) = (
        SidSet::Bitmap(a_ids.iter().copied().collect::<Bitmap>()),
        SidSet::Bitmap(b_ids.iter().copied().collect::<Bitmap>()),
    );
    let (ca, cb) = (
        SidSet::Compressed(CompressedSidSet::from_sorted(a_ids)),
        SidSet::Compressed(CompressedSidSet::from_sorted(b_ids)),
    );
    g.bench_function("intersect-lists", |b| b.iter(|| la.intersect(&lb).len()));
    g.bench_function("intersect-bitmaps", |b| b.iter(|| ba.intersect(&bb).len()));
    g.bench_function("intersect-compressed", |b| {
        b.iter(|| ca.intersect(&cb).len())
    });
    g.finish();
}

criterion_group!(benches, bench_indexing);
criterion_main!(benches);
