//! End-to-end S-cuboid construction: counter-based vs inverted-index on
//! the same query (the core comparison of §5.2), plus dense vs hash
//! counters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use solap_bench::plans::synthetic_spec;
use solap_core::cb::CounterMode;
use solap_core::{Engine, EngineConfig, Strategy};
use solap_datagen::{generate_synthetic, SyntheticConfig};
use solap_pattern::PatternKind;

fn db(d: usize) -> solap_eventdb::EventDb {
    generate_synthetic(&SyntheticConfig {
        i: 100,
        l: 20.0,
        theta: 0.9,
        d,
        seed: 42,
        hierarchy: false,
    })
    .unwrap()
}

fn bench_construction(c: &mut Criterion) {
    let data = db(2_000);
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    for (label, strategy, mode) in [
        ("cb-hash", Strategy::CounterBased, CounterMode::Hash),
        ("cb-dense", Strategy::CounterBased, CounterMode::Dense),
        ("ii", Strategy::InvertedIndex, CounterMode::Auto),
    ] {
        g.bench_function(BenchmarkId::new("xy-query", label), |b| {
            b.iter_with_setup(
                || {
                    Engine::with_config(
                        data.clone(),
                        EngineConfig {
                            strategy,
                            counter_mode: mode,
                            use_cuboid_repo: false,
                            ..Default::default()
                        },
                    )
                },
                |engine| {
                    let spec = synthetic_spec(&engine.db(), PatternKind::Substring, &["X", "Y"], 0)
                        .unwrap();
                    engine.execute(&spec).unwrap().cuboid.len()
                },
            )
        });
    }
    // The iterative advantage: second query on a warm II engine.
    g.bench_function("ii-warm-repeat", |b| {
        let engine = Engine::with_config(
            data.clone(),
            EngineConfig {
                strategy: Strategy::InvertedIndex,
                use_cuboid_repo: false,
                ..Default::default()
            },
        );
        let spec = synthetic_spec(&engine.db(), PatternKind::Substring, &["X", "Y"], 0).unwrap();
        engine.execute(&spec).unwrap();
        b.iter(|| engine.execute(&spec).unwrap().cuboid.len())
    });
    g.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
