//! Regression: every binary must arm `SOLAP_FAILPOINTS` at process entry.
//!
//! `EngineBuilder::build()` seeds the failpoint registry, but binaries do
//! real work before (or without) constructing an engine — the experiments
//! harness streams through the WAL, `solap --connect` never builds a local
//! engine at all. A binary that forgets `failpoint::init()` silently runs
//! chaos configurations with no faults injected, which is worse than
//! failing: the chaos run *passes vacuously*. So: spawn the real binary
//! with a failpoint armed via the environment and require the fault to
//! actually fire.

use std::process::Command;

#[test]
fn experiments_binary_arms_env_failpoints() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["ingest", "--scale", "0.01"])
        .env("SOLAP_FAILPOINTS", "wal.append=error")
        .current_dir(std::env::temp_dir())
        .output()
        .expect("spawn experiments");
    assert!(
        !out.status.success(),
        "armed wal.append failpoint did not fire:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("failpoint wal.append"),
        "failure must come from the injected fault, got:\n{stderr}"
    );
}

#[test]
fn experiments_ingest_runs_clean_without_failpoints() {
    let dir = std::env::temp_dir().join(format!("solap-ingest-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["ingest", "--scale", "0.01"])
        .env_remove("SOLAP_FAILPOINTS")
        .current_dir(&dir)
        .output()
        .expect("spawn experiments");
    assert!(
        out.status.success(),
        "ingest bench failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let json = std::fs::read_to_string(dir.join("BENCH_ingest.json")).expect("BENCH_ingest.json");
    for policy in ["memory", "off", "batch", "always"] {
        assert!(json.contains(&format!("\"policy\":\"{policy}\"")), "{json}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
