//! A zero-cost-when-disabled failpoint facility, modeled on tikv/fail-rs.
//!
//! A *failpoint* is a named site in the code where a test (or an operator,
//! via the `SOLAP_FAILPOINTS` environment variable) can inject a failure:
//! a clean [`Error::Internal`], a panic, or a delay. Sites are compiled
//! into release builds but cost a single relaxed atomic load while no
//! failpoint is configured, so hot paths can carry them permanently.
//!
//! Configuration sources, in order:
//!
//! * `SOLAP_FAILPOINTS=site=action[,site=action...]` read once at first
//!   use. Actions: `error`, `panic`, `delay:MILLIS`, `off`.
//! * Programmatic [`configure`] / [`remove`] / [`clear_all`] from tests.
//!
//! Sites are evaluated with the [`crate::fail_point!`] macro:
//!
//! ```ignore
//! fail_point!("cb.group"); // expands to an early `return Err(...)` etc.
//! ```
//!
//! The current site catalog lives in `DESIGN.md` §5.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::{Error, Result};

/// What a triggered failpoint does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return `Err(Error::Internal("failpoint <site>"))` from the site.
    Error,
    /// Panic with a message naming the site (exercises panic isolation).
    Panic,
    /// Sleep for the given number of milliseconds, then continue normally
    /// (exercises deadline enforcement).
    Delay(u64),
    /// Explicitly disabled (equivalent to removing the site).
    Off,
}

impl Action {
    /// Parses `error`, `panic`, `delay:MILLIS`, `off`.
    pub fn parse(s: &str) -> Option<Action> {
        match s {
            "error" => Some(Action::Error),
            "panic" => Some(Action::Panic),
            "off" => Some(Action::Off),
            _ => {
                let ms = s.strip_prefix("delay:")?;
                ms.parse::<u64>().ok().map(Action::Delay)
            }
        }
    }
}

/// Fast path: true only while at least one failpoint is configured.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Number of configured (non-Off) sites, guarded by `REGISTRY`'s lock for
/// writes; `ACTIVE` mirrors `count > 0`.
static COUNT: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, Action>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Action>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("SOLAP_FAILPOINTS") {
            for part in spec.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                if let Some((site, action)) = part.split_once('=') {
                    if let Some(a) = Action::parse(action.trim()) {
                        if a != Action::Off {
                            map.insert(site.trim().to_string(), a);
                        }
                    }
                }
            }
        }
        // ord: published under the OnceLock's own release fence; readers only need eventual visibility
        COUNT.store(map.len(), Ordering::Relaxed);
        ACTIVE.store(!map.is_empty(), Ordering::Relaxed);
        // Rank 90: `fail_point!` can fire under any engine lock, so the
        // registry is the leaf of the whole hierarchy (locks.toml).
        Mutex::ranked(
            parking_lot::rank::FAILPOINT_REGISTRY,
            "failpoint.registry",
            map,
        )
    })
}

/// Forces the one-time `SOLAP_FAILPOINTS` environment seeding to happen
/// now. The `fail_point!` fast path is a single relaxed atomic load and
/// never touches the registry, so a process that never calls
/// [`configure`] would otherwise ignore env-configured sites entirely;
/// long-lived entry points (engine construction) call this once.
pub fn init() {
    let _ = registry();
}

/// Whether *any* failpoint is configured. This is the only cost paid by a
/// site while the facility is idle.
#[inline]
pub fn enabled() -> bool {
    // ord: advisory fast-path flag; a stale read only delays/fronts one check, and the registry lock orders the authoritative lookup
    ACTIVE.load(Ordering::Relaxed)
}

/// Configures `site` to perform `action`. `Action::Off` removes the site.
pub fn configure(site: &str, action: Action) {
    let mut map = registry().lock();
    if action == Action::Off {
        map.remove(site);
    } else {
        map.insert(site.to_string(), action);
    }
    // ord: written while holding the registry lock, which orders config writes; flag readers tolerate staleness
    COUNT.store(map.len(), Ordering::Relaxed);
    ACTIVE.store(!map.is_empty(), Ordering::Relaxed);
}

/// Removes `site` if configured.
pub fn remove(site: &str) {
    configure(site, Action::Off);
}

/// Removes every configured failpoint (including any loaded from the
/// environment). Tests call this in their cleanup paths.
pub fn clear_all() {
    let mut map = registry().lock();
    map.clear();
    // ord: written while holding the registry lock; see configure()
    COUNT.store(0, Ordering::Relaxed);
    ACTIVE.store(false, Ordering::Relaxed);
}

/// The currently configured sites, for diagnostics.
pub fn list() -> Vec<(String, Action)> {
    let map = registry().lock();
    let mut v: Vec<_> = map.iter().map(|(k, a)| (k.clone(), *a)).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Slow path of [`crate::fail_point!`]: looks up `site` and performs its
/// action. Called only when [`enabled`] is true.
///
/// # Panics
///
/// Panics when the site is configured with [`Action::Panic`] — that is the
/// point: it exercises the engine's panic-isolation boundary.
pub fn eval(site: &str) -> Result<()> {
    let action = {
        let map = registry().lock();
        map.get(site).copied()
    };
    match action {
        None | Some(Action::Off) => Ok(()),
        Some(Action::Error) => Err(Error::Internal(format!("failpoint {site}"))),
        Some(Action::Panic) => panic!("failpoint {site}: injected panic"),
        Some(Action::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
    }
}

/// Evaluates a named failpoint site inside a function returning
/// [`crate::error::Result`]. Expands to a single relaxed atomic load when
/// no failpoint is configured.
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        if $crate::failpoint::enabled() {
            $crate::failpoint::eval($site)?;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint state is process-global; serialize the tests touching it.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_actions() {
        assert_eq!(Action::parse("error"), Some(Action::Error));
        assert_eq!(Action::parse("panic"), Some(Action::Panic));
        assert_eq!(Action::parse("off"), Some(Action::Off));
        assert_eq!(Action::parse("delay:25"), Some(Action::Delay(25)));
        assert_eq!(Action::parse("delay:x"), None);
        assert_eq!(Action::parse("bogus"), None);
    }

    #[test]
    fn disabled_site_is_free_and_ok() {
        let _g = locked();
        clear_all();
        assert!(!enabled());
        fn site() -> Result<()> {
            fail_point!("test.never_configured");
            Ok(())
        }
        assert_eq!(site(), Ok(()));
    }

    #[test]
    fn error_action_returns_internal() {
        let _g = locked();
        clear_all();
        configure("test.err", Action::Error);
        assert!(enabled());
        fn site() -> Result<()> {
            fail_point!("test.err");
            Ok(())
        }
        assert_eq!(
            site(),
            Err(Error::Internal("failpoint test.err".to_string()))
        );
        remove("test.err");
        assert_eq!(site(), Ok(()));
        assert!(!enabled());
    }

    #[test]
    fn panic_action_panics() {
        let _g = locked();
        clear_all();
        configure("test.panic", Action::Panic);
        let r = std::panic::catch_unwind(|| eval("test.panic"));
        assert!(r.is_err());
        clear_all();
    }

    #[test]
    fn delay_action_sleeps_then_succeeds() {
        let _g = locked();
        clear_all();
        configure("test.delay", Action::Delay(10));
        let t0 = std::time::Instant::now();
        assert_eq!(eval("test.delay"), Ok(()));
        assert!(t0.elapsed() >= Duration::from_millis(10));
        clear_all();
    }

    #[test]
    fn list_reports_sorted_sites() {
        let _g = locked();
        clear_all();
        configure("b.two", Action::Error);
        configure("a.one", Action::Delay(1));
        let l = list();
        assert_eq!(
            l,
            vec![
                ("a.one".to_string(), Action::Delay(1)),
                ("b.two".to_string(), Action::Error)
            ]
        );
        clear_all();
    }
}
