//! Error type shared by the eventdb substrate and the layers above it.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the event database and the sequence query engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An attribute name that does not exist in the schema.
    UnknownAttribute(String),
    /// An abstraction level name that does not exist for the attribute.
    UnknownLevel {
        /// The attribute whose hierarchy was consulted.
        attribute: String,
        /// The level that was requested.
        level: String,
    },
    /// A value whose type does not match the column type.
    TypeMismatch {
        /// The attribute being written or compared.
        attribute: String,
        /// The column's type name.
        expected: &'static str,
        /// The offending value's type name.
        actual: &'static str,
    },
    /// A row with the wrong number of values.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// A dictionary-hierarchy child id with no parent mapping.
    IncompleteHierarchy {
        /// The attribute whose hierarchy is incomplete.
        attribute: String,
        /// The level missing the mapping.
        level: String,
        /// The unmapped child value.
        value: String,
    },
    /// An operation that requires a hierarchy on an attribute without one.
    NoHierarchy(String),
    /// A malformed literal (e.g. an unparseable timestamp).
    BadLiteral(String),
    /// A query-language parse error, with position information.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset into the query text.
        offset: usize,
    },
    /// An operation invalid in the current state (e.g. DE-TAIL on a
    /// length-1 pattern template).
    InvalidOperation(String),
    /// An incremental extension found new events landing in a cluster that
    /// already has sequences — the cached sequence groups for that spec are
    /// invalidated and the caller must fall back to a full rebuild.
    ClusterInvalidated {
        /// Rendered key of the cluster the new events touched.
        cluster: String,
    },
    /// A persisted snapshot that cannot be decoded: truncated input,
    /// malformed framing, or values that violate a format invariant.
    Corrupt {
        /// What was wrong with the input.
        detail: String,
    },
    /// A query exceeded one of its resource limits (deadline, cell budget)
    /// and was aborted by the [`crate::govern::QueryGovernor`].
    ResourceExhausted {
        /// Which resource ran out (`"time_ms"`, `"cells"`).
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// How much had been consumed when the governor tripped.
        consumed: u64,
    },
    /// The query was cancelled through its
    /// [`crate::govern::CancelToken`].
    Cancelled,
    /// A defect surfaced at an engine boundary: an isolated panic or an
    /// injected failpoint. The engine remains usable.
    Internal(String),
}

impl Error {
    /// A stable, machine-readable code naming this error's variant.
    ///
    /// The codes are part of the public surface: the wire protocol of the
    /// serving layer and the CLI's `--eval --json` output both carry them,
    /// so clients can branch on `resource_exhausted` vs `parse` without
    /// scraping display strings. Codes are `snake_case`, never renamed,
    /// and the match below is deliberately exhaustive (no `_` arm) so
    /// adding a variant without choosing its code fails to compile.
    pub fn code(&self) -> &'static str {
        match self {
            Error::UnknownAttribute(_) => "unknown_attribute",
            Error::UnknownLevel { .. } => "unknown_level",
            Error::TypeMismatch { .. } => "type_mismatch",
            Error::ArityMismatch { .. } => "arity_mismatch",
            Error::IncompleteHierarchy { .. } => "incomplete_hierarchy",
            Error::NoHierarchy(_) => "no_hierarchy",
            Error::BadLiteral(_) => "bad_literal",
            Error::Parse { .. } => "parse",
            Error::InvalidOperation(_) => "invalid_operation",
            Error::ClusterInvalidated { .. } => "cluster_invalidated",
            Error::Corrupt { .. } => "corrupt",
            Error::ResourceExhausted { .. } => "resource_exhausted",
            Error::Cancelled => "cancelled",
            Error::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            Error::UnknownLevel { attribute, level } => {
                write!(
                    f,
                    "attribute `{attribute}` has no abstraction level `{level}`"
                )
            }
            Error::TypeMismatch {
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch on `{attribute}`: expected {expected}, got {actual}"
            ),
            Error::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row has {actual} values but the schema has {expected} columns"
                )
            }
            Error::IncompleteHierarchy {
                attribute,
                level,
                value,
            } => write!(
                f,
                "hierarchy on `{attribute}` does not map value `{value}` to level `{level}`"
            ),
            Error::NoHierarchy(a) => write!(f, "attribute `{a}` has no concept hierarchy"),
            Error::BadLiteral(s) => write!(f, "malformed literal `{s}`"),
            Error::Parse { message, offset } => {
                if *offset == usize::MAX {
                    write!(f, "parse error at end of input: {message}")
                } else {
                    write!(f, "parse error at byte {offset}: {message}")
                }
            }
            Error::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            Error::ClusterInvalidated { cluster } => write!(
                f,
                "new events extend existing cluster {cluster}; cached sequence groups invalidated, rebuild required"
            ),
            Error::Corrupt { detail } => write!(f, "corrupt snapshot: {detail}"),
            Error::ResourceExhausted {
                resource,
                limit,
                consumed,
            } => write!(
                f,
                "query aborted: {resource} limit {limit} exhausted (consumed {consumed})"
            ),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Best-effort extraction of a panic payload's message, for converting an
/// isolated panic into [`Error::Internal`].
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::UnknownLevel {
            attribute: "location".into(),
            level: "galaxy".into(),
        };
        let s = e.to_string();
        assert!(s.contains("location") && s.contains("galaxy"));
        assert!(Error::UnknownAttribute("x".into())
            .to_string()
            .contains('x'));
    }

    /// One witness value per variant. Kept next to [`Error::code`] so a
    /// new variant shows up here too (the `code()` match already fails to
    /// compile without a new arm; this list keeps the uniqueness and
    /// shape checks exhaustive as well).
    fn witnesses() -> Vec<Error> {
        vec![
            Error::UnknownAttribute("a".into()),
            Error::UnknownLevel {
                attribute: "a".into(),
                level: "l".into(),
            },
            Error::TypeMismatch {
                attribute: "a".into(),
                expected: "int",
                actual: "str",
            },
            Error::ArityMismatch {
                expected: 1,
                actual: 2,
            },
            Error::IncompleteHierarchy {
                attribute: "a".into(),
                level: "l".into(),
                value: "v".into(),
            },
            Error::NoHierarchy("a".into()),
            Error::BadLiteral("x".into()),
            Error::Parse {
                message: "m".into(),
                offset: 0,
            },
            Error::InvalidOperation("m".into()),
            Error::ClusterInvalidated {
                cluster: "[1]".into(),
            },
            Error::Corrupt { detail: "d".into() },
            Error::ResourceExhausted {
                resource: "cells",
                limit: 1,
                consumed: 2,
            },
            Error::Cancelled,
            Error::Internal("m".into()),
        ]
    }

    #[test]
    fn codes_are_stable_unique_and_machine_readable() {
        let codes: Vec<&'static str> = witnesses().iter().map(Error::code).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "codes must be unique: {codes:?}");
        for code in &codes {
            assert!(!code.is_empty());
            assert!(
                code.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "`{code}` is not snake_case"
            );
        }
        // Pin the codes clients are expected to branch on.
        assert_eq!(Error::Cancelled.code(), "cancelled");
        assert_eq!(
            Error::ResourceExhausted {
                resource: "time_ms",
                limit: 1,
                consumed: 2
            }
            .code(),
            "resource_exhausted"
        );
        assert_eq!(Error::Corrupt { detail: "d".into() }.code(), "corrupt");
        assert_eq!(Error::Internal("m".into()).code(), "internal");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&Error::NoHierarchy("a".into()));
    }
}
