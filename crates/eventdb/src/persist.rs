//! Warehouse persistence: a hand-rolled binary format for event databases.
//!
//! S-OLAP is a *warehousing* proposition — "there is a strong demand to
//! warehouse and to analyze the vast amount of sequence data" (§1) — so the
//! substrate can save a loaded event database (columns, dictionaries,
//! hierarchies, base-level names) to a single file and load it back,
//! without external serialization crates.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic "SOLAPDB1"
//! u32 column-count
//!   per column: string name, u8 type, u8 role
//! u64 row-count
//!   per column: raw payload (i64×rows | f64×rows | dict + u32×rows)
//! per column: hierarchy tag (0 none / 1 dict / 2 int / 3 time) + payload
//! per column: optional base-level name
//! ```
//!
//! Loading reconstructs through the store's normal append/attach paths, so
//! every invariant (dictionary density, hierarchy completeness) is
//! re-validated; dictionary ids are renumbered in first-occurrence order,
//! which leaves the database value-identical (level values compare equal
//! through `render_level`, not raw ids).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::error::{Error, Result};
use crate::fail_point;
use crate::hierarchy::{Hierarchy, TimeGranularity, TimeHierarchy};
use crate::schema::{ColumnDef, ColumnType, Role, Schema};
use crate::store::EventDb;
use crate::value::Value;

const MAGIC: &[u8; 8] = b"SOLAPDB1";

/// Serialized string lengths above this are rejected as corrupt.
const MAX_STR_LEN: usize = 1 << 24;
/// Column counts above this are rejected as corrupt.
const MAX_COLS: usize = 1 << 16;
/// Untrusted element counts pre-allocate at most this many elements; the
/// actual count is still honoured by reading (a lying count hits EOF and
/// returns [`Error::Corrupt`] instead of provoking a huge allocation).
const MAX_PREALLOC: usize = 1 << 20;

fn io_err(e: io::Error) -> Error {
    Error::InvalidOperation(format!("persistence i/o error: {e}"))
}

/// Load-side i/o failures mean the snapshot cannot be decoded (truncated
/// input surfaces as `UnexpectedEof` here).
fn corrupt_io(e: io::Error) -> Error {
    Error::Corrupt {
        detail: format!("read failed: {e}"),
    }
}

fn corrupt(detail: impl Into<String>) -> Error {
    Error::Corrupt {
        detail: detail.into(),
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_i64(w: &mut impl Write, v: i64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_f64(w: &mut impl Write, v: f64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_str(w: &mut impl Write, s: &str) -> Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes()).map_err(io_err)
}

fn read_exact<const N: usize>(r: &mut impl Read) -> Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf).map_err(corrupt_io)?;
    Ok(buf)
}

fn read_u8(r: &mut impl Read) -> Result<u8> {
    Ok(u8::from_le_bytes(read_exact::<1>(r)?))
}

/// A schema/accessor mismatch while saving is an engine invariant breach,
/// not an i/o condition; surface it as a typed internal error rather than
/// panicking mid-write.
fn column_value<T>(v: Option<T>, attr: u32, what: &str) -> Result<T> {
    v.ok_or_else(|| Error::Internal(format!("save: column {attr} not readable as {what}")))
}

fn read_u32(r: &mut impl Read) -> Result<u32> {
    Ok(u32::from_le_bytes(read_exact::<4>(r)?))
}

fn read_u64(r: &mut impl Read) -> Result<u64> {
    Ok(u64::from_le_bytes(read_exact::<8>(r)?))
}

fn read_i64(r: &mut impl Read) -> Result<i64> {
    Ok(i64::from_le_bytes(read_exact::<8>(r)?))
}

fn read_f64(r: &mut impl Read) -> Result<f64> {
    Ok(f64::from_le_bytes(read_exact::<8>(r)?))
}

fn read_str(r: &mut impl Read) -> Result<String> {
    let len = read_u32(r)? as usize;
    if len > MAX_STR_LEN {
        return Err(corrupt(format!("implausible string length {len}")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(corrupt_io)?;
    String::from_utf8(buf).map_err(|_| corrupt("non-UTF-8 string"))
}

fn granularity_code(g: TimeGranularity) -> u8 {
    match g {
        TimeGranularity::Raw => 0,
        TimeGranularity::Hour => 1,
        TimeGranularity::Day => 2,
        TimeGranularity::Week => 3,
        TimeGranularity::Month => 4,
        TimeGranularity::Quarter => 5,
    }
}

fn granularity_from(code: u8) -> Result<TimeGranularity> {
    Ok(match code {
        0 => TimeGranularity::Raw,
        1 => TimeGranularity::Hour,
        2 => TimeGranularity::Day,
        3 => TimeGranularity::Week,
        4 => TimeGranularity::Month,
        5 => TimeGranularity::Quarter,
        other => return Err(corrupt(format!("unknown time granularity {other}"))),
    })
}

/// Serializes a database to a writer.
pub fn save(db: &EventDb, w: &mut impl Write) -> Result<()> {
    fail_point!("persist.save");
    w.write_all(MAGIC).map_err(io_err)?;
    let schema = db.schema();
    write_u32(w, schema.len() as u32)?;
    for col in schema.columns() {
        write_str(w, &col.name)?;
        let t = match col.ctype {
            ColumnType::Int => 0u8,
            ColumnType::Float => 1,
            ColumnType::Str => 2,
            ColumnType::Time => 3,
        };
        let r = match col.role {
            Role::Dimension => 0u8,
            Role::Measure => 1,
        };
        w.write_all(&[t, r]).map_err(io_err)?;
    }
    write_u64(w, db.len() as u64)?;
    for (a, col) in schema.columns().iter().enumerate() {
        let attr = a as u32;
        match col.ctype {
            ColumnType::Int | ColumnType::Time => {
                for row in 0..db.len() as u32 {
                    write_i64(w, column_value(db.int(row, attr), attr, "int")?)?;
                }
            }
            ColumnType::Float => {
                for row in 0..db.len() as u32 {
                    write_f64(w, column_value(db.float(row, attr), attr, "float")?)?;
                }
            }
            ColumnType::Str => {
                let dict = column_value(db.dict(attr), attr, "str")?;
                write_u32(w, dict.len() as u32)?;
                for (_, name) in dict.iter() {
                    write_str(w, name)?;
                }
                for row in 0..db.len() as u32 {
                    write_u32(w, column_value(db.str_id(row, attr), attr, "str")?)?;
                }
            }
        }
    }
    // Hierarchies.
    for a in 0..schema.len() {
        let attr = a as u32;
        match db.hierarchy(attr) {
            Hierarchy::None => w.write_all(&[0]).map_err(io_err)?,
            Hierarchy::Dict(h) => {
                w.write_all(&[1]).map_err(io_err)?;
                write_u32(w, h.levels.len() as u32)?;
                for level in &h.levels {
                    write_str(w, &level.name)?;
                    write_u32(w, level.dict.len() as u32)?;
                    for (_, name) in level.dict.iter() {
                        write_str(w, name)?;
                    }
                    write_u32(w, level.parent_of.len() as u32)?;
                    for &p in &level.parent_of {
                        write_u32(w, p)?;
                    }
                }
            }
            Hierarchy::Int(h) => {
                w.write_all(&[2]).map_err(io_err)?;
                write_u32(w, h.base_to_first.len() as u32)?;
                // Deterministic order for reproducible files.
                let mut entries: Vec<(&i64, &u32)> = h.base_to_first.iter().collect();
                entries.sort();
                for (k, v) in entries {
                    write_i64(w, *k)?;
                    write_u32(w, *v)?;
                }
                write_u32(w, h.levels.len() as u32)?;
                for level in &h.levels {
                    write_str(w, &level.name)?;
                    write_u32(w, level.dict.len() as u32)?;
                    for (_, name) in level.dict.iter() {
                        write_str(w, name)?;
                    }
                    write_u32(w, level.parent_of.len() as u32)?;
                    for &p in &level.parent_of {
                        write_u32(w, p)?;
                    }
                }
            }
            Hierarchy::Time(h) => {
                w.write_all(&[3]).map_err(io_err)?;
                write_u32(w, h.levels.len() as u32)?;
                for &g in &h.levels {
                    w.write_all(&[granularity_code(g)]).map_err(io_err)?;
                }
            }
        }
    }
    // Base level names.
    for a in 0..schema.len() {
        match db.base_level_name(a as u32) {
            Some(n) => {
                w.write_all(&[1]).map_err(io_err)?;
                write_str(w, n)?;
            }
            None => w.write_all(&[0]).map_err(io_err)?,
        }
    }
    Ok(())
}

/// Deserializes a database from a reader.
///
/// Every decoding failure — truncation, bad framing, out-of-range ids —
/// returns [`Error::Corrupt`]; no input, however mangled, panics. Lying
/// element counts are bounded by `MAX_PREALLOC` before any allocation.
pub fn load(r: &mut impl Read) -> Result<EventDb> {
    fail_point!("persist.load");
    let magic = read_exact::<8>(r)?;
    if &magic != MAGIC {
        return Err(corrupt("not a SOLAPDB1 file (bad magic)"));
    }
    let n_cols = read_u32(r)? as usize;
    if n_cols > MAX_COLS {
        return Err(corrupt(format!("implausible column count {n_cols}")));
    }
    let mut defs = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let name = read_str(r)?;
        let t = read_u8(r)?;
        let role = read_u8(r)?;
        let ctype = match t {
            0 => ColumnType::Int,
            1 => ColumnType::Float,
            2 => ColumnType::Str,
            3 => ColumnType::Time,
            other => return Err(corrupt(format!("unknown column type {other}"))),
        };
        let role = match role {
            0 => Role::Dimension,
            1 => Role::Measure,
            other => return Err(corrupt(format!("unknown role {other}"))),
        };
        defs.push(ColumnDef { name, ctype, role });
    }
    let n_rows = read_u64(r)? as usize;
    // Columnar payloads land in row-major Values for the append path.
    enum Payload {
        Ints(Vec<i64>),
        Floats(Vec<f64>),
        Strs { names: Vec<String>, ids: Vec<u32> },
    }
    let mut payloads = Vec::with_capacity(n_cols);
    for def in &defs {
        payloads.push(match def.ctype {
            ColumnType::Int | ColumnType::Time => {
                let mut v = Vec::with_capacity(n_rows.min(MAX_PREALLOC));
                for _ in 0..n_rows {
                    v.push(read_i64(r)?);
                }
                Payload::Ints(v)
            }
            ColumnType::Float => {
                let mut v = Vec::with_capacity(n_rows.min(MAX_PREALLOC));
                for _ in 0..n_rows {
                    v.push(read_f64(r)?);
                }
                Payload::Floats(v)
            }
            ColumnType::Str => {
                let n_names = read_u32(r)? as usize;
                let mut names = Vec::with_capacity(n_names.min(MAX_PREALLOC));
                for _ in 0..n_names {
                    names.push(read_str(r)?);
                }
                let mut ids = Vec::with_capacity(n_rows.min(MAX_PREALLOC));
                for _ in 0..n_rows {
                    let id = read_u32(r)?;
                    if id as usize >= n_names {
                        return Err(corrupt("dictionary id out of range"));
                    }
                    ids.push(id);
                }
                Payload::Strs { names, ids }
            }
        });
    }
    let mut db = EventDb::new(Schema::new(defs.clone())?);
    let mut row_values = vec![Value::Int(0); n_cols];
    let short = || corrupt("column payload shorter than the row count");
    for row in 0..n_rows {
        for (slot, (payload, def)) in row_values.iter_mut().zip(payloads.iter().zip(&defs)) {
            *slot = match payload {
                Payload::Ints(v) => {
                    let x = *v.get(row).ok_or_else(short)?;
                    if matches!(def.ctype, ColumnType::Time) {
                        Value::Time(x)
                    } else {
                        Value::Int(x)
                    }
                }
                Payload::Floats(v) => Value::Float(*v.get(row).ok_or_else(short)?),
                Payload::Strs { names, ids } => {
                    let id = *ids.get(row).ok_or_else(short)? as usize;
                    Value::Str(
                        names
                            .get(id)
                            .ok_or_else(|| corrupt("dictionary id out of range"))?
                            .clone(),
                    )
                }
            };
        }
        db.push_row(&row_values)?;
    }
    // Hierarchies: reconstruct through the attach paths so invariants are
    // re-validated. Mapping closures read the serialized parent tables.
    for a in 0..n_cols {
        let attr = a as u32;
        let tag = read_u8(r)?;
        match tag {
            0 => {}
            1 => {
                let n_levels = read_u32(r)? as usize;
                // Child names of the level being attached: the base
                // dictionary first, then each level's own parent names.
                let mut child_names: Vec<String> = db
                    .dict(attr)
                    .map(|d| d.iter().map(|(_, n)| n.to_owned()).collect())
                    .unwrap_or_default();
                for _ in 0..n_levels {
                    let (name, raw) = read_dict_level_raw(r)?;
                    let map = raw.child_map(&child_names)?;
                    db.attach_str_level(attr, &name, |child| {
                        map.get(child).cloned().unwrap_or_default()
                    })?;
                    child_names = raw.names;
                }
            }
            2 => {
                let n_base = read_u32(r)? as usize;
                let mut base: HashMap<i64, u32> = HashMap::with_capacity(n_base.min(MAX_PREALLOC));
                for _ in 0..n_base {
                    let k = read_i64(r)?;
                    let v = read_u32(r)?;
                    base.insert(k, v);
                }
                let n_levels = read_u32(r)? as usize;
                let mut child_names: Vec<String> = Vec::new();
                for lvl in 0..n_levels {
                    let (name, raw) = read_dict_level_raw(r)?;
                    if lvl == 0 {
                        let names_ref = &raw.names;
                        let base_ref = &base;
                        db.attach_int_level(attr, &name, |v| {
                            base_ref
                                .get(&v)
                                .and_then(|&id| names_ref.get(id as usize))
                                .cloned()
                                .unwrap_or_default()
                        })?;
                        // Register mappings for ids not present in the
                        // column (future incremental values).
                        for (&k, &id) in base_ref {
                            if let Some(parent) = names_ref.get(id as usize) {
                                db.add_int_mapping(attr, k, parent)?;
                            }
                        }
                    } else {
                        let map = raw.child_map(&child_names)?;
                        db.attach_str_level(attr, &name, |child| {
                            map.get(child).cloned().unwrap_or_default()
                        })?;
                    }
                    child_names = raw.names;
                }
            }
            3 => {
                let n = read_u32(r)? as usize;
                let mut levels = Vec::with_capacity(n.min(MAX_PREALLOC));
                for _ in 0..n {
                    levels.push(granularity_from(read_u8(r)?)?);
                }
                db.set_time_hierarchy(attr, TimeHierarchy { levels })?;
            }
            other => return Err(corrupt(format!("unknown hierarchy tag {other}"))),
        }
    }
    for a in 0..n_cols {
        let has = read_u8(r)?;
        if has == 1 {
            let name = read_str(r)?;
            db.set_base_level_name(a as u32, &name);
        }
    }
    Ok(db)
}

/// A raw serialized dict level: parent names and child-id → parent-id map.
struct RawLevel {
    names: Vec<String>,
    parent_of: Vec<u32>,
}

impl RawLevel {
    /// Builds the child-*name* → parent-name map given the child
    /// dictionary's names in id order (which both `save` and `load`
    /// enumerate identically).
    fn child_map(&self, child_names: &[String]) -> Result<HashMap<String, String>> {
        if self.parent_of.len() > child_names.len() {
            return Err(corrupt("hierarchy level maps more children than exist"));
        }
        let mut map = HashMap::with_capacity(self.parent_of.len());
        for (child, &p) in child_names.iter().zip(&self.parent_of) {
            let parent = self
                .names
                .get(p as usize)
                .cloned()
                .ok_or_else(|| corrupt("parent id out of range"))?;
            map.insert(child.clone(), parent);
        }
        Ok(map)
    }
}

fn read_dict_level_raw(r: &mut impl Read) -> Result<(String, RawLevel)> {
    let name = read_str(r)?;
    let n_names = read_u32(r)? as usize;
    let mut names = Vec::with_capacity(n_names.min(MAX_PREALLOC));
    for _ in 0..n_names {
        names.push(read_str(r)?);
    }
    let n_parents = read_u32(r)? as usize;
    let mut parent_of = Vec::with_capacity(n_parents.min(MAX_PREALLOC));
    for _ in 0..n_parents {
        parent_of.push(read_u32(r)?);
    }
    Ok((name, RawLevel { names, parent_of }))
}

/// Saves a database to a file.
pub fn save_to_path(db: &EventDb, path: impl AsRef<Path>) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).map_err(io_err)?);
    save(db, &mut f)?;
    f.flush().map_err(io_err)
}

/// Loads a database from a file.
pub fn load_from_path(path: impl AsRef<Path>) -> Result<EventDb> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path).map_err(io_err)?);
    load(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EventDbBuilder;
    use crate::time::timestamp;

    fn transit_db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("time", ColumnType::Time)
            .dimension("card-id", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .measure("amount", ColumnType::Float)
            .build()
            .unwrap();
        db.set_time_hierarchy(0, TimeHierarchy::time_day_week())
            .unwrap();
        for (t, c, l, m) in [
            (timestamp(2007, 10, 1, 8, 0, 0), 688, "Pentagon", 0.0),
            (timestamp(2007, 10, 1, 9, 0, 0), 688, "Wheaton", -2.5),
            (timestamp(2007, 10, 2, 8, 0, 0), 123, "Glenmont", -1.0),
        ] {
            db.push_row(&[
                Value::Time(t),
                Value::Int(c),
                Value::Str(l.into()),
                Value::Float(m),
            ])
            .unwrap();
        }
        db.set_base_level_name(2, "station");
        db.attach_str_level(2, "district", |s| {
            if s == "Pentagon" {
                "D10".into()
            } else {
                "D20".into()
            }
        })
        .unwrap();
        db.attach_str_level(2, "region", |d| format!("R-{d}"))
            .unwrap();
        db.set_base_level_name(1, "individual");
        db.attach_int_level(1, "fare-group", |id| {
            if id < 1000 {
                "regular".into()
            } else {
                "student".into()
            }
        })
        .unwrap();
        db
    }

    fn roundtrip(db: &EventDb) -> EventDb {
        let mut buf = Vec::new();
        save(db, &mut buf).unwrap();
        load(&mut buf.as_slice()).unwrap()
    }

    fn assert_value_identical(a: &EventDb, b: &EventDb) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.schema(), b.schema());
        for row in 0..a.len() as u32 {
            for attr in 0..a.schema().len() as u32 {
                assert_eq!(
                    a.value(row, attr),
                    b.value(row, attr),
                    "row {row} attr {attr}"
                );
                for level in 0..a.level_count(attr) {
                    let va = a.value_at_level(row, attr, level).unwrap();
                    let vb = b.value_at_level(row, attr, level).unwrap();
                    assert_eq!(
                        a.render_level(attr, level, va),
                        b.render_level(attr, level, vb),
                        "row {row} attr {attr} level {level}"
                    );
                }
            }
        }
        for attr in 0..a.schema().len() as u32 {
            assert_eq!(a.level_count(attr), b.level_count(attr));
            for level in 0..a.level_count(attr) {
                assert_eq!(a.level_name(attr, level), b.level_name(attr, level));
            }
            assert_eq!(a.base_level_name(attr), b.base_level_name(attr));
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = transit_db();
        let loaded = roundtrip(&db);
        assert_value_identical(&db, &loaded);
    }

    #[test]
    fn roundtrip_via_files() {
        let db = transit_db();
        let path = std::env::temp_dir().join(format!("solap-persist-{}.db", std::process::id()));
        save_to_path(&db, &path).unwrap();
        let loaded = load_from_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_value_identical(&db, &loaded);
    }

    #[test]
    fn double_roundtrip_is_stable() {
        let db = transit_db();
        let once = roundtrip(&db);
        let twice = roundtrip(&once);
        let mut a = Vec::new();
        let mut b = Vec::new();
        save(&once, &mut a).unwrap();
        save(&twice, &mut b).unwrap();
        assert_eq!(a, b, "serialization reaches a fixpoint");
    }

    #[test]
    fn int_mappings_for_unseen_values_survive() {
        let mut db = transit_db();
        db.add_int_mapping(1, 999_999, "senior").unwrap();
        let loaded = roundtrip(&db);
        // The mapping is usable after a new row introduces the value.
        let mut loaded = loaded;
        loaded
            .push_row(&[
                Value::Time(0),
                Value::Int(999_999),
                Value::Str("Pentagon".into()),
                Value::Float(0.0),
            ])
            .unwrap();
        let v = loaded.value_at_level(3, 1, 1).unwrap();
        assert_eq!(loaded.render_level(1, 1, v), "senior");
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(matches!(
            load(&mut &b"NOTADB!!"[..]),
            Err(Error::Corrupt { .. })
        ));
        let db = transit_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        // Flipping the magic fails cleanly.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            load(&mut bad.as_slice()),
            Err(Error::Corrupt { .. })
        ));
    }

    /// Every prefix truncation of a valid snapshot errors — never panics,
    /// never loads.
    #[test]
    fn every_prefix_truncation_errors() {
        let db = transit_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let res = std::panic::catch_unwind(|| load(&mut &buf[..cut]));
            match res {
                Ok(Ok(_)) => panic!("truncation at {cut}/{} loaded", buf.len()),
                Ok(Err(_)) => {}
                Err(_) => panic!("truncation at {cut}/{} panicked", buf.len()),
            }
        }
    }

    /// Byte flips anywhere in a valid snapshot never panic the loader.
    /// (Some flips land in value payloads and still decode — that is fine;
    /// the property under test is panic-freedom, not tamper-evidence.)
    #[test]
    fn byte_flips_never_panic() {
        let db = transit_db();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        for pos in 0..buf.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut bad = buf.clone();
                bad[pos] ^= mask;
                if std::panic::catch_unwind(|| load(&mut bad.as_slice())).is_err() {
                    panic!("flip {mask:#04x} at byte {pos} panicked the loader");
                }
            }
        }
    }

    /// Regression: a hierarchy level whose parent table points past its
    /// name dictionary used to index out of bounds; it is `Error::Corrupt`
    /// now.
    #[test]
    fn lying_hierarchy_parent_ids_error() {
        let raw = RawLevel {
            names: vec!["p".to_string()],
            parent_of: vec![5],
        };
        let children = vec!["c".to_string()];
        assert!(matches!(
            raw.child_map(&children),
            Err(Error::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = EventDbBuilder::new()
            .dimension("x", ColumnType::Str)
            .build()
            .unwrap();
        let loaded = roundtrip(&db);
        assert_eq!(loaded.len(), 0);
        assert_eq!(loaded.schema().column(0).name, "x");
    }
}
