//! Event-selection predicates: the `WHERE` clause of an S-cuboid
//! specification (step 1 of Figure 4).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};
use crate::schema::AttrId;
use crate::store::EventDb;
use crate::value::{RowId, Value};

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the operator against an [`Ordering`].
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// An event predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Always true (an omitted `WHERE` clause).
    True,
    /// `attr <op> literal`.
    Cmp {
        /// The attribute compared.
        attr: AttrId,
        /// The comparison operator.
        op: CmpOp,
        /// The literal to compare with.
        value: Value,
    },
    /// `attr IN (v1, v2, …)`.
    In {
        /// The attribute tested.
        attr: AttrId,
        /// The allowed values.
        values: Vec<Value>,
    },
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Builds `attr <op> value`.
    pub fn cmp(attr: AttrId, op: CmpOp, value: impl Into<Value>) -> Pred {
        Pred::Cmp {
            attr,
            op,
            value: value.into(),
        }
    }

    /// Builds `self AND other`.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// Builds `self OR other`.
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }

    /// Builds `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// Evaluates the predicate against event `row`.
    pub fn eval(&self, db: &EventDb, row: RowId) -> Result<bool> {
        match self {
            Pred::True => Ok(true),
            Pred::Cmp { attr, op, value } => {
                let ord = compare(db, row, *attr, value)?;
                Ok(op.test(ord))
            }
            Pred::In { attr, values } => {
                for v in values {
                    if compare(db, row, *attr, v)? == Ordering::Equal {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Pred::And(a, b) => Ok(a.eval(db, row)? && b.eval(db, row)?),
            Pred::Or(a, b) => Ok(a.eval(db, row)? || b.eval(db, row)?),
            Pred::Not(p) => Ok(!p.eval(db, row)?),
        }
    }

    /// Renders the predicate in the query language, resolving attribute
    /// names through `db`.
    pub fn render(&self, db: &EventDb) -> String {
        match self {
            Pred::True => "TRUE".into(),
            Pred::Cmp { attr, op, value } => format!(
                "{} {} {}",
                db.schema().column(*attr).name,
                op.symbol(),
                render_literal(value)
            ),
            Pred::In { attr, values } => format!(
                "{} IN ({})",
                db.schema().column(*attr).name,
                values
                    .iter()
                    .map(render_literal)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Pred::And(a, b) => format!("({} AND {})", a.render(db), b.render(db)),
            Pred::Or(a, b) => format!("({} OR {})", a.render(db), b.render(db)),
            Pred::Not(p) => format!("(NOT {})", p.render(db)),
        }
    }
}

/// Renders a literal value as it appears in query text.
pub fn render_literal(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("\"{s}\""),
        Value::Time(t) => format!("\"{}\"", crate::time::format_timestamp(*t)),
        other => other.to_string(),
    }
}

/// Compares the stored value of `(row, attr)` with a literal, coercing the
/// literal to the column type (string timestamps compare against time
/// columns, integers against float columns).
fn compare(db: &EventDb, row: RowId, attr: AttrId, lit: &Value) -> Result<Ordering> {
    use crate::schema::ColumnType;
    let def = db.schema().column(attr);
    let mismatch = || Error::TypeMismatch {
        attribute: def.name.clone(),
        expected: def.ctype.name(),
        actual: lit.type_name(),
    };
    match def.ctype {
        ColumnType::Int => {
            let l = lit.as_int().ok_or_else(mismatch)?;
            Ok(db.int(row, attr).expect("int column").cmp(&l))
        }
        ColumnType::Time => {
            let l = lit.as_time().ok_or_else(mismatch)?;
            Ok(db.int(row, attr).expect("time column").cmp(&l))
        }
        ColumnType::Float => {
            let l = lit.as_float().ok_or_else(mismatch)?;
            Ok(db
                .float(row, attr)
                .expect("float column")
                .partial_cmp(&l)
                .unwrap_or(Ordering::Equal))
        }
        ColumnType::Str => {
            let l = lit.as_str().ok_or_else(mismatch)?;
            let id = db.str_id(row, attr).expect("str column");
            let s = db
                .dict(attr)
                .expect("str column has dict")
                .resolve(id)
                .expect("interned id resolves");
            Ok(s.cmp(l))
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A helper wrapper so predicates can key hash maps even though [`Value`]
/// contains floats: [`Pred`] already implements `Hash`/`Eq` via bit-equality.
pub fn pred_fingerprint(p: &Pred) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    p.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::store::EventDbBuilder;
    use crate::time::timestamp;

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("time", ColumnType::Time)
            .dimension("location", ColumnType::Str)
            .measure("amount", ColumnType::Float)
            .build()
            .unwrap();
        for (t, l, m) in [
            (timestamp(2007, 9, 30, 23, 59, 0), "Pentagon", 0.0),
            (timestamp(2007, 10, 1, 0, 0, 0), "Wheaton", -2.0),
            (timestamp(2007, 12, 31, 23, 59, 0), "Pentagon", 100.0),
        ] {
            db.push_row(&[Value::Time(t), Value::from(l), Value::Float(m)])
                .unwrap();
        }
        db
    }

    #[test]
    fn time_range_matches_fig3() {
        let db = db();
        // WHERE time >= 2007-10-01T00:00 AND time < 2007-12-31T24:00
        let p = Pred::cmp(0, CmpOp::Ge, Value::from("2007-10-01T00:00")).and(Pred::cmp(
            0,
            CmpOp::Lt,
            Value::from("2007-12-31T24:00"),
        ));
        let hits: Vec<bool> = (0..3).map(|r| p.eval(&db, r).unwrap()).collect();
        assert_eq!(hits, vec![false, true, true]);
    }

    #[test]
    fn string_and_float_comparisons() {
        let db = db();
        let p = Pred::cmp(1, CmpOp::Eq, "Pentagon");
        assert!(p.eval(&db, 0).unwrap());
        assert!(!p.eval(&db, 1).unwrap());
        let q = Pred::cmp(2, CmpOp::Lt, Value::Float(0.0));
        assert!(!q.eval(&db, 0).unwrap());
        assert!(q.eval(&db, 1).unwrap());
        // Int literal coerces against float column.
        let r = Pred::cmp(2, CmpOp::Ge, Value::Int(100));
        assert!(r.eval(&db, 2).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let db = db();
        let pentagon = Pred::cmp(1, CmpOp::Eq, "Pentagon");
        let cheap = Pred::cmp(2, CmpOp::Le, Value::Float(0.0));
        assert!(pentagon.clone().and(cheap.clone()).eval(&db, 0).unwrap());
        assert!(!pentagon.clone().and(cheap.clone()).eval(&db, 2).unwrap());
        assert!(pentagon.clone().or(cheap.clone()).eval(&db, 1).unwrap());
        assert!(!pentagon.clone().not().eval(&db, 0).unwrap());
        assert!(Pred::True.eval(&db, 0).unwrap());
    }

    #[test]
    fn in_list() {
        let db = db();
        let p = Pred::In {
            attr: 1,
            values: vec![Value::from("Wheaton"), Value::from("Glenmont")],
        };
        assert!(!p.eval(&db, 0).unwrap());
        assert!(p.eval(&db, 1).unwrap());
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let db = db();
        let p = Pred::cmp(1, CmpOp::Eq, Value::Int(3));
        assert!(matches!(p.eval(&db, 0), Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn render_is_stable() {
        let db = db();
        let p = Pred::cmp(0, CmpOp::Ge, Value::from("2007-10-01T00:00")).and(Pred::cmp(
            1,
            CmpOp::Eq,
            "Pentagon",
        ));
        let s = p.render(&db);
        assert!(s.contains("time >="), "{s}");
        assert!(s.contains("location = \"Pentagon\""), "{s}");
    }

    #[test]
    fn fingerprint_distinguishes() {
        let a = Pred::cmp(0, CmpOp::Eq, Value::Int(1));
        let b = Pred::cmp(0, CmpOp::Eq, Value::Int(2));
        assert_ne!(pred_fingerprint(&a), pred_fingerprint(&b));
        assert_eq!(pred_fingerprint(&a), pred_fingerprint(&a.clone()));
    }
}
