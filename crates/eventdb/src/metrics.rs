//! Query-level observability: per-stage counters, span timers, per-query
//! profiles and process-wide cumulative engine metrics.
//!
//! The paper's evaluation (§5, Tables 1–4, Figure 16) reasons entirely in
//! per-stage costs — events scanned, sequences formed, cells materialised,
//! index-ladder work, cache hits. This module makes those quantities live
//! on every query instead of something the bench harness re-derives:
//!
//! * [`Counter`] / [`Stage`] — the catalog of observable quantities.
//! * [`QueryRecorder`] — lock-free atomic accumulators shared (via the
//!   [`crate::govern::QueryGovernor`]) by every hot loop and parallel
//!   worker of one query. Hot loops count into plain local integers and
//!   flush once per loop or worker, so the enabled cost is a handful of
//!   relaxed atomic adds per query stage, not per event.
//! * [`QueryProfile`] — the immutable per-query snapshot returned with
//!   every engine execution, with text and JSON renderers.
//! * [`EngineMetrics`] — the process-wide cumulative totals ([`global`])
//!   with text/JSON exporters (the CLI `.metrics` command).
//!
//! Like [`crate::failpoint`], the facility is near-zero-cost when disabled:
//! [`enabled`] is a single relaxed atomic load (seeded once from the
//! `SOLAP_PROFILE` environment variable, default **on**), and when it is
//! off no recorder is allocated at all — instrumented code sees `None` and
//! skips every measurement, including the clock reads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Everything the observability layer counts, one variant per quantity.
///
/// The §5 cost-model mapping of each counter is documented in DESIGN.md §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Event rows visited by the step-1 selection scan (§3.2).
    EventsScanned,
    /// Event rows passing the `WHERE` predicate.
    EventsSelected,
    /// Data sequences formed (one per cluster, §3.2 steps 2–3).
    SequencesFormed,
    /// Sequence groups formed (§3.2 step 4).
    GroupsFormed,
    /// Distinct sequences fetched while answering the query (the paper's
    /// "number of sequences scanned", Table 1).
    SequencesScanned,
    /// Candidate match windows / DFS nodes attempted by pattern matching.
    MatchWindows,
    /// Cell assignments produced by the matcher (occurrences surviving the
    /// restriction and matching predicate).
    PatternAssignments,
    /// Cells in the finished S-cuboid (after iceberg filtering).
    CellsMaterialized,
    /// Inverted indices built during the query.
    IndicesBuilt,
    /// Bytes of inverted indices built during the query.
    IndexBytesBuilt,
    /// Inverted-index joins performed (Figure 15 line 8).
    IndexJoins,
    /// Sequence-cache hits.
    SeqCacheHits,
    /// Sequence-cache misses (steps 1–4 had to run).
    SeqCacheMisses,
    /// Sequence-cache entries evicted while inserting this query's groups.
    SeqCacheEvictions,
    /// Whether the cuboid repository answered the query outright (0/1).
    CuboidCacheHits,
    /// Governor work units ticked (scan events + match windows + index
    /// build/verify steps; see [`crate::govern::QueryGovernor::tick`]).
    GovernorTicks,
    /// Cells charged against the governor budget (thread-local duplicates
    /// of a logical cell may be charged more than once).
    CellsCharged,
    /// Parallel construction workers spawned (CB scans + II base builds).
    WorkersSpawned,
    /// Event rows appended through the engine's `STORE` path.
    StoreEvents,
    /// WAL fsync (or fdatasync-equivalent) calls issued by the event log.
    WalFsyncs,
    /// WAL segment rotations (active segment sealed and replaced).
    WalRotations,
    /// Cached sequence-group sets carried forward incrementally by a store.
    IngestGroupsExtended,
    /// Stored inverted indices carried forward incrementally by a store.
    IngestIndexesExtended,
    /// Cached sequence-group sets a store had to abandon (the batch
    /// touched an existing cluster — [`crate::Error::ClusterInvalidated`]
    /// — or the extension failed); the next query rebuilds from scratch.
    IngestRebuildFallbacks,
    /// Execution alternatives the cost-based planner enumerated and costed
    /// for this query (0 when the planner is off).
    PlanAlternativesConsidered,
    /// Whether the planner answered by rolling up a materialized finer
    /// ancestor cuboid instead of scanning or joining (0/1).
    PlanAncestorReuses,
    /// Source-cuboid cells merged during an ancestor roll-up.
    PlanCellsMerged,
}

impl Counter {
    /// Number of counters (array sizing).
    pub const COUNT: usize = 27;

    /// Every counter, in render order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::EventsScanned,
        Counter::EventsSelected,
        Counter::SequencesFormed,
        Counter::GroupsFormed,
        Counter::SequencesScanned,
        Counter::MatchWindows,
        Counter::PatternAssignments,
        Counter::CellsMaterialized,
        Counter::IndicesBuilt,
        Counter::IndexBytesBuilt,
        Counter::IndexJoins,
        Counter::SeqCacheHits,
        Counter::SeqCacheMisses,
        Counter::SeqCacheEvictions,
        Counter::CuboidCacheHits,
        Counter::GovernorTicks,
        Counter::CellsCharged,
        Counter::WorkersSpawned,
        Counter::StoreEvents,
        Counter::WalFsyncs,
        Counter::WalRotations,
        Counter::IngestGroupsExtended,
        Counter::IngestIndexesExtended,
        Counter::IngestRebuildFallbacks,
        Counter::PlanAlternativesConsidered,
        Counter::PlanAncestorReuses,
        Counter::PlanCellsMerged,
    ];

    /// The stable snake_case name used by the text and JSON renderers.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsScanned => "events_scanned",
            Counter::EventsSelected => "events_selected",
            Counter::SequencesFormed => "sequences_formed",
            Counter::GroupsFormed => "groups_formed",
            Counter::SequencesScanned => "sequences_scanned",
            Counter::MatchWindows => "match_windows",
            Counter::PatternAssignments => "pattern_assignments",
            Counter::CellsMaterialized => "cells_materialized",
            Counter::IndicesBuilt => "indices_built",
            Counter::IndexBytesBuilt => "index_bytes_built",
            Counter::IndexJoins => "index_joins",
            Counter::SeqCacheHits => "seq_cache_hits",
            Counter::SeqCacheMisses => "seq_cache_misses",
            Counter::SeqCacheEvictions => "seq_cache_evictions",
            Counter::CuboidCacheHits => "cuboid_cache_hits",
            Counter::GovernorTicks => "governor_ticks",
            Counter::CellsCharged => "cells_charged",
            Counter::WorkersSpawned => "workers_spawned",
            Counter::StoreEvents => "store_events",
            Counter::WalFsyncs => "wal_fsyncs",
            Counter::WalRotations => "wal_rotations",
            Counter::IngestGroupsExtended => "ingest_groups_extended",
            Counter::IngestIndexesExtended => "ingest_indexes_extended",
            Counter::IngestRebuildFallbacks => "ingest_rebuild_fallbacks",
            Counter::PlanAlternativesConsidered => "plan_alternatives_considered",
            Counter::PlanAncestorReuses => "plan_ancestor_reuses",
            Counter::PlanCellsMerged => "plan_cells_merged",
        }
    }
}

/// Timed execution stages. The four seqquery steps of §3.2 execute as two
/// fused passes (selection+clustering in one scan, sorting+grouping in
/// one), so they are covered by two spans; every step additionally has an
/// exact [`Counter`].
///
/// Stage times are summed across parallel workers, so a stage's total may
/// exceed the query's wall-clock time (it approximates CPU time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// §3.2 steps 1–2: the fused selection + clustering scan.
    SelectCluster,
    /// §3.2 steps 3–4: per-cluster sorting and sequence grouping.
    FormGroup,
    /// Inverted-index construction (base builds and drill-down rescans).
    IndexBuild,
    /// Inverted-index joins (Figure 15 line 8).
    IndexJoin,
    /// Join-candidate verification scans (Figure 15 line 9).
    IndexVerify,
    /// Counter scans (CB) or indexed folding (II) into cuboid cells,
    /// including pattern matching.
    Aggregate,
}

impl Stage {
    /// Number of stages (array sizing).
    pub const COUNT: usize = 6;

    /// Every stage, in render order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::SelectCluster,
        Stage::FormGroup,
        Stage::IndexBuild,
        Stage::IndexJoin,
        Stage::IndexVerify,
        Stage::Aggregate,
    ];

    /// The stable snake_case name used by the text and JSON renderers.
    pub fn name(self) -> &'static str {
        match self {
            Stage::SelectCluster => "select_cluster",
            Stage::FormGroup => "form_group",
            Stage::IndexBuild => "index_build",
            Stage::IndexJoin => "index_join",
            Stage::IndexVerify => "index_verify",
            Stage::Aggregate => "aggregate",
        }
    }
}

/// Whether per-query profiling is enabled (default: on). Seeded once from
/// `SOLAP_PROFILE` (`0`, `off` or `false` disable it), overridable at
/// runtime with [`set_enabled`]. The check is one relaxed atomic load.
pub fn enabled() -> bool {
    // ord: standalone on/off flag consulted at query start only; no payload is published with it
    flag().load(Ordering::Relaxed)
}

/// Turns per-query profiling on or off at runtime (tests and the CLI
/// `.profile` command). Queries already in flight keep their recorder.
pub fn set_enabled(on: bool) {
    // ord: see enabled() — a racing query start observing the old value is acceptable by contract
    flag().store(on, Ordering::Relaxed);
}

fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let off = std::env::var("SOLAP_PROFILE").is_ok_and(|v| {
            matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "0" | "off" | "false"
            )
        });
        AtomicBool::new(!off)
    })
}

/// Lock-free per-query accumulators, shared across the query's parallel
/// workers through the governor. All operations are relaxed atomics.
#[derive(Debug)]
pub struct QueryRecorder {
    counters: [AtomicU64; Counter::COUNT],
    stage_nanos: [AtomicU64; Stage::COUNT],
}

impl Default for QueryRecorder {
    fn default() -> Self {
        QueryRecorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl QueryRecorder {
    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        // ord: independent monotonic accumulators; exact totals are read only after the query joins its workers (join synchronizes)
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        // ord: read post-join for exactness, mid-flight only for diagnostics
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Adds elapsed nanoseconds to a stage timer.
    #[inline]
    pub fn add_stage_nanos(&self, stage: Stage, nanos: u64) {
        // ord: see add()
        self.stage_nanos[stage as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Accumulated nanoseconds of a stage.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        // ord: see counter()
        self.stage_nanos[stage as usize].load(Ordering::Relaxed)
    }
}

/// An RAII span timer: adds the elapsed time to `stage` when dropped.
pub struct Span<'a> {
    rec: &'a QueryRecorder,
    stage: Stage,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.rec
            .add_stage_nanos(self.stage, self.start.elapsed().as_nanos() as u64);
    }
}

/// Starts a span timer against an optional recorder. With `None` (profiling
/// disabled) nothing is measured — not even the clock read.
pub fn span(rec: Option<&QueryRecorder>, stage: Stage) -> Option<Span<'_>> {
    rec.map(|rec| Span {
        rec,
        stage,
        start: Instant::now(),
    })
}

/// The per-query profile: an immutable snapshot of one execution's counters
/// and stage timings, returned alongside every engine result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// Whether a recorder ran (profiling enabled). When `false` only the
    /// engine-level fields (`strategy`, `elapsed_nanos`) are meaningful.
    pub detailed: bool,
    /// Which strategy produced the result (`"CB"`, `"II"`, `"cache"`).
    pub strategy: &'static str,
    /// Wall-clock nanoseconds.
    pub elapsed_nanos: u64,
    /// Counter values, indexed by `Counter as usize`.
    pub counters: [u64; Counter::COUNT],
    /// Stage nanoseconds, indexed by `Stage as usize`.
    pub stage_nanos: [u64; Stage::COUNT],
}

impl QueryProfile {
    /// Snapshots a recorder (engine-level fields left default).
    pub fn from_recorder(rec: &QueryRecorder) -> Self {
        QueryProfile {
            detailed: true,
            strategy: "",
            elapsed_nanos: 0,
            // ord: snapshot taken after worker join — the join synchronizes every prior relaxed write
            counters: std::array::from_fn(|i| rec.counters[i].load(Ordering::Relaxed)),
            stage_nanos: std::array::from_fn(|i| rec.stage_nanos[i].load(Ordering::Relaxed)),
        }
    }

    /// A counter's value.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// A stage's accumulated nanoseconds.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage as usize]
    }

    /// Renders the profile as aligned text (the CLI/PROFILE output). With
    /// `redact_timings` every duration prints as `-`, making the output
    /// deterministic (golden tests).
    pub fn render_text(&self, redact_timings: bool) -> String {
        let dur = |nanos: u64| {
            if redact_timings {
                "-".to_string()
            } else {
                format_nanos(nanos)
            }
        };
        let mut out = format!(
            "profile: strategy={} elapsed={}\n",
            self.strategy,
            dur(self.elapsed_nanos)
        );
        if !self.detailed {
            out.push_str("  (detailed counters disabled; see SOLAP_PROFILE / .profile on)\n");
            return out;
        }
        out.push_str("  counters:\n");
        for c in Counter::ALL {
            out.push_str(&format!("    {:<24} {}\n", c.name(), self.counter(c)));
        }
        out.push_str("  stages:\n");
        for s in Stage::ALL {
            out.push_str(&format!(
                "    {:<24} {}\n",
                s.name(),
                dur(self.stage_nanos(s))
            ));
        }
        out
    }

    /// Renders the profile as one JSON object (bench reports, trace log).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"strategy\":\"{}\",\"elapsed_ns\":{},\"detailed\":{},\"counters\":{{",
            self.strategy, self.elapsed_nanos, self.detailed
        );
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name(), self.counter(*c)));
        }
        out.push_str("},\"stages_ns\":{");
        for (i, s) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", s.name(), self.stage_nanos(*s)));
        }
        out.push_str("}}");
        out
    }
}

/// Formats nanoseconds human-readably (`412ns`, `3.21µs`, `4.56ms`, `1.23s`).
pub fn format_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Process-wide cumulative metrics: every executed query folds its profile
/// in. All counters are relaxed atomics; see [`global`].
#[derive(Debug)]
pub struct EngineMetrics {
    queries: AtomicU64,
    failures: AtomicU64,
    elapsed_nanos: AtomicU64,
    counters: [AtomicU64; Counter::COUNT],
    stage_nanos: [AtomicU64; Stage::COUNT],
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics {
            queries: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            elapsed_nanos: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The process-wide [`EngineMetrics`] instance.
pub fn global() -> &'static EngineMetrics {
    static GLOBAL: OnceLock<EngineMetrics> = OnceLock::new();
    GLOBAL.get_or_init(EngineMetrics::default)
}

impl EngineMetrics {
    /// Folds one successful query's profile into the totals.
    pub fn record(&self, profile: &QueryProfile) {
        // ord: process-cumulative statistics — each cell is an independent monotonic sum and readers never require a consistent cross-counter cut
        self.queries.fetch_add(1, Ordering::Relaxed);
        // ord: see above
        self.elapsed_nanos
            .fetch_add(profile.elapsed_nanos, Ordering::Relaxed);
        for c in Counter::ALL {
            // ord: see above — independent statistical accumulators
            self.counters[c as usize].fetch_add(profile.counter(c), Ordering::Relaxed);
        }
        for s in Stage::ALL {
            // ord: see above — independent statistical accumulators
            self.stage_nanos[s as usize].fetch_add(profile.stage_nanos(s), Ordering::Relaxed);
        }
    }

    /// Counts one failed query.
    pub fn record_failure(&self) {
        // ord: independent monotonic statistic, same contract as record()
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Successful queries recorded so far.
    pub fn queries(&self) -> u64 {
        // ord: statistical read; no cross-counter consistency promised
        self.queries.load(Ordering::Relaxed)
    }

    /// Failed queries recorded so far.
    pub fn failures(&self) -> u64 {
        // ord: see queries()
        self.failures.load(Ordering::Relaxed)
    }

    /// A counter's cumulative total.
    pub fn counter(&self, counter: Counter) -> u64 {
        // ord: see queries()
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// A stage's cumulative nanoseconds.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        // ord: see queries()
        self.stage_nanos[stage as usize].load(Ordering::Relaxed)
    }

    /// Zeroes every total (tests and the CLI after `.metrics reset`).
    pub fn reset(&self) {
        // ord: reset is only meaningful between queries; concurrent folds may interleave and the totals stay statistical either way
        self.queries.store(0, Ordering::Relaxed);
        self.failures.store(0, Ordering::Relaxed);
        // ord: see above
        self.elapsed_nanos.store(0, Ordering::Relaxed);
        for c in &self.counters {
            // ord: see above
            c.store(0, Ordering::Relaxed);
        }
        for s in &self.stage_nanos {
            // ord: see above
            s.store(0, Ordering::Relaxed);
        }
    }

    /// Renders the cumulative totals as aligned text (`.metrics`).
    pub fn export_text(&self) -> String {
        let mut out = format!(
            "engine metrics: queries={} failures={} elapsed_total={}\n",
            self.queries(),
            self.failures(),
            // ord: statistical export read, see queries()
            format_nanos(self.elapsed_nanos.load(Ordering::Relaxed))
        );
        out.push_str("  counters:\n");
        for c in Counter::ALL {
            out.push_str(&format!("    {:<24} {}\n", c.name(), self.counter(c)));
        }
        out.push_str("  stages:\n");
        for s in Stage::ALL {
            out.push_str(&format!(
                "    {:<24} {}\n",
                s.name(),
                format_nanos(self.stage_nanos(s))
            ));
        }
        out
    }

    /// Renders the cumulative totals as one JSON object.
    pub fn export_json(&self) -> String {
        let mut out = format!(
            "{{\"queries\":{},\"failures\":{},\"elapsed_ns\":{},\"counters\":{{",
            self.queries(),
            self.failures(),
            // ord: statistical export read, see queries()
            self.elapsed_nanos.load(Ordering::Relaxed)
        );
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name(), self.counter(*c)));
        }
        out.push_str("},\"stages_ns\":{");
        for (i, s) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", s.name(), self.stage_nanos(*s)));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_stage_catalogs_are_consistent() {
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{}", c.name());
        }
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i, "{}", s.name());
        }
    }

    #[test]
    fn recorder_accumulates_and_snapshots() {
        let rec = QueryRecorder::default();
        rec.add(Counter::EventsScanned, 10);
        rec.add(Counter::EventsScanned, 5);
        rec.add_stage_nanos(Stage::Aggregate, 1_000);
        assert_eq!(rec.counter(Counter::EventsScanned), 15);
        let p = QueryProfile::from_recorder(&rec);
        assert!(p.detailed);
        assert_eq!(p.counter(Counter::EventsScanned), 15);
        assert_eq!(p.stage_nanos(Stage::Aggregate), 1_000);
        assert_eq!(p.counter(Counter::IndexJoins), 0);
    }

    #[test]
    fn recorder_is_shared_across_threads() {
        let rec = QueryRecorder::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        rec.add(Counter::MatchWindows, 1);
                    }
                });
            }
        });
        assert_eq!(rec.counter(Counter::MatchWindows), 4000);
    }

    #[test]
    fn span_records_on_drop_and_none_is_free() {
        let rec = QueryRecorder::default();
        {
            let _s = span(Some(&rec), Stage::IndexBuild);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(rec.stage_nanos(Stage::IndexBuild) > 0);
        assert!(span(None, Stage::IndexBuild).is_none());
    }

    #[test]
    fn text_render_lists_every_counter_and_redacts() {
        let rec = QueryRecorder::default();
        rec.add(Counter::SequencesScanned, 7);
        rec.add_stage_nanos(Stage::FormGroup, 123_456);
        let mut p = QueryProfile::from_recorder(&rec);
        p.strategy = "II";
        p.elapsed_nanos = 42;
        let t = p.render_text(true);
        for c in Counter::ALL {
            assert!(t.contains(c.name()), "missing {}", c.name());
        }
        for s in Stage::ALL {
            assert!(t.contains(s.name()), "missing {}", s.name());
        }
        assert!(t.contains("elapsed=-"), "timings must be redacted: {t}");
        assert!(!t.contains("123"), "redacted render leaks nanos: {t}");
        let unredacted = p.render_text(false);
        assert!(unredacted.contains("µs") || unredacted.contains("ns"));
    }

    #[test]
    fn json_render_is_well_formed() {
        let rec = QueryRecorder::default();
        rec.add(Counter::IndexJoins, 3);
        let mut p = QueryProfile::from_recorder(&rec);
        p.strategy = "CB";
        let j = p.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"index_joins\":3"));
        assert!(j.contains("\"strategy\":\"CB\""));
        // Balanced braces with no trailing commas.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",}"));
    }

    #[test]
    fn engine_metrics_fold_and_reset() {
        let m = EngineMetrics::default();
        let rec = QueryRecorder::default();
        rec.add(Counter::EventsScanned, 9);
        let mut p = QueryProfile::from_recorder(&rec);
        p.elapsed_nanos = 100;
        m.record(&p);
        m.record(&p);
        m.record_failure();
        assert_eq!(m.queries(), 2);
        assert_eq!(m.failures(), 1);
        assert_eq!(m.counter(Counter::EventsScanned), 18);
        assert!(m.export_text().contains("queries=2 failures=1"));
        assert!(m.export_json().contains("\"events_scanned\":18"));
        m.reset();
        assert_eq!(m.queries(), 0);
        assert_eq!(m.counter(Counter::EventsScanned), 0);
    }

    #[test]
    fn format_nanos_units() {
        assert_eq!(format_nanos(412), "412ns");
        assert_eq!(format_nanos(3_210), "3.21µs");
        assert_eq!(format_nanos(4_560_000), "4.56ms");
        assert_eq!(format_nanos(1_230_000_000), "1.23s");
    }
}
