//! Concept hierarchies over dimension attributes.
//!
//! The paper's running example (§3.1) uses three hierarchies:
//!
//! * `location`: `station → district` — an explicit mapping between two
//!   string domains ([`DictHierarchy`]);
//! * `card-id`: `individual → fare-group` — an explicit mapping from an
//!   integer domain to a small string domain ([`IntHierarchy`]);
//! * `time`: `time → day → week` — *functional* levels computed from the
//!   timestamp ([`TimeHierarchy`]).
//!
//! All hierarchies expose a numbered ladder of levels; level 0 is the base
//! (finest) level, higher numbers are coarser. The value of a dimension at a
//! level is a [`crate::value::LevelValue`]; [`crate::store::EventDb`]
//! resolves rows to level values and renders them back to strings.

use std::collections::HashMap;

use crate::dict::Dictionary;
use crate::error::{Error, Result};
use crate::time;

/// Sentinel parent id meaning "unmapped"; surfaces as
/// [`Error::IncompleteHierarchy`] when hit.
pub const UNMAPPED: u32 = u32::MAX;

/// One non-base level of a dictionary-style hierarchy.
#[derive(Debug, Clone, Default)]
pub struct DictLevel {
    /// Level name, e.g. `district`.
    pub name: String,
    /// Dictionary of this level's values.
    pub dict: Dictionary,
    /// `parent_of[child_id] = id in this level's dictionary`, where
    /// `child_id` ranges over the level immediately below.
    pub parent_of: Vec<u32>,
}

impl DictLevel {
    /// Maps a child id (from the level below) to its parent id at this
    /// level, or `None` if unmapped.
    pub fn map(&self, child: u32) -> Option<u32> {
        match self.parent_of.get(child as usize) {
            Some(&p) if p != UNMAPPED => Some(p),
            _ => None,
        }
    }
}

/// A hierarchy over a string column. Level 0 is the column's own dictionary;
/// `levels[k]` is level `k + 1`.
#[derive(Debug, Clone, Default)]
pub struct DictHierarchy {
    /// Non-base levels, finest first.
    pub levels: Vec<DictLevel>,
}

impl DictHierarchy {
    /// Maps a base-level id up to `to_level` (1-based; 0 is identity).
    pub fn map_up(&self, base_id: u32, to_level: usize) -> Option<u32> {
        let mut id = base_id;
        for lvl in &self.levels[..to_level] {
            id = lvl.map(id)?;
        }
        Some(id)
    }
}

/// A hierarchy over an integer column (e.g. `card-id`). The base level is
/// the raw integer; `base_to_first` maps it into `levels[0]`'s dictionary,
/// and further levels behave like [`DictHierarchy`] levels.
#[derive(Debug, Clone, Default)]
pub struct IntHierarchy {
    /// Raw integer → id in `levels[0].dict`.
    pub base_to_first: HashMap<i64, u32>,
    /// Non-base levels, finest first. `levels[0].parent_of` is unused.
    pub levels: Vec<DictLevel>,
}

impl IntHierarchy {
    /// Maps a raw integer up to `to_level` (1-based).
    pub fn map_up(&self, raw: i64, to_level: usize) -> Option<u32> {
        let mut id = *self.base_to_first.get(&raw)?;
        for lvl in &self.levels[1..to_level] {
            id = lvl.map(id)?;
        }
        Some(id)
    }
}

/// A functional granularity of a time hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeGranularity {
    /// The raw timestamp (level 0).
    Raw,
    /// Hours since the epoch.
    Hour,
    /// Days since the epoch.
    Day,
    /// Weeks (Monday-based) since the epoch.
    Week,
    /// Months.
    Month,
    /// Quarters.
    Quarter,
}

impl TimeGranularity {
    /// The level name used in queries (`... AT day`).
    pub fn name(self) -> &'static str {
        match self {
            TimeGranularity::Raw => "raw",
            TimeGranularity::Hour => "hour",
            TimeGranularity::Day => "day",
            TimeGranularity::Week => "week",
            TimeGranularity::Month => "month",
            TimeGranularity::Quarter => "quarter",
        }
    }

    /// Buckets a timestamp at this granularity.
    pub fn bucket(self, t: i64) -> i64 {
        match self {
            TimeGranularity::Raw => t,
            TimeGranularity::Hour => time::hour_of(t),
            TimeGranularity::Day => time::day_of(t),
            TimeGranularity::Week => time::week_of(t),
            TimeGranularity::Month => time::month_of(t),
            TimeGranularity::Quarter => time::quarter_of(t),
        }
    }

    /// Renders a bucket ordinal of this granularity.
    pub fn render(self, bucket: i64) -> String {
        match self {
            TimeGranularity::Raw => time::format_timestamp(bucket),
            TimeGranularity::Hour => format!("{}h", time::format_timestamp(bucket * 3600)),
            TimeGranularity::Day => time::format_day(bucket),
            TimeGranularity::Week => time::format_week(bucket),
            TimeGranularity::Month => time::format_month(bucket),
            TimeGranularity::Quarter => time::format_quarter(bucket),
        }
    }

    /// A representative timestamp inside the bucket (used to re-bucket a
    /// coarse value at an even coarser granularity).
    pub fn representative(self, bucket: i64) -> i64 {
        match self {
            TimeGranularity::Raw => bucket,
            TimeGranularity::Hour => bucket * 3600,
            TimeGranularity::Day => bucket * time::SECS_PER_DAY,
            TimeGranularity::Week => (bucket * 7 - 3) * time::SECS_PER_DAY,
            TimeGranularity::Month => {
                time::days_from_civil(bucket.div_euclid(12), (bucket.rem_euclid(12) + 1) as u32, 1)
                    * time::SECS_PER_DAY
            }
            TimeGranularity::Quarter => {
                time::days_from_civil(
                    bucket.div_euclid(4),
                    (bucket.rem_euclid(4) * 3 + 1) as u32,
                    1,
                ) * time::SECS_PER_DAY
            }
        }
    }
}

/// A ladder of functional time granularities, finest first. Level 0 must be
/// [`TimeGranularity::Raw`].
#[derive(Debug, Clone)]
pub struct TimeHierarchy {
    /// The granularities, finest first.
    pub levels: Vec<TimeGranularity>,
}

impl TimeHierarchy {
    /// The paper's `time → day → week` ladder.
    pub fn time_day_week() -> Self {
        TimeHierarchy {
            levels: vec![
                TimeGranularity::Raw,
                TimeGranularity::Day,
                TimeGranularity::Week,
            ],
        }
    }

    /// The full ladder `raw → hour → day → week → month → quarter`.
    pub fn full() -> Self {
        TimeHierarchy {
            levels: vec![
                TimeGranularity::Raw,
                TimeGranularity::Hour,
                TimeGranularity::Day,
                TimeGranularity::Week,
                TimeGranularity::Month,
                TimeGranularity::Quarter,
            ],
        }
    }
}

/// A concept hierarchy attached to a dimension column.
#[derive(Debug, Clone)]
pub enum Hierarchy {
    /// No hierarchy: the attribute only has its base level.
    None,
    /// Explicit hierarchy over a string column.
    Dict(DictHierarchy),
    /// Explicit hierarchy over an integer column.
    Int(IntHierarchy),
    /// Functional hierarchy over a time column.
    Time(TimeHierarchy),
}

impl Hierarchy {
    /// Number of levels including the base level.
    pub fn level_count(&self) -> usize {
        match self {
            Hierarchy::None => 1,
            Hierarchy::Dict(h) => 1 + h.levels.len(),
            Hierarchy::Int(h) => 1 + h.levels.len(),
            Hierarchy::Time(h) => h.levels.len(),
        }
    }

    /// The name of level `i`, if it exists. Level 0 of non-time hierarchies
    /// has no intrinsic name here; the store falls back to the attribute
    /// name or a configured base-level name.
    pub fn level_name(&self, i: usize) -> Option<&str> {
        match self {
            Hierarchy::None => None,
            Hierarchy::Dict(h) => h.levels.get(i.checked_sub(1)?).map(|l| l.name.as_str()),
            Hierarchy::Int(h) => h.levels.get(i.checked_sub(1)?).map(|l| l.name.as_str()),
            Hierarchy::Time(h) => h.levels.get(i).map(|g| g.name()),
        }
    }
}

/// Validates that every child id of a [`DictLevel`] has a parent.
pub fn validate_level(attribute: &str, level: &DictLevel, child_names: &Dictionary) -> Result<()> {
    for (i, &p) in level.parent_of.iter().enumerate() {
        if p == UNMAPPED {
            return Err(Error::IncompleteHierarchy {
                attribute: attribute.to_owned(),
                level: level.name.clone(),
                value: child_names
                    .resolve(i as u32)
                    .unwrap_or("<unknown>")
                    .to_owned(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station_district() -> (Dictionary, DictHierarchy) {
        let mut base = Dictionary::new();
        let mut level = DictLevel {
            name: "district".into(),
            ..Default::default()
        };
        for (st, d) in [
            ("Pentagon", "D10"),
            ("Clarendon", "D10"),
            ("Wheaton", "D20"),
            ("Glenmont", "D20"),
        ] {
            let c = base.intern(st);
            let p = level.dict.intern(d);
            if level.parent_of.len() <= c as usize {
                level.parent_of.resize(c as usize + 1, UNMAPPED);
            }
            level.parent_of[c as usize] = p;
        }
        (
            base,
            DictHierarchy {
                levels: vec![level],
            },
        )
    }

    #[test]
    fn dict_map_up() {
        let (base, h) = station_district();
        let pentagon = base.lookup("Pentagon").unwrap();
        let clarendon = base.lookup("Clarendon").unwrap();
        let wheaton = base.lookup("Wheaton").unwrap();
        assert_eq!(h.map_up(pentagon, 0), Some(pentagon));
        assert_eq!(h.map_up(pentagon, 1), h.map_up(clarendon, 1));
        assert_ne!(h.map_up(pentagon, 1), h.map_up(wheaton, 1));
    }

    #[test]
    fn int_map_up() {
        let mut h = IntHierarchy::default();
        let mut l = DictLevel {
            name: "fare-group".into(),
            ..Default::default()
        };
        let regular = l.dict.intern("regular");
        let student = l.dict.intern("student");
        h.levels.push(l);
        h.base_to_first.insert(688, regular);
        h.base_to_first.insert(23456, student);
        assert_eq!(h.map_up(688, 1), Some(regular));
        assert_eq!(h.map_up(23456, 1), Some(student));
        assert_eq!(h.map_up(42, 1), None);
    }

    #[test]
    fn time_levels() {
        let h = TimeHierarchy::time_day_week();
        assert_eq!(h.levels[0], TimeGranularity::Raw);
        let t = time::timestamp(2007, 10, 1, 13, 30, 0);
        assert_eq!(
            TimeGranularity::Day.render(TimeGranularity::Day.bucket(t)),
            "2007-10-01"
        );
        let hh = Hierarchy::Time(h);
        assert_eq!(hh.level_count(), 3);
        assert_eq!(hh.level_name(1), Some("day"));
        assert_eq!(hh.level_name(2), Some("week"));
    }

    #[test]
    fn representative_rebuckets_consistently() {
        // Rolling a day up to its quarter via the representative must agree
        // with bucketing the original timestamp directly.
        let t = time::timestamp(2007, 11, 15, 8, 0, 0);
        let day = TimeGranularity::Day.bucket(t);
        let via_rep = TimeGranularity::Quarter.bucket(TimeGranularity::Day.representative(day));
        assert_eq!(via_rep, TimeGranularity::Quarter.bucket(t));
        let month = TimeGranularity::Month.bucket(t);
        assert_eq!(
            TimeGranularity::Quarter.bucket(TimeGranularity::Month.representative(month)),
            TimeGranularity::Quarter.bucket(t)
        );
    }

    #[test]
    fn validate_detects_holes() {
        let (base, mut h) = station_district();
        assert!(validate_level("location", &h.levels[0], &base).is_ok());
        h.levels[0].parent_of[1] = UNMAPPED;
        let err = validate_level("location", &h.levels[0], &base).unwrap_err();
        assert!(matches!(err, Error::IncompleteHierarchy { .. }));
    }

    #[test]
    fn level_counts() {
        assert_eq!(Hierarchy::None.level_count(), 1);
        let (_, h) = station_district();
        assert_eq!(Hierarchy::Dict(h).level_count(), 2);
    }
}
