//! The write-ahead log: crash-safe, checksummed event framing.
//!
//! Streaming ingestion (§6 "Incremental Update") needs a durability story:
//! an acknowledged `STORE` must survive a crash of the serving process.
//! This module provides the record format and the single-file writer /
//! replayer the segmented [`crate::log`] is built from:
//!
//! ```text
//! file   := header record*
//! header := magic "SOLAPWAL" | u32 format-version (1)
//! record := u32 payload-len | payload | u64 fnv1a64(payload)
//! payload:= u8 kind (1 = event row) | u16 column-count
//!           | per value: u8 tag (0 int | 1 float | 2 str | 3 time) + data
//! ```
//!
//! All integers are little-endian; strings are `u32` length + UTF-8 bytes
//! (the same framing style as the index codec and persist formats, FNV-1a
//! 64-bit checksums included).
//!
//! A crash can leave a *torn tail*: a partially written final record, or
//! garbage past the last complete one. [`replay`] decodes every complete,
//! checksum-valid record and reports the tail state instead of failing;
//! [`replay_strict`] (used for sealed segments, which were fsynced before
//! being sealed) converts any tail damage into a typed [`Error::Corrupt`].
//! Neither path ever panics on arbitrary bytes.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::error::{Error, Result};
use crate::fail_point;
use crate::value::Value;

const MAGIC: &[u8; 8] = b"SOLAPWAL";
const FORMAT_VERSION: u32 = 1;
/// Byte length of the file header (magic + version).
pub const HEADER_LEN: u64 = 12;
/// Record payloads above this are rejected as corrupt (16 MiB).
const MAX_RECORD_LEN: usize = 1 << 24;
/// Column counts above this are rejected as corrupt.
const MAX_COLS: usize = 1 << 16;
/// Record kind tag: one event row.
const KIND_ROW: u8 = 1;

/// When the log forces written records to stable storage.
///
/// Seeded from `SOLAP_FSYNC` (`always` | `batch` | `off`) by
/// [`FsyncPolicy::from_env`]; the default is `batch` — group commit, one
/// fsync per acknowledged append batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every record — maximum durability, slowest.
    Always,
    /// fsync once per append batch (group commit) — the default.
    #[default]
    Batch,
    /// Never fsync; rely on the OS. An acknowledgement only promises the
    /// event reached the kernel, not the platter.
    Off,
}

impl FsyncPolicy {
    /// Parses a policy name (case-insensitive).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "off" => Some(FsyncPolicy::Off),
            _ => None,
        }
    }

    /// Reads `SOLAP_FSYNC`, falling back to [`FsyncPolicy::Batch`] when
    /// unset or unparseable.
    pub fn from_env() -> FsyncPolicy {
        std::env::var("SOLAP_FSYNC")
            .ok()
            .and_then(|v| FsyncPolicy::parse(&v))
            .unwrap_or_default()
    }

    /// The stable lowercase name (`always` / `batch` / `off`).
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Off => "off",
        }
    }
}

/// FNV-1a 64-bit — the workspace's dependency-free checksum.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::InvalidOperation(format!("wal {what} failed: {e}"))
}

fn corrupt(detail: impl Into<String>) -> Error {
    Error::Corrupt {
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes one event row as a record payload (kind + values).
pub fn encode_row(row: &[Value]) -> Result<Vec<u8>> {
    if row.len() > MAX_COLS {
        return Err(Error::InvalidOperation(format!(
            "row has {} values; the wal format caps columns at {MAX_COLS}",
            row.len()
        )));
    }
    let mut out = Vec::with_capacity(16 + row.len() * 9);
    out.push(KIND_ROW);
    put_u16(&mut out, row.len() as u16);
    // solint: allow(governor-tick) bounded by the schema arity; the engine
    // ticks per row during validation before the batch reaches the WAL
    for v in row {
        match v {
            Value::Int(i) => {
                out.push(0);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(1);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                if s.len() > MAX_RECORD_LEN {
                    return Err(Error::InvalidOperation(format!(
                        "string value of {} bytes exceeds the wal record cap",
                        s.len()
                    )));
                }
                out.push(2);
                put_u32(&mut out, s.len() as u32);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Time(t) => {
                out.push(3);
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
    }
    Ok(out)
}

/// Wraps a payload in the length + checksum frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 12);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    put_u64(&mut out, fnv1a(payload));
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked slice reader (no indexing, no panics on bad input).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|s| s.first().copied())
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| {
            let mut b = [0u8; 2];
            b.copy_from_slice(s);
            u16::from_le_bytes(b)
        })
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| {
            let mut b = [0u8; 4];
            b.copy_from_slice(s);
            u32::from_le_bytes(b)
        })
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            let mut b = [0u8; 8];
            b.copy_from_slice(s);
            u64::from_le_bytes(b)
        })
    }

    fn i64(&mut self) -> Option<i64> {
        self.u64().map(|v| v as i64)
    }
}

/// Decodes a record payload back into an event row.
pub fn decode_row(payload: &[u8]) -> Result<Vec<Value>> {
    let mut c = Cursor::new(payload);
    let kind = c.u8().ok_or_else(|| corrupt("empty record payload"))?;
    if kind != KIND_ROW {
        return Err(corrupt(format!("unknown record kind {kind}")));
    }
    let ncols = c.u16().ok_or_else(|| corrupt("truncated column count"))? as usize;
    let mut row = Vec::with_capacity(ncols.min(1 << 10));
    for i in 0..ncols {
        let tag = c
            .u8()
            .ok_or_else(|| corrupt(format!("truncated value tag at column {i}")))?;
        let v = match tag {
            0 => Value::Int(
                c.i64()
                    .ok_or_else(|| corrupt(format!("truncated int at column {i}")))?,
            ),
            1 => Value::Float(f64::from_bits(
                c.u64()
                    .ok_or_else(|| corrupt(format!("truncated float at column {i}")))?,
            )),
            2 => {
                let len = c
                    .u32()
                    .ok_or_else(|| corrupt(format!("truncated string length at column {i}")))?
                    as usize;
                if len > MAX_RECORD_LEN {
                    return Err(corrupt(format!("string length {len} exceeds record cap")));
                }
                let bytes = c
                    .take(len)
                    .ok_or_else(|| corrupt(format!("truncated string at column {i}")))?;
                Value::Str(
                    std::str::from_utf8(bytes)
                        .map_err(|e| corrupt(format!("invalid utf-8 at column {i}: {e}")))?
                        .to_string(),
                )
            }
            3 => Value::Time(
                c.i64()
                    .ok_or_else(|| corrupt(format!("truncated time at column {i}")))?,
            ),
            other => return Err(corrupt(format!("unknown value tag {other} at column {i}"))),
        };
        row.push(v);
    }
    if c.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after the last column",
            c.remaining()
        )));
    }
    Ok(row)
}

/// What [`replay`] found at the end of a log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tail {
    /// The file ends exactly after the last complete record.
    Clean,
    /// The file ends in a torn or corrupt record. `valid_len` is the byte
    /// offset of the last complete record's end — truncating the file there
    /// restores the clean-tail invariant.
    Torn {
        /// Offset to truncate the file to.
        valid_len: u64,
        /// What was wrong with the bytes past `valid_len`.
        detail: String,
    },
}

/// One replayed log file: the decoded rows plus the tail verdict.
#[derive(Debug)]
pub struct Replay {
    /// Every complete, checksum-valid event row, in append order.
    pub rows: Vec<Vec<Value>>,
    /// Whether the file ended cleanly or mid-record.
    pub tail: Tail,
}

/// Replays a log file leniently: decodes records until the first torn or
/// corrupt one, reporting (not failing on) tail damage. A missing file
/// replays as empty; a damaged *header* is real corruption (the header is
/// written and synced before any append is acknowledged) and errors.
pub fn replay(path: &Path) -> Result<Replay> {
    fail_point!("recover.replay");
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Replay {
                rows: Vec::new(),
                tail: Tail::Clean,
            })
        }
        Err(e) => return Err(io_err("open", e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("read", e))?;
    let mut c = Cursor::new(&bytes);
    match c.take(MAGIC.len()) {
        Some(m) if m == MAGIC => {}
        _ => return Err(corrupt("bad wal magic")),
    }
    match c.u32() {
        Some(FORMAT_VERSION) => {}
        Some(v) => return Err(corrupt(format!("unsupported wal version {v}"))),
        None => return Err(corrupt("truncated wal header")),
    }
    let mut rows = Vec::new();
    loop {
        let record_start = c.pos as u64;
        if c.remaining() == 0 {
            return Ok(Replay {
                rows,
                tail: Tail::Clean,
            });
        }
        let torn = |detail: String| Tail::Torn {
            valid_len: record_start,
            detail,
        };
        let Some(len) = c.u32() else {
            return Ok(Replay {
                rows,
                tail: torn("torn record length".into()),
            });
        };
        if len as usize > MAX_RECORD_LEN {
            return Ok(Replay {
                rows,
                tail: torn(format!("record length {len} exceeds cap")),
            });
        }
        let Some(payload) = c.take(len as usize) else {
            return Ok(Replay {
                rows,
                tail: torn(format!("torn payload ({len} bytes promised)")),
            });
        };
        let Some(sum) = c.u64() else {
            return Ok(Replay {
                rows,
                tail: torn("torn checksum".into()),
            });
        };
        if fnv1a(payload) != sum {
            return Ok(Replay {
                rows,
                tail: torn("checksum mismatch".into()),
            });
        }
        match decode_row(payload) {
            Ok(row) => rows.push(row),
            Err(e) => {
                return Ok(Replay {
                    rows,
                    tail: torn(format!("undecodable record: {e}")),
                })
            }
        }
    }
}

/// Replays a *sealed* log file strictly: any tail damage is a typed
/// [`Error::Corrupt`] (sealed segments were fsynced before sealing, so a
/// torn tail there is real corruption, not an interrupted append).
pub fn replay_strict(path: &Path) -> Result<Vec<Vec<Value>>> {
    let replayed = replay(path)?;
    match replayed.tail {
        Tail::Clean => Ok(replayed.rows),
        Tail::Torn { valid_len, detail } => Err(corrupt(format!(
            "sealed segment {} damaged past byte {valid_len}: {detail}",
            path.display()
        ))),
    }
}

/// Truncates a torn tail off a log file, restoring the clean-tail
/// invariant reported by [`replay`].
pub fn truncate_to(path: &Path, valid_len: u64) -> Result<()> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err("open for truncate", e))?;
    file.set_len(valid_len.max(HEADER_LEN))
        .map_err(|e| io_err("truncate", e))?;
    file.sync_all()
        .map_err(|e| io_err("fsync after truncate", e))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// An append-only writer over one WAL file.
///
/// `append_batch` writes every record of the batch and then applies the
/// fsync policy **once** — group commit: a batch of events costs one fsync
/// under [`FsyncPolicy::Batch`] (and one per record under `Always`). The
/// append returns only after the policy's durability point, so a caller
/// acknowledging after `append_batch` acknowledges durable events.
pub struct WalWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    policy: FsyncPolicy,
    bytes: u64,
    records: u64,
    syncs: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("bytes", &self.bytes)
            .field("records", &self.records)
            .finish()
    }
}

impl WalWriter {
    /// Creates a new WAL file (header written and synced immediately) or
    /// opens an existing one for appending. `existing_len` must be the
    /// clean length established by [`replay`] (+ truncation if torn).
    pub fn create(path: &Path, policy: FsyncPolicy) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("create", e))?;
        file.write_all(MAGIC)
            .map_err(|e| io_err("write header", e))?;
        file.write_all(&FORMAT_VERSION.to_le_bytes())
            .map_err(|e| io_err("write header", e))?;
        file.sync_all().map_err(|e| io_err("fsync header", e))?;
        Ok(WalWriter {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
            policy,
            bytes: HEADER_LEN,
            records: 0,
            syncs: 0,
        })
    }

    /// Opens an existing WAL for appending at its (clean) end.
    pub fn open(path: &Path, policy: FsyncPolicy, records: u64) -> Result<WalWriter> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err("open", e))?;
        let bytes = file.metadata().map_err(|e| io_err("stat", e))?.len();
        Ok(WalWriter {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
            policy,
            bytes,
            records,
            syncs: 0,
        })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written so far, header included (rotation threshold input).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended over the writer's lifetime (replayed ones included).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The active fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// fsync calls issued over the writer's lifetime (observability).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Appends a batch of event rows; returns after the batch is durable
    /// per the fsync policy (the acknowledgement point).
    pub fn append_batch(&mut self, rows: &[Vec<Value>]) -> Result<()> {
        // solint: allow(governor-tick) the engine ticks per row during
        // validation (under the read lock) before the batch reaches the WAL
        for row in rows {
            fail_point!("wal.append");
            let payload = encode_row(row)?;
            let framed = frame(&payload);
            self.writer
                .write_all(&framed)
                .map_err(|e| io_err("append", e))?;
            self.bytes += framed.len() as u64;
            self.records += 1;
            if self.policy == FsyncPolicy::Always {
                self.sync()?;
            }
        }
        match self.policy {
            FsyncPolicy::Always => Ok(()), // already synced per record
            FsyncPolicy::Batch => self.sync(),
            FsyncPolicy::Off => self.flush(),
        }
    }

    /// Flushes buffered bytes to the OS without fsync.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush().map_err(|e| io_err("flush", e))
    }

    /// Flushes and fsyncs the file.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        fail_point!("wal.fsync");
        self.writer
            .get_ref()
            .sync_all()
            .map_err(|e| io_err("fsync", e))?;
        self.syncs += 1;
        Ok(())
    }

    /// Flushes, fsyncs and closes the writer, returning the final length —
    /// the sealing point of the segmented log.
    pub fn seal(mut self) -> Result<u64> {
        self.sync()?;
        Ok(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "solap-wal-{tag}-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(1), Value::from("in"), Value::Float(2.5)],
            vec![Value::Int(2), Value::from("out"), Value::Float(-0.5)],
            vec![Value::Time(1_190_000_000), Value::from(""), Value::Int(0)],
        ]
    }

    #[test]
    fn roundtrip_all_value_kinds() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.open");
        let mut w = WalWriter::create(&path, FsyncPolicy::Batch).unwrap();
        w.append_batch(&rows()).unwrap();
        w.append_batch(&[vec![Value::Int(9), Value::from("x"), Value::Int(9)]])
            .unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.tail, Tail::Clean);
        assert_eq!(replayed.rows.len(), 4);
        assert_eq!(replayed.rows[..3], rows()[..]);
        assert_eq!(replay_strict(&path).unwrap().len(), 4);
    }

    #[test]
    fn missing_file_replays_empty() {
        let dir = tmpdir("missing");
        let r = replay(&dir.join("nope.open")).unwrap();
        assert!(r.rows.is_empty());
        assert_eq!(r.tail, Tail::Clean);
    }

    #[test]
    fn every_truncation_point_is_torn_not_panic() {
        let dir = tmpdir("trunc");
        let path = dir.join("wal.open");
        let mut w = WalWriter::create(&path, FsyncPolicy::Off).unwrap();
        w.append_batch(&rows()).unwrap();
        w.flush().unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            let p = dir.join("cut.open");
            std::fs::write(&p, &full[..cut]).unwrap();
            if cut < HEADER_LEN as usize {
                // Header damage is corruption, not a torn tail.
                assert!(replay(&p).is_err(), "cut at {cut}");
                continue;
            }
            let r = replay(&p).unwrap();
            if cut == full.len() {
                assert_eq!(r.tail, Tail::Clean);
            }
            // Truncating to the reported clean length must replay cleanly.
            if let Tail::Torn { valid_len, .. } = r.tail {
                assert!(valid_len <= cut as u64);
                truncate_to(&p, valid_len).unwrap();
                let again = replay(&p).unwrap();
                assert_eq!(again.tail, Tail::Clean, "cut at {cut}");
                assert_eq!(again.rows, r.rows);
                assert!(replay_strict(&p).is_ok());
            }
        }
    }

    #[test]
    fn byte_flips_never_panic_and_strict_errors() {
        let dir = tmpdir("flip");
        let path = dir.join("wal.open");
        let mut w = WalWriter::create(&path, FsyncPolicy::Off).unwrap();
        w.append_batch(&rows()).unwrap();
        w.flush().unwrap();
        let full = std::fs::read(&path).unwrap();
        for at in 0..full.len() {
            let mut bad = full.clone();
            bad[at] ^= 0xff;
            let p = dir.join("flip.open");
            std::fs::write(&p, &bad).unwrap();
            // Lenient replay returns a prefix of the true rows (tail torn),
            // strict replay errors; neither panics.
            match replay(&p) {
                Ok(r) => {
                    assert!(r.rows.len() <= 3);
                    if r.tail != Tail::Clean {
                        let err = replay_strict(&p).unwrap_err();
                        assert_eq!(err.code(), "corrupt");
                    }
                }
                Err(e) => assert_eq!(e.code(), "corrupt"),
            }
        }
    }

    #[test]
    fn garbage_past_clean_records_is_reported_and_truncated() {
        let dir = tmpdir("garbage");
        let path = dir.join("wal.open");
        let mut w = WalWriter::create(&path, FsyncPolicy::Batch).unwrap();
        w.append_batch(&rows()).unwrap();
        let clean_len = w.bytes();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe]);
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.rows.len(), 3);
        let Tail::Torn { valid_len, .. } = r.tail else {
            panic!("tail must be torn");
        };
        assert_eq!(valid_len, clean_len);
        truncate_to(&path, valid_len).unwrap();
        assert_eq!(replay_strict(&path).unwrap().len(), 3);
    }

    #[test]
    fn fsync_policy_parses_and_defaults() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse(" BATCH "), Some(FsyncPolicy::Batch));
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("bogus"), None);
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Batch);
        assert_eq!(FsyncPolicy::Always.name(), "always");
    }

    // Failpoint-armed behaviour (wal.append / wal.fsync) is exercised in
    // tests/chaos.rs — failpoint state is process-global, so arming inside
    // parallel unit tests would race the other wal/log tests.
}
