//! Event schemas: typed columns with dimension/measure roles.

use crate::error::{Error, Result};

/// Index of an attribute (column) in a [`Schema`].
pub type AttrId = u32;

/// The storage type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// Dictionary-encoded strings.
    Str,
    /// Timestamps (seconds since the Unix epoch).
    Time,
}

impl ColumnType {
    /// Short name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
            ColumnType::Time => "time",
        }
    }
}

/// Whether a column is a dimension (groupable, possibly with a concept
/// hierarchy) or a measure (aggregatable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// A dimension attribute, e.g. `location`.
    Dimension,
    /// A measure attribute, e.g. `amount`.
    Measure,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// The attribute name (e.g. `card-id`).
    pub name: String,
    /// The storage type.
    pub ctype: ColumnType,
    /// Dimension or measure.
    pub role: Role,
}

impl ColumnDef {
    /// Shorthand for a dimension column.
    pub fn dimension(name: &str, ctype: ColumnType) -> Self {
        ColumnDef {
            name: name.to_owned(),
            ctype,
            role: Role::Dimension,
        }
    }

    /// Shorthand for a measure column.
    pub fn measure(name: &str, ctype: ColumnType) -> Self {
        ColumnDef {
            name: name.to_owned(),
            ctype,
            role: Role::Measure,
        }
    }
}

/// An ordered set of column definitions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Creates a schema from column definitions.
    ///
    /// Column names must be unique; duplicates would make name resolution in
    /// the query language ambiguous.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(Error::InvalidOperation(format!(
                    "duplicate column name `{}`",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// The column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The definition of attribute `attr`.
    pub fn column(&self, attr: AttrId) -> &ColumnDef {
        &self.columns[attr as usize]
    }

    /// Resolves an attribute name to its id.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| i as AttrId)
            .ok_or_else(|| Error::UnknownAttribute(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transit_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::dimension("time", ColumnType::Time),
            ColumnDef::dimension("card-id", ColumnType::Int),
            ColumnDef::dimension("location", ColumnType::Str),
            ColumnDef::dimension("action", ColumnType::Str),
            ColumnDef::measure("amount", ColumnType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn attr_resolution() {
        let s = transit_schema();
        assert_eq!(s.attr("location").unwrap(), 2);
        assert!(matches!(s.attr("bogus"), Err(Error::UnknownAttribute(_))));
        assert_eq!(s.column(4).role, Role::Measure);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            ColumnDef::dimension("a", ColumnType::Int),
            ColumnDef::dimension("a", ColumnType::Str),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn type_names() {
        assert_eq!(ColumnType::Time.name(), "time");
        assert_eq!(ColumnType::Str.name(), "str");
    }
}
