//! A small, dependency-free LRU cache.
//!
//! Used by the *Sequence Cache* and the *Cuboid Repository* of the prototype
//! architecture (Figure 6 of the paper), both of which the paper suggests
//! implementing "as a cache with an appropriate replacement policy such as
//! LRU".
//!
//! The implementation is a classic hash map over an intrusive doubly-linked
//! list laid out in a slab, giving O(1) get/insert/evict without `unsafe`.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// An LRU cache bounded by entry count and, optionally, by a caller-supplied
/// weight (e.g. bytes).
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    max_weight: Option<usize>,
    weight: usize,
    weigher: fn(&V) -> usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            max_weight: None,
            weight: 0,
            weigher: |_| 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Creates a cache additionally bounded by total weight, as computed by
    /// `weigher` (e.g. approximate bytes per entry).
    pub fn with_weight(capacity: usize, max_weight: usize, weigher: fn(&V) -> usize) -> Self {
        let mut c = Self::new(capacity);
        c.max_weight = Some(max_weight);
        c.weigher = weigher;
        c
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total weight of cached entries (0 unless weighted).
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Budget-driven evictions since creation (replacements and explicit
    /// removals are not counted).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, marking it most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                self.slab
                    .get(idx)
                    .and_then(|s| s.as_ref())
                    .map(|n| &n.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching recency or hit counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&idx| self.slab.get(idx))
            .and_then(|s| s.as_ref())
            .map(|n| &n.value)
    }

    /// Whether `key` is cached (no recency update).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key → value`, evicting least-recently-used entries as needed.
    /// Returns the previous value for `key`, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let new_weight = (self.weigher)(&value);
        let old = if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            let node = self.slab.get_mut(idx).and_then(|s| s.take());
            self.free.push(idx);
            self.map.remove(&key);
            if let Some(n) = &node {
                self.weight -= (self.weigher)(&n.value);
            }
            node.map(|n| n.value)
        } else {
            None
        };
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slab.push(None);
                self.slab.len() - 1
            }
        };
        if let Some(slot) = self.slab.get_mut(idx) {
            *slot = Some(Node {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
        }
        self.map.insert(key, idx);
        self.weight += new_weight;
        self.push_front(idx);
        self.evict_over_budget(idx);
        old
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        let node = self.slab.get_mut(idx).and_then(|s| s.take())?;
        self.free.push(idx);
        self.weight -= (self.weigher)(&node.value);
        Some(node.value)
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.weight = 0;
    }

    /// Removes all entries for which `pred` returns true (used for cache
    /// invalidation on incremental update).
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        let doomed: Vec<K> = self
            .map
            .iter()
            .filter(|(_, &idx)| {
                self.slab
                    .get(idx)
                    .and_then(|s| s.as_ref())
                    .is_some_and(|n| !keep(&n.key, &n.value))
            })
            .map(|(k, _)| k.clone())
            .collect();
        for k in doomed {
            self.remove(&k);
        }
    }

    fn evict_over_budget(&mut self, just_inserted: usize) {
        while self.map.len() > self.capacity
            || self
                .max_weight
                .is_some_and(|mw| self.weight > mw && self.map.len() > 1)
        {
            let victim = self.tail;
            if victim == NIL || victim == just_inserted && self.map.len() == 1 {
                break;
            }
            self.unlink(victim);
            let Some(node) = self.slab.get_mut(victim).and_then(|s| s.take()) else {
                break;
            };
            self.free.push(victim);
            self.map.remove(&node.key);
            self.weight -= (self.weigher)(&node.value);
            self.evictions += 1;
        }
    }

    fn push_front(&mut self, idx: usize) {
        let head = self.head;
        if let Some(node) = self.slab.get_mut(idx).and_then(|s| s.as_mut()) {
            node.prev = NIL;
            node.next = head;
        }
        if self.head != NIL {
            if let Some(h) = self.slab.get_mut(self.head).and_then(|s| s.as_mut()) {
                h.prev = idx;
            }
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let Some((prev, next)) = self
            .slab
            .get(idx)
            .and_then(|s| s.as_ref())
            .map(|n| (n.prev, n.next))
        else {
            return;
        };
        if prev != NIL {
            if let Some(p) = self.slab.get_mut(prev).and_then(|s| s.as_mut()) {
                p.next = next;
            }
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            if let Some(n) = self.slab.get_mut(next).and_then(|s| s.as_mut()) {
                n.prev = prev;
            }
        } else if self.tail == idx {
            self.tail = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // a becomes MRU
        c.insert("c", 3); // evicts b
        assert!(c.contains(&"a"));
        assert!(!c.contains(&"b"));
        assert!(c.contains(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut c = LruCache::new(2);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.insert("a", 7), Some(1));
        assert_eq!(c.get(&"a"), Some(&7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_and_clear() {
        let mut c = LruCache::new(4);
        c.insert(1, "x");
        c.insert(2, "y");
        assert_eq!(c.remove(&1), Some("x"));
        assert_eq!(c.remove(&1), None);
        c.clear();
        assert!(c.is_empty());
        c.insert(3, "z"); // reusable after clear
        assert_eq!(c.get(&3), Some(&"z"));
    }

    #[test]
    fn weight_budget_evicts() {
        let mut c: LruCache<&str, Vec<u8>> = LruCache::with_weight(100, 10, |v| v.len());
        c.insert("a", vec![0; 6]);
        c.insert("b", vec![0; 6]); // 12 > 10 → evict a
        assert!(!c.contains(&"a"));
        assert!(c.contains(&"b"));
        assert_eq!(c.weight(), 6);
    }

    #[test]
    fn single_oversized_entry_is_kept() {
        let mut c: LruCache<&str, Vec<u8>> = LruCache::with_weight(100, 10, |v| v.len());
        c.insert("big", vec![0; 50]);
        assert!(c.contains(&"big"));
    }

    #[test]
    fn hit_miss_stats() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.get(&"a");
        c.get(&"zz");
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.peek(&"a"), Some(&1));
        assert_eq!(c.stats(), (1, 1)); // peek does not count
    }

    #[test]
    fn eviction_counter_counts_only_budget_evictions() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 2); // replacement: not an eviction
        c.insert("b", 3);
        assert_eq!(c.evictions(), 0);
        c.insert("c", 4); // evicts "a"
        assert_eq!(c.evictions(), 1);
        c.remove(&"b"); // explicit removal: not an eviction
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn retain_invalidates() {
        let mut c = LruCache::new(8);
        for i in 0..6 {
            c.insert(i, i * 10);
        }
        c.retain(|k, _| k % 2 == 0);
        assert_eq!(c.len(), 3);
        assert!(c.contains(&4) && !c.contains(&3));
        // Cache still functions after retain.
        c.insert(7, 70);
        assert_eq!(c.get(&7), Some(&70));
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let mut c = LruCache::new(16);
        for i in 0..1000u32 {
            c.insert(i % 40, i);
            assert!(c.len() <= 16);
        }
        // The 16 most recently inserted distinct keys must be present.
        let mut expected: Vec<u32> = Vec::new();
        for i in (0..1000u32).rev() {
            let k = i % 40;
            if !expected.contains(&k) {
                expected.push(k);
            }
            if expected.len() == 16 {
                break;
            }
        }
        for k in expected {
            assert!(c.contains(&k), "missing key {k}");
        }
    }
}
