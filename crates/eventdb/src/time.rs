//! Civil-time conversions for functional time hierarchies.
//!
//! The paper's running example attaches the concept hierarchy
//! `time → day → week` to the `time` attribute. Rather than materialising a
//! dictionary for every timestamp, time hierarchies are *functional*: the
//! value of a timestamp at the `day` level is the day ordinal, at the `week`
//! level the ISO-week ordinal, and so on. This module implements the
//! underlying civil-calendar arithmetic (Howard Hinnant's `days_from_civil`
//! algorithm) without external crates.

/// Seconds per day.
pub const SECS_PER_DAY: i64 = 86_400;

/// Converts a civil date to the number of days since 1970-01-01.
///
/// Valid for the proleptic Gregorian calendar; `m` is 1-based.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Converts days since 1970-01-01 back to a civil `(year, month, day)`.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Builds an epoch-seconds timestamp from civil components.
pub fn timestamp(y: i64, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> i64 {
    days_from_civil(y, mo, d) * SECS_PER_DAY + (h as i64) * 3600 + (mi as i64) * 60 + s as i64
}

/// Parses `YYYY-MM-DD`, `YYYY-MM-DDTHH:MM` or `YYYY-MM-DDTHH:MM:SS` into
/// epoch seconds. A space is accepted in place of the `T` separator. `24:00`
/// is accepted as the start of the next day (Figure 3 of the paper uses
/// `2007-12-31T24:00` as an exclusive upper bound).
pub fn parse_timestamp(s: &str) -> Option<i64> {
    let s = s.trim();
    let (date, rest) = if s.len() > 10 {
        let (d, r) = s.split_at(10);
        let sep = r.as_bytes()[0];
        if sep != b'T' && sep != b' ' {
            return None;
        }
        (d, Some(&r[1..]))
    } else {
        (s, None)
    };
    let mut dp = date.split('-');
    let y: i64 = dp.next()?.parse().ok()?;
    let mo: u32 = dp.next()?.parse().ok()?;
    let d: u32 = dp.next()?.parse().ok()?;
    if dp.next().is_some() || !(1..=12).contains(&mo) || !(1..=31).contains(&d) {
        return None;
    }
    let (h, mi, sec) = match rest {
        None => (0, 0, 0),
        Some(t) => {
            let mut tp = t.split(':');
            let h: u32 = tp.next()?.parse().ok()?;
            let mi: u32 = tp.next()?.parse().ok()?;
            let sec: u32 = match tp.next() {
                Some(x) => x.parse().ok()?,
                None => 0,
            };
            if tp.next().is_some()
                || h > 24
                || mi > 59
                || sec > 59
                || (h == 24 && (mi > 0 || sec > 0))
            {
                return None;
            }
            (h, mi, sec)
        }
    };
    Some(timestamp(y, mo, d, h, mi, sec))
}

/// Formats epoch seconds as `YYYY-MM-DDTHH:MM:SS`.
pub fn format_timestamp(t: i64) -> String {
    let days = t.div_euclid(SECS_PER_DAY);
    let sod = t.rem_euclid(SECS_PER_DAY);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
        y,
        m,
        d,
        sod / 3600,
        (sod % 3600) / 60,
        sod % 60
    )
}

/// Day ordinal (days since epoch) of a timestamp.
pub fn day_of(t: i64) -> i64 {
    t.div_euclid(SECS_PER_DAY)
}

/// Hour ordinal (hours since epoch) of a timestamp.
pub fn hour_of(t: i64) -> i64 {
    t.div_euclid(3600)
}

/// ISO-style week ordinal of a timestamp (weeks start on Monday;
/// 1970-01-01 was a Thursday, so day 4 = 1970-01-05 starts week 1).
pub fn week_of(t: i64) -> i64 {
    (day_of(t) + 3).div_euclid(7)
}

/// Month ordinal (`year * 12 + month - 1`) of a timestamp.
pub fn month_of(t: i64) -> i64 {
    let (y, m, _) = civil_from_days(day_of(t));
    y * 12 + (m as i64 - 1)
}

/// Quarter ordinal (`year * 4 + quarter - 1`) of a timestamp.
pub fn quarter_of(t: i64) -> i64 {
    let (y, m, _) = civil_from_days(day_of(t));
    y * 4 + ((m as i64 - 1) / 3)
}

/// Renders a day ordinal as `YYYY-MM-DD`.
pub fn format_day(day: i64) -> String {
    let (y, m, d) = civil_from_days(day);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Renders a week ordinal as the date of its Monday, `W:YYYY-MM-DD`.
pub fn format_week(week: i64) -> String {
    format!("W:{}", format_day(week * 7 - 3))
}

/// Renders a month ordinal as `YYYY-MM`.
pub fn format_month(month: i64) -> String {
    format!(
        "{:04}-{:02}",
        month.div_euclid(12),
        month.rem_euclid(12) + 1
    )
}

/// Renders a quarter ordinal as `YYYY-Qn`.
pub fn format_quarter(q: i64) -> String {
    format!("{:04}-Q{}", q.div_euclid(4), q.rem_euclid(4) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_across_epochs() {
        for z in [-719_468, -1, 0, 1, 10_957, 13_787, 2_932_896] {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z, "roundtrip failed for {z}");
        }
    }

    #[test]
    fn known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(civil_from_days(days_from_civil(2007, 10, 1)), (2007, 10, 1));
    }

    #[test]
    fn parse_and_format() {
        let t = parse_timestamp("2007-10-01T00:01").unwrap();
        assert_eq!(format_timestamp(t), "2007-10-01T00:01:00");
        assert_eq!(parse_timestamp("2007-10-01"), Some(t - 60));
        assert_eq!(
            parse_timestamp("2007-10-01 12:30:15"),
            Some(timestamp(2007, 10, 1, 12, 30, 15))
        );
        assert!(parse_timestamp("2007-13-01").is_none());
        assert!(parse_timestamp("garbage").is_none());
        assert!(parse_timestamp("2007-10-01X00:01").is_none());
    }

    #[test]
    fn hour_24_is_next_day() {
        let a = parse_timestamp("2007-12-31T24:00").unwrap();
        let b = parse_timestamp("2008-01-01T00:00").unwrap();
        assert_eq!(a, b);
        assert!(parse_timestamp("2007-12-31T24:01").is_none());
    }

    #[test]
    fn buckets_are_monotone() {
        let t1 = timestamp(2007, 10, 1, 23, 59, 59);
        let t2 = timestamp(2007, 10, 2, 0, 0, 0);
        assert_eq!(day_of(t1) + 1, day_of(t2));
        assert_eq!(month_of(t1), month_of(t2));
        assert_eq!(quarter_of(timestamp(2007, 10, 1, 0, 0, 0)), 2007 * 4 + 3);
        assert_eq!(format_quarter(2007 * 4 + 3), "2007-Q4");
    }

    #[test]
    fn weeks_start_on_monday() {
        // 2007-10-01 was a Monday.
        let mon = timestamp(2007, 10, 1, 0, 0, 0);
        let sun = timestamp(2007, 10, 7, 23, 0, 0);
        let next_mon = timestamp(2007, 10, 8, 0, 0, 0);
        assert_eq!(week_of(mon), week_of(sun));
        assert_eq!(week_of(mon) + 1, week_of(next_mon));
        assert_eq!(format_week(week_of(mon)), "W:2007-10-01");
    }

    #[test]
    fn negative_timestamps() {
        let t = timestamp(1969, 12, 31, 23, 0, 0);
        assert!(t < 0);
        assert_eq!(day_of(t), -1);
        assert_eq!(format_timestamp(t), "1969-12-31T23:00:00");
    }
}
