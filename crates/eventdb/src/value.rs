//! Scalar values and the identifier types used throughout the system.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::time;

/// Identifier of an event (a row in the event database).
pub type RowId = u32;

/// Identifier of a data sequence (the `sid` attribute of Figure 8).
pub type Sid = u32;

/// The value of a dimension attribute *at a specific abstraction level*,
/// encoded as a machine word.
///
/// * string dimensions: the dictionary id of the value at that level;
/// * integer dimensions at the raw level: the integer reinterpreted as bits;
/// * time dimensions: the bucket ordinal of the granularity (e.g. the day
///   number for the `day` level).
///
/// Level values are only meaningful together with an `(attribute, level)`
/// pair; [`crate::store::EventDb::render_level`] turns them back into
/// human-readable strings.
pub type LevelValue = u64;

/// A scalar value of an event attribute.
///
/// Timestamps are carried as seconds since the Unix epoch ([`Value::Time`]);
/// [`crate::time`] provides civil-time parsing and formatting so that query
/// literals like `2007-10-01T00:00` round-trip.
#[derive(Debug, Clone)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float (measures such as `amount`).
    Float(f64),
    /// A string (dictionary-encoded inside the store).
    Str(String),
    /// A timestamp in seconds since the Unix epoch.
    Time(i64),
}

impl Value {
    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Time(_) => "time",
        }
    }

    /// Returns the contained integer, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained float, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the contained string slice, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained timestamp (seconds since epoch), parsing
    /// string literals of the form `YYYY-MM-DDTHH:MM[:SS]` if necessary.
    pub fn as_time(&self) -> Option<i64> {
        match self {
            Value::Time(t) => Some(*t),
            Value::Int(t) => Some(*t),
            Value::Str(s) => time::parse_timestamp(s),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Time(a), Value::Time(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Time(t) => {
                3u8.hash(state);
                t.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Time(t) => write!(f, "{}", time::format_timestamp(*t)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn eq_is_typed() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Time(3));
        assert_ne!(Value::Int(3), Value::Float(3.0));
        assert_eq!(Value::Str("a".into()), Value::from("a"));
    }

    #[test]
    fn float_eq_by_bits() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(1.5)), hash_of(&Value::Float(1.5)));
    }

    #[test]
    fn as_time_parses_strings() {
        let v = Value::from("2007-10-01T00:01");
        let t = v.as_time().unwrap();
        assert_eq!(time::format_timestamp(t), "2007-10-01T00:01:00");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(2i64).as_int(), Some(2));
        assert_eq!(Value::from(2i64).as_float(), Some(2.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Time(7).as_time(), Some(7));
        assert_eq!(Value::Float(1.0).as_time(), None);
    }

    #[test]
    fn display_roundtrips_simple_values() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Str("Pentagon".into()).to_string(), "Pentagon");
    }
}
