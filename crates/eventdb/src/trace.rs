//! Structured tracing: newline-delimited JSON events on stderr.
//!
//! Enabled by setting `SOLAP_TRACE=json` (or `1`/`on`) in the environment,
//! or programmatically with [`set_enabled`]. Like [`crate::failpoint`] and
//! [`crate::metrics`], the disabled fast path is a single relaxed atomic
//! load — no formatting, no allocation, no I/O.
//!
//! Events are one JSON object per line, written atomically under the
//! stderr lock so concurrent queries never interleave mid-line:
//!
//! ```text
//! {"event":"query_end","strategy":"II","cells":412,"ok":true}
//! ```
//!
//! The engine emits `query_start` / `query_end` events; the formatting
//! helper [`format_event`] is public so tests can pin the exact wire
//! format without capturing stderr.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Whether structured tracing is enabled. Seeded once from `SOLAP_TRACE`
/// (`json`, `1` or `on` enable it; default off), overridable with
/// [`set_enabled`].
pub fn enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Turns structured tracing on or off at runtime.
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = std::env::var("SOLAP_TRACE")
            .is_ok_and(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "json" | "1" | "on"));
        AtomicBool::new(on)
    })
}

/// A field value in a trace event.
#[derive(Debug, Clone)]
pub enum TraceValue {
    /// An unsigned integer, rendered bare.
    U64(u64),
    /// A string, rendered JSON-escaped and quoted.
    Str(String),
    /// A boolean, rendered bare.
    Bool(bool),
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> Self {
        TraceValue::U64(v)
    }
}

impl From<bool> for TraceValue {
    fn from(v: bool) -> Self {
        TraceValue::Bool(v)
    }
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> Self {
        TraceValue::Str(v.to_string())
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> Self {
        TraceValue::Str(v)
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Formats one trace event as a single-line JSON object (without the
/// trailing newline). The `event` name always comes first.
pub fn format_event(event: &str, fields: &[(&str, TraceValue)]) -> String {
    let mut out = String::with_capacity(48 + fields.len() * 24);
    out.push_str("{\"event\":\"");
    push_escaped(&mut out, event);
    out.push('"');
    for (key, value) in fields {
        out.push_str(",\"");
        push_escaped(&mut out, key);
        out.push_str("\":");
        match value {
            TraceValue::U64(v) => out.push_str(&v.to_string()),
            TraceValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            TraceValue::Str(s) => {
                out.push('"');
                push_escaped(&mut out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
    out
}

/// Emits one trace event to stderr if tracing is enabled. The line is
/// written in a single locked write so parallel queries never interleave.
pub fn emit(event: &str, fields: &[(&str, TraceValue)]) {
    if !enabled() {
        return;
    }
    let mut line = format_event(event, fields);
    line.push('\n');
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(line.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_minimal_event() {
        assert_eq!(
            format_event("query_start", &[]),
            "{\"event\":\"query_start\"}"
        );
    }

    #[test]
    fn formats_all_value_kinds_in_order() {
        let line = format_event(
            "query_end",
            &[
                ("strategy", TraceValue::from("II")),
                ("cells", TraceValue::from(412u64)),
                ("ok", TraceValue::from(true)),
            ],
        );
        assert_eq!(
            line,
            "{\"event\":\"query_end\",\"strategy\":\"II\",\"cells\":412,\"ok\":true}"
        );
    }

    #[test]
    fn escapes_json_special_characters() {
        let line = format_event(
            "err",
            &[("msg", TraceValue::from("a \"quoted\"\\ path\nline2\u{1}"))],
        );
        assert_eq!(
            line,
            "{\"event\":\"err\",\"msg\":\"a \\\"quoted\\\"\\\\ path\\nline2\\u0001\"}"
        );
    }

    #[test]
    fn emit_is_silent_when_disabled() {
        // emit() must not panic regardless of the flag state; the disabled
        // path is the default in the test environment unless SOLAP_TRACE is
        // exported, and the chaos/trace CI job exercises the enabled path.
        emit("noop", &[("k", TraceValue::from(1u64))]);
    }
}
