//! The sequence query engine: steps 1–4 of S-cuboid formation (Figure 4).
//!
//! 1. **Selection** — the `WHERE` predicate picks events of interest.
//! 2. **Clustering** — `CLUSTER BY` attributes (each at an abstraction
//!    level) partition events into clusters; e.g. events sharing the same
//!    `card-id` (at `individual`) and the same `time` (at `day`).
//! 3. **Sequence formation** — `SEQUENCE BY` sorts each cluster, turning it
//!    into exactly one data sequence.
//! 4. **Sequence grouping** — `SEQUENCE GROUP BY` groups sequences whose
//!    events share the same *global dimension* values (e.g. fare-group and
//!    day); if absent, all sequences form a single group.
//!
//! The paper offloads these steps to "an existing sequence database query
//! engine" and caches the result in the Sequence Cache; this module is that
//! engine.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};
use crate::govern::QueryGovernor;
use crate::metrics::{self, Counter, Stage};
use crate::pred::Pred;
use crate::schema::AttrId;
use crate::store::EventDb;
use crate::value::{LevelValue, RowId, Sid};

/// An attribute pinned at an abstraction level (`card-id AT individual`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrLevel {
    /// The attribute.
    pub attr: AttrId,
    /// The abstraction level (0 = base).
    pub level: usize,
}

impl AttrLevel {
    /// Shorthand constructor.
    pub fn new(attr: AttrId, level: usize) -> Self {
        AttrLevel { attr, level }
    }
}

/// A `SEQUENCE BY` sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SortKey {
    /// The attribute ordered by.
    pub attr: AttrId,
    /// Ascending (`true`) or descending.
    pub ascending: bool,
}

/// The first four clauses of an S-cuboid specification — everything needed
/// to build sequence groups (and the key of the Sequence Cache).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeqQuerySpec {
    /// Step 1: event selection.
    pub filter: Pred,
    /// Step 2: clustering attributes with abstraction levels.
    pub cluster_by: Vec<AttrLevel>,
    /// Step 3: sort keys forming the sequence order.
    pub sequence_by: Vec<SortKey>,
    /// Step 4: global dimensions. Empty = one big group.
    pub group_by: Vec<AttrLevel>,
}

impl SeqQuerySpec {
    /// A stable hash of the spec, combined with the database version to key
    /// the Sequence Cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// One data sequence: an ordered list of event rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    /// Unique sequence id, dense in `0..total_sequences` and stable for a
    /// given spec and database version.
    pub sid: Sid,
    /// The cluster key that formed this sequence.
    pub cluster_key: Vec<LevelValue>,
    /// Event rows in `SEQUENCE BY` order.
    pub rows: Vec<RowId>,
}

impl Sequence {
    /// Sequence length in events.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the sequence has no events (never produced by the engine).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A group of sequences sharing global-dimension values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceGroup {
    /// Values of the global dimensions (aligned with
    /// [`SequenceGroups::global_dims`]).
    pub key: Vec<LevelValue>,
    /// The sequences of the group, in deterministic (cluster-key) order.
    pub sequences: Vec<Sequence>,
}

/// The output of steps 1–4: all sequence groups, with sid lookup.
#[derive(Debug, Clone)]
pub struct SequenceGroups {
    /// The global dimensions (the `q` dimensions of the paper's
    /// q-dimensional group array).
    pub global_dims: Vec<AttrLevel>,
    /// The groups, sorted by key for determinism.
    pub groups: Vec<SequenceGroup>,
    /// Total number of sequences across groups.
    pub total_sequences: usize,
    /// `sid_offsets[g]` = first sid of group `g` (sids are assigned
    /// contiguously per group).
    sid_offsets: Vec<Sid>,
}

impl SequenceGroups {
    /// Assembles a `SequenceGroups` from parts. Callers (e.g. incremental
    /// update) are responsible for the invariant that sids are contiguous
    /// per group in traversal order, with `sid_offsets[g]` the first sid of
    /// group `g`.
    pub fn from_parts(
        global_dims: Vec<AttrLevel>,
        groups: Vec<SequenceGroup>,
        total_sequences: usize,
        sid_offsets: Vec<Sid>,
    ) -> Self {
        debug_assert_eq!(groups.len(), sid_offsets.len());
        SequenceGroups {
            global_dims,
            groups,
            total_sequences,
            sid_offsets,
        }
    }

    /// Locates a sequence by sid. A sid outside the assigned range is a
    /// typed [`Error::Internal`] (sids come from indices built over these
    /// same groups, so a miss means the caller mixed groups and indices).
    pub fn sequence(&self, sid: Sid) -> Result<&Sequence> {
        let g = self.group_of(sid)?;
        let (group, &first) = match (self.groups.get(g), self.sid_offsets.get(g)) {
            (Some(group), Some(first)) => (group, first),
            _ => {
                return Err(Error::Internal(format!(
                    "sid {sid}: group table out of sync"
                )))
            }
        };
        group
            .sequences
            .get((sid - first) as usize)
            .ok_or_else(|| Error::Internal(format!("unknown sid {sid}")))
    }

    /// The group a sid belongs to, erring on sids below the first group.
    pub fn group_of(&self, sid: Sid) -> Result<usize> {
        match self.sid_offsets.binary_search(&sid) {
            Ok(g) => Ok(g),
            Err(0) => Err(Error::Internal(format!(
                "unknown sid {sid} (below the first group)"
            ))),
            Err(ins) => Ok(ins - 1),
        }
    }

    /// Iterates all sequences across groups.
    pub fn iter_sequences(&self) -> impl Iterator<Item = &Sequence> {
        self.groups.iter().flat_map(|g| g.sequences.iter())
    }

    /// Approximate heap bytes (for the Sequence Cache weight budget).
    pub fn heap_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|g| {
                g.key.len() * 8
                    + g.sequences
                        .iter()
                        .map(|s| s.rows.len() * 4 + s.cluster_key.len() * 8 + 48)
                        .sum::<usize>()
            })
            .sum()
    }
}

/// Runs steps 1–4 against the database.
///
/// The result is deterministic: clusters and groups are ordered by their
/// keys and sids are assigned in that order, so repeated runs (and the
/// CB/II equivalence property tests) see identical sids.
///
/// Note on step 4: per the paper, sequences are grouped by dimension values
/// their *events* share; this engine reads the group key off each sequence's
/// first event, which is exact whenever the `SEQUENCE GROUP BY` attributes
/// are constant within a sequence — true by construction when they are
/// coarsenings of `CLUSTER BY` attributes, as in all of the paper's queries.
pub fn build_sequence_groups(db: &EventDb, spec: &SeqQuerySpec) -> Result<SequenceGroups> {
    build_sequence_groups_governed(db, spec, &QueryGovernor::unbounded())
}

/// [`build_sequence_groups`] under a [`QueryGovernor`]: the selection scan
/// ticks once per event row and each new cluster and group is charged
/// against the cell budget, so an over-limit query aborts within one check
/// interval.
pub fn build_sequence_groups_governed(
    db: &EventDb,
    spec: &SeqQuerySpec,
    gov: &QueryGovernor,
) -> Result<SequenceGroups> {
    // Step 1 + 2: select and cluster in one pass. Counted into locals and
    // flushed once so the per-row cost of profiling stays zero.
    let rec = gov.recorder();
    let mut selected: u64 = 0;
    {
        let _span = metrics::span(rec, Stage::SelectCluster);
        let mut clusters_inner: BTreeMap<Vec<LevelValue>, Vec<RowId>> = BTreeMap::new();
        let mut ckey = Vec::with_capacity(spec.cluster_by.len());
        let scan = (|| -> Result<()> {
            for row in 0..db.len() as RowId {
                gov.tick()?;
                if !spec.filter.eval(db, row)? {
                    continue;
                }
                selected += 1;
                ckey.clear();
                for al in &spec.cluster_by {
                    ckey.push(db.value_at_level(row, al.attr, al.level)?);
                }
                match clusters_inner.entry(ckey.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        gov.charge_cells(1)?;
                        e.insert(vec![row]);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().push(row),
                }
            }
            Ok(())
        })();
        if let Some(rec) = rec {
            rec.add(Counter::EventsScanned, db.len() as u64);
            rec.add(Counter::EventsSelected, selected);
            rec.add(Counter::SequencesFormed, clusters_inner.len() as u64);
        }
        scan.map(|()| clusters_inner)
    }
    .and_then(|clusters| build_groups_from_clusters(db, spec, gov, clusters))
}

/// Steps 3–4: sorts each cluster into a sequence and groups sequences by
/// global-dimension values.
fn build_groups_from_clusters(
    db: &EventDb,
    spec: &SeqQuerySpec,
    gov: &QueryGovernor,
    clusters: BTreeMap<Vec<LevelValue>, Vec<RowId>>,
) -> Result<SequenceGroups> {
    let rec = gov.recorder();
    let _span = metrics::span(rec, Stage::FormGroup);

    // Step 3: sort each cluster into a sequence.
    let sort_keys: Vec<(AttrId, bool)> = spec
        .sequence_by
        .iter()
        .map(|k| (k.attr, k.ascending))
        .collect();
    // Step 4: group sequences by global-dimension values.
    type ClusterRows = (Vec<LevelValue>, Vec<RowId>);
    let mut grouped: BTreeMap<Vec<LevelValue>, Vec<ClusterRows>> = BTreeMap::new();
    for (ckey, mut rows) in clusters {
        gov.check_now()?;
        if !sort_keys.is_empty() {
            rows.sort_unstable_by(|&a, &b| db.cmp_rows(a, b, &sort_keys));
        }
        let Some(&first) = rows.first() else {
            return Err(Error::Internal("empty cluster in sequence grouping".into()));
        };
        let mut gkey = Vec::with_capacity(spec.group_by.len());
        for al in &spec.group_by {
            gkey.push(db.value_at_level(first, al.attr, al.level)?);
        }
        grouped.entry(gkey).or_default().push((ckey, rows));
    }

    let mut groups = Vec::with_capacity(grouped.len());
    let mut sid_offsets = Vec::with_capacity(grouped.len());
    let mut next_sid: Sid = 0;
    for (gkey, seqs) in grouped {
        gov.check_now()?;
        sid_offsets.push(next_sid);
        let sequences: Vec<Sequence> = seqs
            .into_iter()
            .map(|(cluster_key, rows)| {
                let s = Sequence {
                    sid: next_sid,
                    cluster_key,
                    rows,
                };
                next_sid += 1;
                s
            })
            .collect();
        groups.push(SequenceGroup {
            key: gkey,
            sequences,
        });
    }
    if let Some(rec) = rec {
        rec.add(Counter::GroupsFormed, groups.len() as u64);
    }

    Ok(SequenceGroups {
        global_dims: spec.group_by.clone(),
        groups,
        total_sequences: next_sid as usize,
        sid_offsets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::TimeHierarchy;
    use crate::pred::CmpOp;
    use crate::schema::ColumnType;
    use crate::store::EventDbBuilder;
    use crate::time::timestamp;
    use crate::value::Value;

    /// A small transit database: two passengers over two days.
    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("time", ColumnType::Time)
            .dimension("card-id", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .measure("amount", ColumnType::Float)
            .build()
            .unwrap();
        db.set_time_hierarchy(0, TimeHierarchy::time_day_week())
            .unwrap();
        // Deliberately out of time order to exercise SEQUENCE BY.
        let rows = [
            (timestamp(2007, 10, 1, 9, 0, 0), 688, "Pentagon", "out"),
            (timestamp(2007, 10, 1, 8, 0, 0), 688, "Glenmont", "in"),
            (timestamp(2007, 10, 1, 8, 30, 0), 23456, "Pentagon", "in"),
            (timestamp(2007, 10, 1, 9, 30, 0), 23456, "Wheaton", "out"),
            (timestamp(2007, 10, 2, 8, 0, 0), 688, "Wheaton", "in"),
            (timestamp(2007, 10, 2, 9, 0, 0), 688, "Pentagon", "out"),
        ];
        for (t, c, l, a) in rows {
            db.push_row(&[
                Value::Time(t),
                Value::Int(c),
                Value::from(l),
                Value::from(a),
                Value::Float(0.0),
            ])
            .unwrap();
        }
        db.attach_int_level(1, "fare-group", |id| {
            if id == 688 {
                "regular".into()
            } else {
                "student".into()
            }
        })
        .unwrap();
        db
    }

    fn spec() -> SeqQuerySpec {
        SeqQuerySpec {
            filter: Pred::True,
            cluster_by: vec![AttrLevel::new(1, 0), AttrLevel::new(0, 1)], // card-id AT individual, time AT day
            sequence_by: vec![SortKey {
                attr: 0,
                ascending: true,
            }],
            group_by: vec![AttrLevel::new(0, 1)], // time AT day
        }
    }

    #[test]
    fn clusters_by_card_and_day() {
        let db = db();
        let sg = build_sequence_groups(&db, &spec()).unwrap();
        // Day 1: card 688 and card 23456; day 2: card 688 → 3 sequences.
        assert_eq!(sg.total_sequences, 3);
        assert_eq!(sg.groups.len(), 2); // grouped by day
        assert_eq!(sg.groups[0].sequences.len(), 2);
        assert_eq!(sg.groups[1].sequences.len(), 1);
    }

    #[test]
    fn sequences_are_time_ordered() {
        let db = db();
        let sg = build_sequence_groups(&db, &spec()).unwrap();
        let s688_day1 = sg
            .iter_sequences()
            .find(|s| s.cluster_key[0] == 688)
            .unwrap();
        // Events were inserted out of order; the sequence must be sorted.
        assert_eq!(s688_day1.rows, vec![1, 0]); // Glenmont(8:00) then Pentagon(9:00)
    }

    #[test]
    fn descending_order() {
        let db = db();
        let mut sp = spec();
        sp.sequence_by[0].ascending = false;
        let sg = build_sequence_groups(&db, &sp).unwrap();
        let s = sg
            .iter_sequences()
            .find(|s| s.cluster_key[0] == 688)
            .unwrap();
        assert_eq!(s.rows, vec![0, 1]);
    }

    #[test]
    fn where_clause_filters() {
        let db = db();
        let mut sp = spec();
        sp.filter = Pred::cmp(0, CmpOp::Ge, Value::from("2007-10-02T00:00"));
        let sg = build_sequence_groups(&db, &sp).unwrap();
        assert_eq!(sg.total_sequences, 1);
        assert_eq!(sg.groups[0].sequences[0].rows, vec![4, 5]);
    }

    #[test]
    fn empty_group_by_forms_single_group() {
        let db = db();
        let mut sp = spec();
        sp.group_by.clear();
        let sg = build_sequence_groups(&db, &sp).unwrap();
        assert_eq!(sg.groups.len(), 1);
        assert!(sg.groups[0].key.is_empty());
        assert_eq!(sg.total_sequences, 3);
    }

    #[test]
    fn group_by_fare_group() {
        let db = db();
        let mut sp = spec();
        sp.group_by = vec![AttrLevel::new(1, 1)];
        let sg = build_sequence_groups(&db, &sp).unwrap();
        assert_eq!(sg.groups.len(), 2); // regular vs student
        let sizes: Vec<usize> = sg.groups.iter().map(|g| g.sequences.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]); // 688 has 2 sequences, 23456 has 1
    }

    #[test]
    fn sid_lookup_is_consistent() {
        let db = db();
        let sg = build_sequence_groups(&db, &spec()).unwrap();
        for s in sg.iter_sequences() {
            assert_eq!(sg.sequence(s.sid).unwrap().sid, s.sid);
        }
        assert_eq!(sg.group_of(0).unwrap(), 0);
        assert_eq!(sg.group_of(2).unwrap(), 1);
    }

    /// Regression: an out-of-range sid used to index past the group arrays
    /// and panic; it is a typed internal error now.
    #[test]
    fn out_of_range_sid_is_a_typed_error() {
        let db = db();
        let sg = build_sequence_groups(&db, &spec()).unwrap();
        assert!(matches!(sg.sequence(9_999), Err(Error::Internal(_))));
        // A sid below the first group (possible with `from_parts`).
        let shifted = SequenceGroups::from_parts(
            sg.global_dims.clone(),
            sg.groups.clone(),
            sg.total_sequences,
            sg.sid_offsets.iter().map(|&o| o + 10).collect(),
        );
        assert!(matches!(shifted.sequence(0), Err(Error::Internal(_))));
        assert!(matches!(shifted.group_of(3), Err(Error::Internal(_))));
    }

    #[test]
    fn determinism_across_runs() {
        let db = db();
        let a = build_sequence_groups(&db, &spec()).unwrap();
        let b = build_sequence_groups(&db, &spec()).unwrap();
        let flat_a: Vec<_> = a.iter_sequences().cloned().collect();
        let flat_b: Vec<_> = b.iter_sequences().cloned().collect();
        assert_eq!(flat_a, flat_b);
    }

    #[test]
    fn fingerprint_changes_with_spec() {
        let a = spec();
        let mut b = spec();
        b.group_by.clear();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), spec().fingerprint());
    }

    #[test]
    fn heap_bytes_positive() {
        let db = db();
        let sg = build_sequence_groups(&db, &spec()).unwrap();
        assert!(sg.heap_bytes() > 0);
    }
}
