//! # solap-eventdb
//!
//! The event-database substrate of the S-OLAP system ("OLAP on Sequence
//! Data", SIGMOD 2008, §3.1 and §4.1).
//!
//! An S-OLAP system starts from an *event database*: a fact table of events,
//! each with dimension attributes (optionally organised in concept
//! hierarchies) and measure attributes. This crate provides:
//!
//! * [`Value`] / [`schema::Schema`] — the typed data model (integers,
//!   floats, strings, timestamps).
//! * [`store::EventDb`] — a dictionary-encoded, columnar, in-memory event
//!   store with an append API.
//! * [`hierarchy`] — concept hierarchies: explicit dictionary hierarchies
//!   (e.g. `station → district`), integer-keyed hierarchies (e.g.
//!   `individual → fare-group` over card ids) and functional time
//!   hierarchies (`time → hour → day → week → month → quarter`).
//! * [`pred`] — event-selection predicates (the `WHERE` clause).
//! * [`seqquery`] — the sequence query engine implementing steps 1–4 of
//!   S-cuboid formation (Figure 4 of the paper): event selection,
//!   clustering, sequence formation and sequence grouping.
//! * [`seqcache`] — the *Sequence Cache* of the prototype architecture
//!   (Figure 6), an LRU cache of constructed sequence groups.
//! * [`persist`] — warehouse persistence: save/load the whole event
//!   database (columns, dictionaries, hierarchies) in a compact binary
//!   format.
//! * [`govern`] — per-query resource governance: deadlines, cell budgets
//!   and cooperative cancellation, checked at bounded intervals in every
//!   construction hot loop.
//! * [`failpoint`] — a zero-cost-when-disabled fault-injection facility
//!   (`SOLAP_FAILPOINTS`) used by the chaos test suite.
//! * [`metrics`] — query-level observability: per-stage counters and span
//!   timers aggregated into per-query [`QueryProfile`]s and process-wide
//!   [`EngineMetrics`] (`SOLAP_PROFILE`).
//! * [`trace`] — structured JSON event tracing on stderr (`SOLAP_TRACE`).
//!
//! The paper offloads steps 1–4 to "an existing sequence database query
//! engine"; no such engine exists in the Rust ecosystem, so this crate *is*
//! that engine, built from scratch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dict;
pub mod error;
pub mod failpoint;
pub mod govern;
pub mod hierarchy;
pub mod log;
pub mod lru;
pub mod metrics;
pub mod persist;
pub mod pred;
pub mod schema;
pub mod seqcache;
pub mod seqquery;
pub mod store;
pub mod time;
pub mod trace;
pub mod value;
pub mod wal;

pub use dict::Dictionary;
pub use error::{panic_message, Error, Result};
pub use govern::{CancelToken, QueryGovernor, CHECK_INTERVAL};
pub use hierarchy::{DictHierarchy, Hierarchy, IntHierarchy, TimeGranularity, TimeHierarchy};
pub use log::{EventLog, RecoveryReport, SegmentMeta};
pub use metrics::{Counter, EngineMetrics, QueryProfile, QueryRecorder, Stage};
pub use pred::{CmpOp, Pred};
pub use schema::{AttrId, ColumnDef, ColumnType, Role, Schema};
pub use seqquery::{
    build_sequence_groups, build_sequence_groups_governed, AttrLevel, SeqQuerySpec, Sequence,
    SequenceGroup, SequenceGroups, SortKey,
};
pub use store::{EventDb, EventDbBuilder};
pub use value::{LevelValue, RowId, Sid, Value};
pub use wal::FsyncPolicy;
