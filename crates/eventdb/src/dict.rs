//! String dictionaries: interning of dimension values.
//!
//! Every string-typed dimension column is dictionary-encoded: the column
//! stores `u32` ids and the dictionary maps ids back to strings. Concept
//! hierarchy levels (e.g. the `district` level above `station`) carry their
//! own dictionaries.

use std::collections::HashMap;

/// An append-only string interner. Ids are assigned in insertion order and
/// are dense in `0..len()`.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    by_name: HashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, id);
        id
    }

    /// Looks up the id of `name` without interning.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Resolves an id back to its string, if in range.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_ref())
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_ref()))
    }

    /// Approximate heap footprint in bytes (strings + id map), used for the
    /// index-size accounting reported by the benchmark harness.
    pub fn heap_bytes(&self) -> usize {
        self.names
            .iter()
            .map(|s| s.len() + std::mem::size_of::<Box<str>>())
            .sum::<usize>()
            * 2 // names are stored twice (vec + map key)
            + self.by_name.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("Pentagon");
        let b = d.intern("Wheaton");
        assert_eq!(d.intern("Pentagon"), a);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(d.intern(name), i as u32);
        }
        let collected: Vec<_> = d.iter().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn lookup_and_resolve() {
        let mut d = Dictionary::new();
        let id = d.intern("Glenmont");
        assert_eq!(d.lookup("Glenmont"), Some(id));
        assert_eq!(d.lookup("nope"), None);
        assert_eq!(d.resolve(id), Some("Glenmont"));
        assert_eq!(d.resolve(99), None);
    }

    #[test]
    fn empty() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(d.heap_bytes() < 64);
    }
}
