//! The segmented event log: WAL rotation, sealed segments, manifest.
//!
//! ROADMAP's streaming-ingestion open item names the shape: an append-only
//! log whose active tail is a WAL ([`crate::wal`]) that *rotates* into
//! sealed immutable segments once it exceeds a size threshold. On disk:
//!
//! ```text
//! dir/
//!   MANIFEST            one checksummed frame listing sealed segments
//!   segment-000000.log  sealed, immutable, fsynced before sealing
//!   segment-000001.log  …
//!   segment-000002.open the active WAL tail
//! ```
//!
//! Sealing renames `segment-N.open` → `segment-N.log` (after an fsync) and
//! rewrites the manifest via temp-file + atomic rename. Every crash window
//! is recoverable:
//!
//! * torn tail in the `.open` file → lenient replay + truncation
//!   ([`wal::replay`] / [`wal::truncate_to`]);
//! * sealed-and-renamed segment not yet in the manifest → adopted during
//!   recovery (it was fsynced before the rename, so a strict replay must
//!   succeed);
//! * leftover `MANIFEST.tmp` → ignored and overwritten by the next seal.
//!
//! Damage to a *sealed* segment or to the manifest frame itself is real
//! corruption and surfaces as a typed [`Error::Corrupt`] — never a panic.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::error::{Error, Result};
use crate::fail_point;
use crate::value::Value;
use crate::wal::{self, FsyncPolicy, Tail, WalWriter};

const MANIFEST_MAGIC: &[u8; 8] = b"SOLAPMAN";
const MANIFEST_VERSION: u32 = 1;
/// Default rotation threshold for the active WAL (bytes).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;
/// Sealed-segment counts above this are rejected as corrupt.
const MAX_SEGMENTS: usize = 1 << 20;

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::InvalidOperation(format!("event log {what} failed: {e}"))
}

fn corrupt(detail: impl Into<String>) -> Error {
    Error::Corrupt {
        detail: detail.into(),
    }
}

fn segment_file_name(seq: u64, sealed: bool) -> String {
    format!("segment-{seq:06}.{}", if sealed { "log" } else { "open" })
}

/// Fsyncs a directory so renames/creations within it are durable.
fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("dir fsync", e))
}

/// One sealed segment as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Monotonic segment number (also in the file name).
    pub seq: u64,
    /// Event records in the segment.
    pub records: u64,
    /// Byte length at seal time.
    pub bytes: u64,
}

fn encode_manifest(segments: &[SegmentMeta]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + segments.len() * 24);
    payload.extend_from_slice(&(segments.len() as u64).to_le_bytes());
    for s in segments {
        payload.extend_from_slice(&s.seq.to_le_bytes());
        payload.extend_from_slice(&s.records.to_le_bytes());
        payload.extend_from_slice(&s.bytes.to_le_bytes());
    }
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&wal::fnv1a(&payload).to_le_bytes());
    out
}

fn decode_manifest(bytes: &[u8]) -> Result<Vec<SegmentMeta>> {
    let header = bytes
        .get(..16)
        .ok_or_else(|| corrupt("manifest shorter than its header"))?;
    if header.get(..8) != Some(MANIFEST_MAGIC.as_slice()) {
        return Err(corrupt("bad manifest magic"));
    }
    let ver = u32::from_le_bytes(
        header
            .get(8..12)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| corrupt("truncated manifest version"))?,
    );
    if ver != MANIFEST_VERSION {
        return Err(corrupt(format!("unsupported manifest version {ver}")));
    }
    let len = u32::from_le_bytes(
        header
            .get(12..16)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| corrupt("truncated manifest length"))?,
    ) as usize;
    let payload = bytes
        .get(16..16 + len)
        .ok_or_else(|| corrupt("truncated manifest payload"))?;
    let sum = u64::from_le_bytes(
        bytes
            .get(16 + len..16 + len + 8)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| corrupt("truncated manifest checksum"))?,
    );
    if wal::fnv1a(payload) != sum {
        return Err(corrupt("manifest checksum mismatch"));
    }
    if bytes.len() != 16 + len + 8 {
        return Err(corrupt("trailing bytes after manifest frame"));
    }
    let count = u64::from_le_bytes(
        payload
            .get(..8)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| corrupt("truncated manifest count"))?,
    ) as usize;
    if count > MAX_SEGMENTS {
        return Err(corrupt(format!("{count} segments exceeds cap")));
    }
    let mut segments = Vec::with_capacity(count.min(1 << 12));
    let mut at = 8usize;
    let mut prev: Option<u64> = None;
    for i in 0..count {
        let rec = payload
            .get(at..at + 24)
            .ok_or_else(|| corrupt(format!("truncated manifest entry {i}")))?;
        let field = |j: usize| -> Result<u64> {
            Ok(u64::from_le_bytes(
                rec.get(j..j + 8)
                    .and_then(|s| s.try_into().ok())
                    .ok_or_else(|| corrupt(format!("truncated manifest entry {i}")))?,
            ))
        };
        let meta = SegmentMeta {
            seq: field(0)?,
            records: field(8)?,
            bytes: field(16)?,
        };
        if prev.is_some_and(|p| meta.seq <= p) {
            return Err(corrupt(format!(
                "manifest segment numbers not increasing at entry {i}"
            )));
        }
        prev = Some(meta.seq);
        segments.push(meta);
        at += 24;
    }
    if at != payload.len() {
        return Err(corrupt("trailing bytes in manifest payload"));
    }
    Ok(segments)
}

/// What recovery did while opening an [`EventLog`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Events replayed from sealed segments.
    pub sealed_events: u64,
    /// Events replayed from the active WAL tail.
    pub wal_events: u64,
    /// Sealed segments that were missing from the manifest and adopted
    /// (crash between rename and manifest rewrite).
    pub adopted_segments: u64,
    /// Bytes of torn tail truncated off the active WAL, with the detail of
    /// what was wrong (`None` when the tail was clean).
    pub truncated_tail: Option<(u64, String)>,
}

/// A durable, segmented, append-only event log.
pub struct EventLog {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    sealed: Vec<SegmentMeta>,
    active: WalWriter,
    active_seq: u64,
    /// Rotations performed over this handle's lifetime (observability).
    rotations: u64,
    /// fsyncs performed by already-sealed writers of this handle.
    retired_syncs: u64,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .field("sealed", &self.sealed.len())
            .field("active_seq", &self.active_seq)
            .finish()
    }
}

impl EventLog {
    /// Opens (or creates) the log in `dir`, recovering any crash state, and
    /// returns the log, every durable event row in append order, and a
    /// report of what recovery had to do.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
    ) -> Result<(EventLog, Vec<Vec<Value>>, RecoveryReport)> {
        EventLog::open_with_segment_bytes(dir, policy, DEFAULT_SEGMENT_BYTES)
    }

    /// [`EventLog::open`] with an explicit rotation threshold (tests and
    /// benches use small segments to exercise rotation).
    pub fn open_with_segment_bytes(
        dir: &Path,
        policy: FsyncPolicy,
        segment_bytes: u64,
    ) -> Result<(EventLog, Vec<Vec<Value>>, RecoveryReport)> {
        fs::create_dir_all(dir).map_err(|e| io_err("create dir", e))?;
        let mut report = RecoveryReport::default();

        // 1. The manifest names the sealed segments.
        let manifest_path = dir.join("MANIFEST");
        let mut sealed = match File::open(&manifest_path) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)
                    .map_err(|e| io_err("read manifest", e))?;
                decode_manifest(&bytes)?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("open manifest", e)),
        };

        // 2. Scan the directory for segment files the manifest missed and
        //    for the active tail.
        let mut on_disk_sealed: BTreeMap<u64, PathBuf> = BTreeMap::new();
        let mut open_tails: BTreeMap<u64, PathBuf> = BTreeMap::new();
        for entry in fs::read_dir(dir).map_err(|e| io_err("scan dir", e))? {
            let entry = entry.map_err(|e| io_err("scan dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let (stem, sealed_file) = match name.strip_suffix(".log") {
                Some(s) => (s, true),
                None => match name.strip_suffix(".open") {
                    Some(s) => (s, false),
                    None => continue,
                },
            };
            let Some(num) = stem.strip_prefix("segment-") else {
                continue;
            };
            let Ok(seq) = num.parse::<u64>() else {
                continue;
            };
            if sealed_file {
                on_disk_sealed.insert(seq, entry.path());
            } else {
                open_tails.insert(seq, entry.path());
            }
        }
        if open_tails.len() > 1 {
            return Err(corrupt(format!(
                "{} active wal files found; the log never leaves more than one",
                open_tails.len()
            )));
        }
        for meta in &sealed {
            if !on_disk_sealed.contains_key(&meta.seq) {
                return Err(corrupt(format!(
                    "manifest names segment {} but the file is missing",
                    meta.seq
                )));
            }
        }
        // Adopt sealed files the manifest doesn't know about yet (crash
        // between the seal rename and the manifest rewrite). They were
        // fsynced before the rename, so a strict replay must succeed.
        let manifest_max = sealed.last().map(|s| s.seq);
        let mut adopted = false;
        // solint: allow(governor-tick) recovery runs at engine construction,
        // before any query (and so any governor) exists
        for (&seq, path) in &on_disk_sealed {
            if manifest_max.is_none_or(|m| seq > m) {
                let rows = wal::replay_strict(path)?;
                let bytes = fs::metadata(path).map_err(|e| io_err("stat", e))?.len();
                sealed.push(SegmentMeta {
                    seq,
                    records: rows.len() as u64,
                    bytes,
                });
                report.adopted_segments += 1;
                adopted = true;
            }
        }
        if adopted {
            write_manifest(dir, &sealed)?;
        }

        // 3. Replay: sealed segments strictly, in order …
        let mut rows = Vec::new();
        for meta in &sealed {
            let path = dir.join(segment_file_name(meta.seq, true));
            let seg_rows = wal::replay_strict(&path)?;
            if seg_rows.len() as u64 != meta.records {
                return Err(corrupt(format!(
                    "segment {} replayed {} records but the manifest promises {}",
                    meta.seq,
                    seg_rows.len(),
                    meta.records
                )));
            }
            report.sealed_events += seg_rows.len() as u64;
            rows.extend(seg_rows);
        }

        // 4. … then the active tail leniently, truncating torn bytes.
        let next_seq = sealed.last().map_or(0, |s| s.seq + 1);
        let (active, active_seq) = match open_tails.pop_first() {
            Some((seq, path)) => {
                if seq < next_seq {
                    return Err(corrupt(format!(
                        "active wal segment {seq} predates sealed segment {}",
                        next_seq - 1
                    )));
                }
                let replayed = wal::replay(&path)?;
                if let Tail::Torn { valid_len, detail } = &replayed.tail {
                    let total = fs::metadata(&path).map_err(|e| io_err("stat", e))?.len();
                    wal::truncate_to(&path, *valid_len)?;
                    report.truncated_tail = Some((total - valid_len, detail.clone()));
                }
                report.wal_events += replayed.rows.len() as u64;
                let records = replayed.rows.len() as u64;
                rows.extend(replayed.rows);
                (WalWriter::open(&path, policy, records)?, seq)
            }
            None => {
                let path = dir.join(segment_file_name(next_seq, false));
                let w = WalWriter::create(&path, policy)?;
                sync_dir(dir)?;
                (w, next_seq)
            }
        };

        Ok((
            EventLog {
                dir: dir.to_path_buf(),
                policy,
                segment_bytes,
                sealed,
                active,
                active_seq,
                rotations: 0,
                retired_syncs: 0,
            },
            rows,
            report,
        ))
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Sealed segments, oldest first.
    pub fn sealed(&self) -> &[SegmentMeta] {
        &self.sealed
    }

    /// Total durable records (sealed + active).
    pub fn records(&self) -> u64 {
        self.sealed.iter().map(|s| s.records).sum::<u64>() + self.active.records()
    }

    /// Rotations performed over this handle's lifetime (observability).
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// fsync calls issued over this handle's lifetime (observability).
    pub fn fsyncs(&self) -> u64 {
        self.retired_syncs + self.active.syncs()
    }

    /// Appends a batch of event rows. Returns only after the batch is
    /// durable per the fsync policy — the caller may acknowledge after this
    /// returns. Rotates the active WAL into a sealed segment when it has
    /// outgrown the threshold.
    pub fn append_batch(&mut self, batch: &[Vec<Value>]) -> Result<()> {
        self.active.append_batch(batch)?;
        if self.active.bytes() >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Seals the active WAL into an immutable segment and starts a new one.
    ///
    /// Disk-state ordering keeps every crash window recoverable and never
    /// leaves two `.open` files: fsync the tail, rename it `.open` →
    /// `.log` (an orphan `.log` is adopted by recovery), create the next
    /// `.open`, then rewrite the manifest.
    fn rotate(&mut self) -> Result<()> {
        fail_point!("wal.rotate");
        let seq = self.active_seq;
        let records = self.active.records();
        let bytes = self.active.bytes();
        let open_path = self.active.path().to_path_buf();
        let sealed_path = self.dir.join(segment_file_name(seq, true));
        self.active.sync()?;
        fail_point!("log.seal");
        fs::rename(&open_path, &sealed_path).map_err(|e| io_err("seal rename", e))?;
        sync_dir(&self.dir)?;
        let next_seq = seq + 1;
        let next_path = self.dir.join(segment_file_name(next_seq, false));
        self.retired_syncs += self.active.syncs();
        self.active = WalWriter::create(&next_path, self.policy)?;
        sync_dir(&self.dir)?;
        self.sealed.push(SegmentMeta {
            seq,
            records,
            bytes,
        });
        write_manifest(&self.dir, &self.sealed)?;
        self.active_seq = next_seq;
        self.rotations += 1;
        Ok(())
    }

    /// Forces an fsync of the active WAL regardless of policy.
    pub fn sync(&mut self) -> Result<()> {
        self.active.sync()
    }
}

/// Rewrites the manifest atomically (temp file + fsync + rename + dir fsync).
fn write_manifest(dir: &Path, segments: &[SegmentMeta]) -> Result<()> {
    let bytes = encode_manifest(segments);
    let tmp = dir.join("MANIFEST.tmp");
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(|e| io_err("manifest tmp create", e))?;
    f.write_all(&bytes)
        .map_err(|e| io_err("manifest write", e))?;
    f.sync_all().map_err(|e| io_err("manifest fsync", e))?;
    drop(f);
    fs::rename(&tmp, dir.join("MANIFEST")).map_err(|e| io_err("manifest rename", e))?;
    sync_dir(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("solap-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn row(i: i64) -> Vec<Value> {
        vec![
            Value::Int(i),
            Value::from("station"),
            Value::Float(i as f64),
        ]
    }

    #[test]
    fn append_reopen_replays_everything() {
        let dir = tmpdir("reopen");
        {
            let (mut log, rows, rep) = EventLog::open(&dir, FsyncPolicy::Batch).unwrap();
            assert!(rows.is_empty());
            assert_eq!(rep, RecoveryReport::default());
            log.append_batch(&[row(1), row(2)]).unwrap();
            log.append_batch(&[row(3)]).unwrap();
        }
        let (log, rows, rep) = EventLog::open(&dir, FsyncPolicy::Batch).unwrap();
        assert_eq!(rows, vec![row(1), row(2), row(3)]);
        assert_eq!(rep.wal_events, 3);
        assert_eq!(log.records(), 3);
    }

    #[test]
    fn rotation_seals_segments_and_survives_reopen() {
        let dir = tmpdir("rotate");
        let n = 40;
        {
            let (mut log, _, _) =
                EventLog::open_with_segment_bytes(&dir, FsyncPolicy::Off, 256).unwrap();
            for i in 0..n {
                log.append_batch(&[row(i)]).unwrap();
            }
            assert!(log.sealed().len() >= 2, "small threshold must rotate");
        }
        let (log, rows, rep) = EventLog::open(&dir, FsyncPolicy::Off).unwrap();
        assert_eq!(rows.len() as i64, n);
        assert_eq!(rows, (0..n).map(row).collect::<Vec<_>>());
        assert!(rep.sealed_events > 0);
        assert_eq!(log.records() as i64, n);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmpdir("torn");
        {
            let (mut log, _, _) = EventLog::open(&dir, FsyncPolicy::Batch).unwrap();
            log.append_batch(&[row(1), row(2)]).unwrap();
        }
        // Tear the active tail mid-record.
        let open: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "open"))
            .collect();
        assert_eq!(open.len(), 1);
        let path = open[0].path();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (log, rows, rep) = EventLog::open(&dir, FsyncPolicy::Batch).unwrap();
        assert_eq!(rows, vec![row(1)], "torn second record must be dropped");
        let (cut, detail) = rep.truncated_tail.unwrap();
        assert!(cut > 0 && !detail.is_empty());
        // The log keeps working after truncation.
        drop(log);
        let (mut log, rows, _) = EventLog::open(&dir, FsyncPolicy::Batch).unwrap();
        assert_eq!(rows.len(), 1);
        log.append_batch(&[row(9)]).unwrap();
        drop(log);
        let (_, rows, _) = EventLog::open(&dir, FsyncPolicy::Batch).unwrap();
        assert_eq!(rows, vec![row(1), row(9)]);
    }

    #[test]
    fn sealed_segment_damage_is_corrupt() {
        let dir = tmpdir("sealed-damage");
        {
            let (mut log, _, _) =
                EventLog::open_with_segment_bytes(&dir, FsyncPolicy::Off, 128).unwrap();
            for i in 0..20 {
                log.append_batch(&[row(i)]).unwrap();
            }
            assert!(!log.sealed().is_empty());
        }
        let seg = dir.join(segment_file_name(0, true));
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&seg, &bytes).unwrap();
        let err = EventLog::open(&dir, FsyncPolicy::Off).unwrap_err();
        assert_eq!(err.code(), "corrupt", "{err}");
    }

    #[test]
    fn orphan_sealed_segment_is_adopted() {
        let dir = tmpdir("adopt");
        {
            let (mut log, _, _) =
                EventLog::open_with_segment_bytes(&dir, FsyncPolicy::Off, 128).unwrap();
            for i in 0..20 {
                log.append_batch(&[row(i)]).unwrap();
            }
            assert!(log.sealed().len() >= 2);
        }
        // Simulate a crash between seal-rename and manifest rewrite by
        // rolling the manifest back one segment.
        let manifest = fs::read(dir.join("MANIFEST")).unwrap();
        let full = decode_manifest(&manifest).unwrap();
        write_manifest(&dir, &full[..full.len() - 1]).unwrap();
        let (log, rows, rep) = EventLog::open(&dir, FsyncPolicy::Off).unwrap();
        assert_eq!(rep.adopted_segments, 1);
        assert_eq!(rows.len(), 20);
        assert_eq!(log.sealed().len(), full.len());
    }

    #[test]
    fn manifest_damage_is_corrupt_never_panic() {
        let dir = tmpdir("manifest-damage");
        {
            let (mut log, _, _) =
                EventLog::open_with_segment_bytes(&dir, FsyncPolicy::Off, 128).unwrap();
            for i in 0..20 {
                log.append_batch(&[row(i)]).unwrap();
            }
        }
        let manifest = fs::read(dir.join("MANIFEST")).unwrap();
        for cut in 0..manifest.len() {
            fs::write(dir.join("MANIFEST"), &manifest[..cut]).unwrap();
            let err = EventLog::open(&dir, FsyncPolicy::Off).unwrap_err();
            assert_eq!(err.code(), "corrupt", "cut at {cut}");
        }
        for at in 0..manifest.len() {
            let mut bad = manifest.clone();
            bad[at] ^= 0xff;
            fs::write(dir.join("MANIFEST"), &bad).unwrap();
            // Some flips only alter metadata (record counts / byte sizes)
            // in ways caught later as replay mismatches — also corrupt.
            let err = EventLog::open(&dir, FsyncPolicy::Off).unwrap_err();
            assert_eq!(err.code(), "corrupt", "flip at {at}");
        }
    }

    // Failpoint-armed behaviour (wal.rotate / log.seal / recover.replay)
    // is exercised in tests/chaos.rs — failpoint state is process-global,
    // so arming inside parallel unit tests would race the other log tests.
}
