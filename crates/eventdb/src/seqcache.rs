//! The Sequence Cache of the prototype architecture (Figure 6).
//!
//! Steps 1–4 of S-cuboid formation depend only on the `WHERE`, `CLUSTER BY`,
//! `SEQUENCE BY` and `SEQUENCE GROUP BY` clauses; iterative S-OLAP queries
//! (obtained via the six pattern operations) share them, so the constructed
//! sequence groups are cached and reused across the whole exploration
//! session.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::Result;
use crate::fail_point;
use crate::govern::QueryGovernor;
use crate::lru::LruCache;
use crate::metrics::Counter;
use crate::seqquery::{build_sequence_groups_governed, SeqQuerySpec, SequenceGroups};
use crate::store::EventDb;

/// Cache key: spec fingerprint + database version (appends invalidate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    spec: u64,
    db_version: u64,
}

/// A thread-safe LRU cache of [`SequenceGroups`].
pub struct SequenceCache {
    inner: Mutex<LruCache<Key, Arc<SequenceGroups>>>,
}

impl SequenceCache {
    /// Creates a cache bounded by `capacity` entries and `max_bytes` of
    /// (approximate) sequence-group payload.
    pub fn new(capacity: usize, max_bytes: usize) -> Self {
        SequenceCache {
            inner: Mutex::ranked(
                parking_lot::rank::EVENTDB_SEQ_CACHE,
                "eventdb.seq_cache",
                LruCache::with_weight(capacity, max_bytes, |sg| sg.heap_bytes()),
            ),
        }
    }

    /// Returns the sequence groups for `spec`, building them on a miss.
    pub fn get_or_build(&self, db: &EventDb, spec: &SeqQuerySpec) -> Result<Arc<SequenceGroups>> {
        self.get_or_build_governed(db, spec, &QueryGovernor::unbounded())
    }

    /// [`SequenceCache::get_or_build`] under a [`QueryGovernor`].
    ///
    /// The build runs outside the cache lock and the result is inserted
    /// only on success, so an aborted or failed build leaves no partial
    /// entry behind — the cache is never poisoned by a governed abort, a
    /// panic, or an injected failpoint.
    pub fn get_or_build_governed(
        &self,
        db: &EventDb,
        spec: &SeqQuerySpec,
        gov: &QueryGovernor,
    ) -> Result<Arc<SequenceGroups>> {
        let key = Key {
            spec: spec.fingerprint(),
            db_version: db.version(),
        };
        let rec = gov.recorder();
        if let Some(hit) = self.inner.lock().get(&key) {
            if let Some(rec) = rec {
                rec.add(Counter::SeqCacheHits, 1);
            }
            return Ok(Arc::clone(hit));
        }
        if let Some(rec) = rec {
            rec.add(Counter::SeqCacheMisses, 1);
        }
        fail_point!("seqcache.build");
        let built = Arc::new(build_sequence_groups_governed(db, spec, gov)?);
        {
            let mut inner = self.inner.lock();
            let before = inner.evictions();
            inner.insert(key, Arc::clone(&built));
            if let Some(rec) = rec {
                rec.add(Counter::SeqCacheEvictions, inner.evictions() - before);
            }
        }
        Ok(built)
    }

    /// Peeks the entry for `spec` at an explicit database version without
    /// building on a miss. The store path uses this to find carry-forward
    /// candidates: groups cached at the pre-append version that
    /// incremental update (§6) can extend instead of rebuilding.
    pub fn cached(&self, spec: &SeqQuerySpec, db_version: u64) -> Option<Arc<SequenceGroups>> {
        let key = Key {
            spec: spec.fingerprint(),
            db_version,
        };
        self.inner.lock().get(&key).cloned()
    }

    /// Inserts pre-built groups for `spec` at an explicit database version
    /// — the write half of the store path's carry-forward.
    pub fn put(&self, spec: &SeqQuerySpec, db_version: u64, groups: Arc<SequenceGroups>) {
        let key = Key {
            spec: spec.fingerprint(),
            db_version,
        };
        self.inner.lock().insert(key, groups);
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        self.inner.lock().stats()
    }

    /// Budget-driven evictions since creation.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drops everything (e.g. after a bulk load).
    pub fn clear(&self) {
        self.inner.lock().clear()
    }
}

impl Default for SequenceCache {
    fn default() -> Self {
        // 64 cached group sets / 256 MiB — generous for interactive use.
        SequenceCache::new(64, 256 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::Pred;
    use crate::schema::ColumnType;
    use crate::seqquery::{AttrLevel, SortKey};
    use crate::store::EventDbBuilder;
    use crate::value::Value;

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sess", ColumnType::Int)
            .dimension("page", ColumnType::Str)
            .build()
            .unwrap();
        for (s, p) in [(1, "a"), (1, "b"), (2, "a")] {
            db.push_row(&[Value::Int(s), Value::from(p)]).unwrap();
        }
        db
    }

    fn spec() -> SeqQuerySpec {
        SeqQuerySpec {
            filter: Pred::True,
            cluster_by: vec![AttrLevel::new(0, 0)],
            sequence_by: vec![SortKey {
                attr: 0,
                ascending: true,
            }],
            group_by: vec![],
        }
    }

    #[test]
    fn caches_and_reuses() {
        let db = db();
        let cache = SequenceCache::default();
        let a = cache.get_or_build(&db, &spec()).unwrap();
        let b = cache.get_or_build(&db, &spec()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn db_mutation_invalidates() {
        let mut db = db();
        let cache = SequenceCache::default();
        let a = cache.get_or_build(&db, &spec()).unwrap();
        db.push_row(&[Value::Int(3), Value::from("c")]).unwrap();
        let b = cache.get_or_build(&db, &spec()).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.total_sequences, 3);
    }

    #[test]
    fn tiny_byte_budget_churns_but_stays_correct() {
        let db = db();
        // 1-byte budget: every insert immediately evicts down to the
        // single-entry floor, so each distinct spec alternation misses.
        let cache = SequenceCache::new(64, 1);
        let mut s2 = spec();
        s2.cluster_by = vec![AttrLevel::new(1, 0)];
        let fresh_a = build_sequence_groups_governed(&db, &spec(), &QueryGovernor::unbounded())
            .unwrap()
            .groups
            .clone();
        let fresh_b = build_sequence_groups_governed(&db, &s2, &QueryGovernor::unbounded())
            .unwrap()
            .groups
            .clone();
        for _ in 0..10 {
            let a = cache.get_or_build(&db, &spec()).unwrap();
            let b = cache.get_or_build(&db, &s2).unwrap();
            assert_eq!(a.groups, fresh_a);
            assert_eq!(b.groups, fresh_b);
            assert!(cache.len() <= 1, "budget must keep at most one entry");
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits + misses, 20, "every lookup is counted exactly once");
        assert!(misses >= 10, "churn under a tiny budget must keep missing");
    }

    #[test]
    fn failed_build_leaves_no_entry() {
        let db = db();
        let cache = SequenceCache::default();
        let mut bad = spec();
        // Comparing the Str `page` column to an Int is a TypeMismatch.
        bad.filter = Pred::cmp(1, crate::pred::CmpOp::Eq, Value::Int(3));
        assert!(cache.get_or_build(&db, &bad).is_err());
        assert!(cache.is_empty(), "failed builds must not be cached");
        // A governed abort must not poison the cache either.
        let gov = QueryGovernor::new(None, Some(0), None);
        assert!(cache.get_or_build_governed(&db, &spec(), &gov).is_err());
        assert!(cache.is_empty());
        let ok = cache.get_or_build(&db, &spec()).unwrap();
        assert_eq!(ok.total_sequences, 2);
    }

    #[test]
    fn distinct_specs_distinct_entries() {
        let db = db();
        let cache = SequenceCache::default();
        cache.get_or_build(&db, &spec()).unwrap();
        let mut s2 = spec();
        s2.cluster_by = vec![AttrLevel::new(1, 0)];
        cache.get_or_build(&db, &s2).unwrap();
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }
}
