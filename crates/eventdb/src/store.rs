//! The event database: a dictionary-encoded, columnar, in-memory store.
//!
//! Events are appended as rows ([`EventDb::push_row`]) and read back either
//! as scalar [`Value`]s or — the hot path for the S-OLAP engines — as
//! [`LevelValue`]s: the value of a dimension at a chosen abstraction level
//! of its concept hierarchy ([`EventDb::value_at_level`]).

use crate::dict::Dictionary;
use crate::error::{Error, Result};
use crate::hierarchy::{
    validate_level, DictHierarchy, DictLevel, Hierarchy, IntHierarchy, TimeHierarchy, UNMAPPED,
};
use crate::schema::{AttrId, ColumnType, Schema};
use crate::value::{LevelValue, RowId, Value};

/// Column storage.
#[derive(Debug, Clone)]
enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str { dict: Dictionary, data: Vec<u32> },
    Time(Vec<i64>),
}

impl ColumnData {
    fn new(ctype: ColumnType) -> Self {
        match ctype {
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Str => ColumnData::Str {
                dict: Dictionary::new(),
                data: Vec::new(),
            },
            ColumnType::Time => ColumnData::Time(Vec::new()),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            ColumnData::Int(v) | ColumnData::Time(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Str { dict, data } => data.len() * 4 + dict.heap_bytes(),
        }
    }
}

/// The in-memory event database (Figure 1 of the paper).
#[derive(Debug, Clone)]
pub struct EventDb {
    schema: Schema,
    cols: Vec<ColumnData>,
    hierarchies: Vec<Hierarchy>,
    base_level_names: Vec<Option<String>>,
    len: usize,
    version: u64,
}

impl EventDb {
    /// Creates an empty database with the given schema.
    pub fn new(schema: Schema) -> Self {
        let cols = schema
            .columns()
            .iter()
            .map(|c| ColumnData::new(c.ctype))
            .collect();
        let n = schema.len();
        EventDb {
            schema,
            cols,
            hierarchies: vec![Hierarchy::None; n],
            base_level_names: vec![None; n],
            len: 0,
            version: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the database holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A monotonically increasing version, bumped on every mutation. Cache
    /// keys embed it so that appends invalidate derived artifacts.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Resolves an attribute name.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        self.schema.attr(name)
    }

    /// Checks one event row against the schema without mutating anything:
    /// arity, then per-column type compatibility under the same coercions
    /// [`EventDb::push_row`] performs. A row that validates is guaranteed
    /// to push successfully — the durable store path relies on this to
    /// validate *before* committing the row to the write-ahead log.
    pub fn validate_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(Error::ArityMismatch {
                expected: self.schema.len(),
                actual: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            let def = self.schema.column(i as AttrId);
            let ok = matches!(
                (&self.cols[i], v),
                (ColumnData::Int(_), Value::Int(_))
                    | (ColumnData::Float(_), Value::Float(_) | Value::Int(_))
                    | (ColumnData::Str { .. }, Value::Str(_))
                    | (ColumnData::Time(_), Value::Time(_) | Value::Int(_))
            ) || (matches!(&self.cols[i], ColumnData::Time(_))
                && matches!(v, Value::Str(s) if crate::time::parse_timestamp(s).is_some()));
            if !ok {
                return Err(Error::TypeMismatch {
                    attribute: def.name.clone(),
                    expected: def.ctype.name(),
                    actual: v.type_name(),
                });
            }
        }
        Ok(())
    }

    /// Appends one event. Values must match the column types positionally;
    /// `Int` literals are accepted for `Time` and `Float` columns, and
    /// parseable string literals are accepted for `Time` columns.
    pub fn push_row(&mut self, values: &[Value]) -> Result<RowId> {
        // Validate before mutating so a failed push leaves the store intact.
        self.validate_row(values)?;
        for (i, v) in values.iter().enumerate() {
            match &mut self.cols[i] {
                ColumnData::Int(col) => col.push(v.as_int().expect("validated")),
                ColumnData::Float(col) => col.push(v.as_float().expect("validated")),
                ColumnData::Time(col) => col.push(v.as_time().expect("validated")),
                ColumnData::Str { dict, data } => {
                    let id = dict.intern(v.as_str().expect("validated"));
                    data.push(id);
                }
            }
        }
        let row = self.len as RowId;
        self.len += 1;
        self.version += 1;
        Ok(row)
    }

    /// Reads an event attribute back as a scalar [`Value`].
    pub fn value(&self, row: RowId, attr: AttrId) -> Value {
        match &self.cols[attr as usize] {
            ColumnData::Int(v) => Value::Int(v[row as usize]),
            ColumnData::Float(v) => Value::Float(v[row as usize]),
            ColumnData::Time(v) => Value::Time(v[row as usize]),
            ColumnData::Str { dict, data } => Value::Str(
                dict.resolve(data[row as usize])
                    .expect("interned id resolves")
                    .to_owned(),
            ),
        }
    }

    /// Integer accessor (also accepts `Time` columns).
    pub fn int(&self, row: RowId, attr: AttrId) -> Option<i64> {
        match &self.cols[attr as usize] {
            ColumnData::Int(v) | ColumnData::Time(v) => Some(v[row as usize]),
            _ => None,
        }
    }

    /// Float accessor (widens `Int` columns; used by measure aggregation).
    pub fn float(&self, row: RowId, attr: AttrId) -> Option<f64> {
        match &self.cols[attr as usize] {
            ColumnData::Float(v) => Some(v[row as usize]),
            ColumnData::Int(v) | ColumnData::Time(v) => Some(v[row as usize] as f64),
            _ => None,
        }
    }

    /// Dictionary id accessor for string columns.
    pub fn str_id(&self, row: RowId, attr: AttrId) -> Option<u32> {
        match &self.cols[attr as usize] {
            ColumnData::Str { data, .. } => Some(data[row as usize]),
            _ => None,
        }
    }

    /// The dictionary of a string column.
    pub fn dict(&self, attr: AttrId) -> Option<&Dictionary> {
        match &self.cols[attr as usize] {
            ColumnData::Str { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// The hierarchy attached to an attribute.
    pub fn hierarchy(&self, attr: AttrId) -> &Hierarchy {
        &self.hierarchies[attr as usize]
    }

    // ------------------------------------------------------------------
    // Abstraction levels
    // ------------------------------------------------------------------

    /// Names the base (level-0) abstraction of an attribute, e.g. `station`
    /// for `location` or `individual` for `card-id`.
    pub fn set_base_level_name(&mut self, attr: AttrId, name: &str) {
        self.base_level_names[attr as usize] = Some(name.to_owned());
    }

    /// The configured base-level name of an attribute, if any.
    pub fn base_level_name(&self, attr: AttrId) -> Option<&str> {
        self.base_level_names[attr as usize].as_deref()
    }

    /// Number of abstraction levels of an attribute (≥ 1).
    pub fn level_count(&self, attr: AttrId) -> usize {
        self.hierarchies[attr as usize].level_count()
    }

    /// The display name of a level.
    pub fn level_name(&self, attr: AttrId, level: usize) -> String {
        if level == 0 {
            if let Some(n) = &self.base_level_names[attr as usize] {
                return n.clone();
            }
            if let Hierarchy::Time(_) = self.hierarchies[attr as usize] {
                return self.schema.column(attr).name.clone();
            }
            return self.schema.column(attr).name.clone();
        }
        self.hierarchies[attr as usize]
            .level_name(level)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("level-{level}"))
    }

    /// Resolves a level name for an attribute. Accepts the configured base
    /// name, the attribute's own name or `raw` for level 0, and hierarchy
    /// level names above it.
    pub fn level_by_name(&self, attr: AttrId, name: &str) -> Result<usize> {
        let def = self.schema.column(attr);
        if name == def.name
            || name == "raw"
            || self.base_level_names[attr as usize].as_deref() == Some(name)
        {
            return Ok(0);
        }
        let h = &self.hierarchies[attr as usize];
        for lvl in 0..h.level_count() {
            if h.level_name(lvl) == Some(name) {
                return Ok(lvl);
            }
        }
        Err(Error::UnknownLevel {
            attribute: def.name.clone(),
            level: name.to_owned(),
        })
    }

    /// The value of `attr` for event `row` at abstraction `level`.
    pub fn value_at_level(&self, row: RowId, attr: AttrId, level: usize) -> Result<LevelValue> {
        let a = attr as usize;
        match (&self.cols[a], &self.hierarchies[a]) {
            (ColumnData::Str { data, dict }, h) => {
                let base = data[row as usize];
                if level == 0 {
                    return Ok(base as LevelValue);
                }
                match h {
                    Hierarchy::Dict(dh) => dh.map_up(base, level).map(|v| v as LevelValue).ok_or(
                        Error::IncompleteHierarchy {
                            attribute: self.schema.column(attr).name.clone(),
                            level: self.level_name(attr, level),
                            value: dict.resolve(base).unwrap_or("<unknown>").to_owned(),
                        },
                    ),
                    _ => Err(self.unknown_level_err(attr, level)),
                }
            }
            (ColumnData::Int(data), h) => {
                let raw = data[row as usize];
                if level == 0 {
                    return Ok(raw as LevelValue);
                }
                match h {
                    Hierarchy::Int(ih) => ih.map_up(raw, level).map(|v| v as LevelValue).ok_or(
                        Error::IncompleteHierarchy {
                            attribute: self.schema.column(attr).name.clone(),
                            level: self.level_name(attr, level),
                            value: raw.to_string(),
                        },
                    ),
                    _ => Err(self.unknown_level_err(attr, level)),
                }
            }
            (ColumnData::Time(data), h) => {
                let t = data[row as usize];
                match h {
                    Hierarchy::Time(th) => th
                        .levels
                        .get(level)
                        .map(|g| g.bucket(t) as LevelValue)
                        .ok_or_else(|| self.unknown_level_err(attr, level)),
                    _ if level == 0 => Ok(t as LevelValue),
                    _ => Err(self.unknown_level_err(attr, level)),
                }
            }
            (ColumnData::Float(data), _) => {
                if level == 0 {
                    Ok(data[row as usize].to_bits())
                } else {
                    Err(self.unknown_level_err(attr, level))
                }
            }
        }
    }

    /// Maps a level value of `attr` from `from_level` up to the coarser
    /// `to_level`. Used by the inverted-index P-ROLL-UP fast path.
    pub fn map_up(
        &self,
        attr: AttrId,
        from_level: usize,
        v: LevelValue,
        to_level: usize,
    ) -> Result<LevelValue> {
        if to_level == from_level {
            return Ok(v);
        }
        if to_level < from_level {
            return Err(Error::InvalidOperation(format!(
                "map_up: target level {to_level} is finer than source level {from_level}"
            )));
        }
        let a = attr as usize;
        match &self.hierarchies[a] {
            Hierarchy::Dict(dh) => {
                let mut id = v as u32;
                for lvl in &dh.levels[from_level..to_level] {
                    id = lvl
                        .map(id)
                        .ok_or_else(|| self.incomplete_err(attr, to_level, v, from_level))?;
                }
                Ok(id as LevelValue)
            }
            Hierarchy::Int(ih) => {
                if from_level == 0 {
                    return ih
                        .map_up(v as i64, to_level)
                        .map(|x| x as LevelValue)
                        .ok_or_else(|| self.incomplete_err(attr, to_level, v, from_level));
                }
                let mut id = v as u32;
                for lvl in &ih.levels[from_level..to_level] {
                    id = lvl
                        .map(id)
                        .ok_or_else(|| self.incomplete_err(attr, to_level, v, from_level))?;
                }
                Ok(id as LevelValue)
            }
            Hierarchy::Time(th) => {
                let (from_g, to_g) = (
                    *th.levels
                        .get(from_level)
                        .ok_or_else(|| self.unknown_level_err(attr, from_level))?,
                    *th.levels
                        .get(to_level)
                        .ok_or_else(|| self.unknown_level_err(attr, to_level))?,
                );
                Ok(to_g.bucket(from_g.representative(v as i64)) as LevelValue)
            }
            Hierarchy::None => Err(Error::NoHierarchy(self.schema.column(attr).name.clone())),
        }
    }

    /// Renders a level value back to a display string.
    pub fn render_level(&self, attr: AttrId, level: usize, v: LevelValue) -> String {
        let a = attr as usize;
        match (&self.cols[a], &self.hierarchies[a]) {
            (ColumnData::Str { dict, .. }, h) => {
                if level == 0 {
                    return dict.resolve(v as u32).unwrap_or("<?>").to_owned();
                }
                if let Hierarchy::Dict(dh) = h {
                    if let Some(l) = dh.levels.get(level - 1) {
                        return l.dict.resolve(v as u32).unwrap_or("<?>").to_owned();
                    }
                }
                format!("<{v}>")
            }
            (ColumnData::Int(_), h) => {
                if level == 0 {
                    return (v as i64).to_string();
                }
                if let Hierarchy::Int(ih) = h {
                    if let Some(l) = ih.levels.get(level - 1) {
                        return l.dict.resolve(v as u32).unwrap_or("<?>").to_owned();
                    }
                }
                format!("<{v}>")
            }
            (ColumnData::Time(_), Hierarchy::Time(th)) => match th.levels.get(level) {
                Some(g) => g.render(v as i64),
                None => format!("<{v}>"),
            },
            (ColumnData::Time(_), _) => crate::time::format_timestamp(v as i64),
            (ColumnData::Float(_), _) => f64::from_bits(v).to_string(),
        }
    }

    /// Parses a display string into a level value of `(attr, level)` — the
    /// inverse of [`EventDb::render_level`], used by the query language for
    /// slice values. Dictionary levels resolve through their dictionaries;
    /// raw integers parse numerically; time levels parse a timestamp (or a
    /// plain `YYYY-MM-DD` for day granularity and coarser) and bucket it.
    pub fn parse_level_value(&self, attr: AttrId, level: usize, s: &str) -> Result<LevelValue> {
        let a = attr as usize;
        let bad = || Error::BadLiteral(s.to_owned());
        match (&self.cols[a], &self.hierarchies[a]) {
            (ColumnData::Str { dict, .. }, h) => {
                if level == 0 {
                    return dict.lookup(s).map(|v| v as LevelValue).ok_or_else(bad);
                }
                if let Hierarchy::Dict(dh) = h {
                    if let Some(l) = dh.levels.get(level - 1) {
                        return l.dict.lookup(s).map(|v| v as LevelValue).ok_or_else(bad);
                    }
                }
                Err(self.unknown_level_err(attr, level))
            }
            (ColumnData::Int(_), h) => {
                if level == 0 {
                    return s.parse::<i64>().map(|v| v as LevelValue).map_err(|_| bad());
                }
                if let Hierarchy::Int(ih) = h {
                    if let Some(l) = ih.levels.get(level - 1) {
                        return l.dict.lookup(s).map(|v| v as LevelValue).ok_or_else(bad);
                    }
                }
                Err(self.unknown_level_err(attr, level))
            }
            (ColumnData::Time(_), h) => {
                let t = crate::time::parse_timestamp(s).ok_or_else(bad)?;
                match h {
                    Hierarchy::Time(th) => th
                        .levels
                        .get(level)
                        .map(|g| g.bucket(t) as LevelValue)
                        .ok_or_else(|| self.unknown_level_err(attr, level)),
                    _ if level == 0 => Ok(t as LevelValue),
                    _ => Err(self.unknown_level_err(attr, level)),
                }
            }
            (ColumnData::Float(_), _) => s.parse::<f64>().map(|v| v.to_bits()).map_err(|_| bad()),
        }
    }

    /// The domain size of `attr` at `level`, when finitely enumerable
    /// (dictionary-backed levels). `None` for raw integers and time buckets.
    pub fn level_domain_size(&self, attr: AttrId, level: usize) -> Option<usize> {
        let a = attr as usize;
        match (&self.cols[a], &self.hierarchies[a]) {
            (ColumnData::Str { dict, .. }, h) => {
                if level == 0 {
                    Some(dict.len())
                } else if let Hierarchy::Dict(dh) = h {
                    dh.levels.get(level - 1).map(|l| l.dict.len())
                } else {
                    None
                }
            }
            (ColumnData::Int(_), Hierarchy::Int(ih)) if level > 0 => {
                ih.levels.get(level - 1).map(|l| l.dict.len())
            }
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Hierarchy attachment
    // ------------------------------------------------------------------

    /// Adds a level on top of a string attribute's hierarchy. `f` maps each
    /// value of the current top level to its parent name. The first call
    /// creates the hierarchy over the base dictionary.
    pub fn attach_str_level(
        &mut self,
        attr: AttrId,
        level_name: &str,
        mut f: impl FnMut(&str) -> String,
    ) -> Result<()> {
        let a = attr as usize;
        let child_dict: Dictionary = match (&self.cols[a], &self.hierarchies[a]) {
            (ColumnData::Str { dict, .. }, Hierarchy::None) => dict.clone(),
            (ColumnData::Str { dict, .. }, Hierarchy::Dict(dh)) => match dh.levels.last() {
                Some(top) => top.dict.clone(),
                None => dict.clone(),
            },
            (_, Hierarchy::Int(ih)) => match ih.levels.last() {
                Some(top) => top.dict.clone(),
                None => {
                    return Err(Error::InvalidOperation(
                        "attach_int_level must create the first level over an int column".into(),
                    ))
                }
            },
            _ => {
                return Err(Error::InvalidOperation(format!(
                    "cannot attach a dictionary level to `{}`",
                    self.schema.column(attr).name
                )))
            }
        };
        let mut level = DictLevel {
            name: level_name.to_owned(),
            dict: Dictionary::new(),
            parent_of: vec![UNMAPPED; child_dict.len()],
        };
        for (id, name) in child_dict.iter() {
            let parent = f(name);
            level.parent_of[id as usize] = level.dict.intern(&parent);
        }
        validate_level(&self.schema.column(attr).name, &level, &child_dict)?;
        match &mut self.hierarchies[a] {
            h @ Hierarchy::None => {
                *h = Hierarchy::Dict(DictHierarchy {
                    levels: vec![level],
                })
            }
            Hierarchy::Dict(dh) => dh.levels.push(level),
            Hierarchy::Int(ih) => ih.levels.push(level),
            Hierarchy::Time(_) => unreachable!("rejected above"),
        }
        self.version += 1;
        Ok(())
    }

    /// Creates the first hierarchy level over an integer attribute; `f` maps
    /// each distinct integer present in the column to a group name.
    pub fn attach_int_level(
        &mut self,
        attr: AttrId,
        level_name: &str,
        mut f: impl FnMut(i64) -> String,
    ) -> Result<()> {
        let a = attr as usize;
        let data = match &self.cols[a] {
            ColumnData::Int(v) => v,
            _ => {
                return Err(Error::InvalidOperation(format!(
                    "attach_int_level requires an int column, `{}` is not one",
                    self.schema.column(attr).name
                )))
            }
        };
        if !matches!(self.hierarchies[a], Hierarchy::None) {
            return Err(Error::InvalidOperation(format!(
                "`{}` already has a hierarchy",
                self.schema.column(attr).name
            )));
        }
        let mut ih = IntHierarchy::default();
        let mut level = DictLevel {
            name: level_name.to_owned(),
            ..Default::default()
        };
        for &raw in data {
            ih.base_to_first
                .entry(raw)
                .or_insert_with(|| level.dict.intern(&f(raw)));
        }
        ih.levels.push(level);
        self.hierarchies[a] = Hierarchy::Int(ih);
        self.version += 1;
        Ok(())
    }

    /// Registers a mapping for an integer value unseen when
    /// [`EventDb::attach_int_level`] ran (incremental update support).
    pub fn add_int_mapping(&mut self, attr: AttrId, raw: i64, parent: &str) -> Result<()> {
        match &mut self.hierarchies[attr as usize] {
            Hierarchy::Int(ih) => {
                let level = ih
                    .levels
                    .first_mut()
                    .expect("int hierarchy always has a first level");
                let id = level.dict.intern(parent);
                ih.base_to_first.insert(raw, id);
                self.version += 1;
                Ok(())
            }
            _ => Err(Error::NoHierarchy(self.schema.column(attr).name.clone())),
        }
    }

    /// Extends a string attribute's first hierarchy level with mappings for
    /// base values interned after the level was attached (incremental
    /// update support). `f` maps the new base value to its parent name.
    pub fn extend_str_level(
        &mut self,
        attr: AttrId,
        mut f: impl FnMut(&str) -> String,
    ) -> Result<()> {
        let a = attr as usize;
        let dict = match &self.cols[a] {
            ColumnData::Str { dict, .. } => dict.clone(),
            _ => {
                return Err(Error::InvalidOperation(format!(
                    "`{}` is not a string column",
                    self.schema.column(attr).name
                )))
            }
        };
        match &mut self.hierarchies[a] {
            Hierarchy::Dict(dh) => {
                let level = dh.levels.first_mut().expect("non-empty hierarchy");
                for (id, name) in dict.iter().skip(level.parent_of.len()) {
                    let parent = f(name);
                    debug_assert_eq!(id as usize, level.parent_of.len());
                    level.parent_of.push(level.dict.intern(&parent));
                }
                self.version += 1;
                Ok(())
            }
            _ => Err(Error::NoHierarchy(self.schema.column(attr).name.clone())),
        }
    }

    /// Attaches a functional time hierarchy to a time attribute.
    pub fn set_time_hierarchy(&mut self, attr: AttrId, th: TimeHierarchy) -> Result<()> {
        if !matches!(self.cols[attr as usize], ColumnData::Time(_)) {
            return Err(Error::InvalidOperation(format!(
                "`{}` is not a time column",
                self.schema.column(attr).name
            )));
        }
        if th.levels.first() != Some(&crate::hierarchy::TimeGranularity::Raw) {
            return Err(Error::InvalidOperation(
                "time hierarchies must start at the raw level".into(),
            ));
        }
        self.hierarchies[attr as usize] = Hierarchy::Time(th);
        self.version += 1;
        Ok(())
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.cols.iter().map(ColumnData::heap_bytes).sum()
    }

    /// Compares two rows by a list of `(attribute, ascending)` sort keys,
    /// used by sequence formation (`SEQUENCE BY`).
    pub fn cmp_rows(&self, a: RowId, b: RowId, keys: &[(AttrId, bool)]) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        for &(attr, asc) in keys {
            let ord = match &self.cols[attr as usize] {
                ColumnData::Int(v) | ColumnData::Time(v) => v[a as usize].cmp(&v[b as usize]),
                ColumnData::Float(v) => v[a as usize]
                    .partial_cmp(&v[b as usize])
                    .unwrap_or(Ordering::Equal),
                ColumnData::Str { dict, data } => {
                    let (x, y) = (data[a as usize], data[b as usize]);
                    if x == y {
                        Ordering::Equal
                    } else {
                        dict.resolve(x).cmp(&dict.resolve(y))
                    }
                }
            };
            let ord = if asc { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        // Tie-break on row id for deterministic, stable sequences.
        a.cmp(&b)
    }

    fn unknown_level_err(&self, attr: AttrId, level: usize) -> Error {
        Error::UnknownLevel {
            attribute: self.schema.column(attr).name.clone(),
            level: format!("#{level}"),
        }
    }

    fn incomplete_err(&self, attr: AttrId, level: usize, v: LevelValue, from: usize) -> Error {
        Error::IncompleteHierarchy {
            attribute: self.schema.column(attr).name.clone(),
            level: self.level_name(attr, level),
            value: self.render_level(attr, from, v),
        }
    }
}

/// A fluent constructor for [`EventDb`]: define columns, then build.
#[derive(Debug, Default)]
pub struct EventDbBuilder {
    columns: Vec<crate::schema::ColumnDef>,
}

impl EventDbBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a dimension column.
    pub fn dimension(mut self, name: &str, ctype: ColumnType) -> Self {
        self.columns
            .push(crate::schema::ColumnDef::dimension(name, ctype));
        self
    }

    /// Adds a measure column.
    pub fn measure(mut self, name: &str, ctype: ColumnType) -> Self {
        self.columns
            .push(crate::schema::ColumnDef::measure(name, ctype));
        self
    }

    /// Builds the (empty) database.
    pub fn build(self) -> Result<EventDb> {
        Ok(EventDb::new(Schema::new(self.columns)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::timestamp;

    fn transit_db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("time", ColumnType::Time)
            .dimension("card-id", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .measure("amount", ColumnType::Float)
            .build()
            .unwrap();
        db.set_time_hierarchy(0, TimeHierarchy::time_day_week())
            .unwrap();
        let rows = [
            (timestamp(2007, 10, 1, 0, 1, 0), 688, "Glenmont", "in", 0.0),
            (
                timestamp(2007, 10, 1, 0, 2, 0),
                688,
                "Pentagon",
                "out",
                -2.0,
            ),
            (
                timestamp(2007, 10, 2, 9, 0, 0),
                23456,
                "Pentagon",
                "in",
                0.0,
            ),
            (
                timestamp(2007, 10, 2, 9, 40, 0),
                23456,
                "Wheaton",
                "out",
                -3.5,
            ),
        ];
        for (t, c, l, a, m) in rows {
            db.push_row(&[
                Value::Time(t),
                Value::Int(c),
                Value::from(l),
                Value::from(a),
                Value::Float(m),
            ])
            .unwrap();
        }
        db.set_base_level_name(2, "station");
        db.attach_str_level(2, "district", |s| {
            if s == "Pentagon" || s == "Clarendon" {
                "D10".into()
            } else {
                "D20".into()
            }
        })
        .unwrap();
        db.set_base_level_name(1, "individual");
        db.attach_int_level(1, "fare-group", |id| {
            if id < 1000 {
                "regular".into()
            } else {
                "student".into()
            }
        })
        .unwrap();
        db
    }

    #[test]
    fn push_and_read_back() {
        let db = transit_db();
        assert_eq!(db.len(), 4);
        assert_eq!(db.value(0, 2), Value::from("Glenmont"));
        assert_eq!(db.value(1, 4), Value::Float(-2.0));
        assert_eq!(db.int(2, 1), Some(23456));
        assert_eq!(db.float(3, 4), Some(-3.5));
        assert!(db.heap_bytes() > 0);
    }

    #[test]
    fn arity_and_type_checks() {
        let mut db = transit_db();
        assert!(matches!(
            db.push_row(&[Value::Int(1)]),
            Err(Error::ArityMismatch { .. })
        ));
        let err = db
            .push_row(&[
                Value::from("not-a-time"),
                Value::Int(1),
                Value::from("X"),
                Value::from("in"),
                Value::Float(0.0),
            ])
            .unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
        assert_eq!(db.len(), 4, "failed pushes must not mutate");
    }

    #[test]
    fn time_literals_accepted_for_time_columns() {
        let mut db = transit_db();
        db.push_row(&[
            Value::from("2007-10-03T08:00"),
            Value::Int(99),
            Value::from("Wheaton"),
            Value::from("in"),
            Value::Int(0),
        ])
        .unwrap();
        assert_eq!(db.int(4, 0), Some(timestamp(2007, 10, 3, 8, 0, 0)));
    }

    #[test]
    fn level_resolution() {
        let db = transit_db();
        assert_eq!(db.level_by_name(2, "station").unwrap(), 0);
        assert_eq!(db.level_by_name(2, "district").unwrap(), 1);
        assert_eq!(db.level_by_name(1, "individual").unwrap(), 0);
        assert_eq!(db.level_by_name(1, "fare-group").unwrap(), 1);
        assert_eq!(db.level_by_name(0, "day").unwrap(), 1);
        assert_eq!(db.level_by_name(0, "week").unwrap(), 2);
        assert_eq!(db.level_by_name(0, "time").unwrap(), 0);
        assert!(db.level_by_name(2, "galaxy").is_err());
    }

    #[test]
    fn value_at_level_and_render() {
        let db = transit_db();
        // Pentagon and Clarendon share district D10; Glenmont is D20.
        let glen_d = db.value_at_level(0, 2, 1).unwrap();
        let pent_d = db.value_at_level(1, 2, 1).unwrap();
        assert_ne!(glen_d, pent_d);
        assert_eq!(db.render_level(2, 1, pent_d), "D10");
        assert_eq!(
            db.render_level(2, 0, db.value_at_level(0, 2, 0).unwrap()),
            "Glenmont"
        );
        // Fare groups: 688 is regular, 23456 is regular too (both even).
        let fg = db.value_at_level(0, 1, 1).unwrap();
        assert_eq!(db.render_level(1, 1, fg), "regular");
        // Day buckets.
        let d0 = db.value_at_level(0, 0, 1).unwrap();
        let d2 = db.value_at_level(2, 0, 1).unwrap();
        assert_eq!(d2 as i64 - d0 as i64, 1);
        assert_eq!(db.render_level(0, 1, d0), "2007-10-01");
    }

    #[test]
    fn map_up_matches_direct_bucketing() {
        let db = transit_db();
        let station = db.value_at_level(1, 2, 0).unwrap();
        let district = db.value_at_level(1, 2, 1).unwrap();
        assert_eq!(db.map_up(2, 0, station, 1).unwrap(), district);
        let raw = db.value_at_level(0, 0, 0).unwrap();
        let week = db.value_at_level(0, 0, 2).unwrap();
        assert_eq!(db.map_up(0, 0, raw, 2).unwrap(), week);
        let day = db.value_at_level(0, 0, 1).unwrap();
        assert_eq!(db.map_up(0, 1, day, 2).unwrap(), week);
        assert!(db.map_up(0, 2, week, 1).is_err());
    }

    #[test]
    fn domain_sizes() {
        let db = transit_db();
        assert_eq!(db.level_domain_size(2, 0), Some(3)); // 3 stations seen
        assert_eq!(db.level_domain_size(2, 1), Some(2)); // 2 districts
        assert_eq!(db.level_domain_size(1, 1), Some(2)); // 2 fare groups
        assert_eq!(db.level_domain_size(0, 1), None); // day buckets unbounded
        assert_eq!(db.level_domain_size(1, 0), None); // raw ints unbounded
    }

    #[test]
    fn stacked_str_levels() {
        let mut db = transit_db();
        db.attach_str_level(2, "region", |d| format!("R-{}", &d[..2]))
            .unwrap();
        assert_eq!(db.level_count(2), 3);
        let region = db.value_at_level(0, 2, 2).unwrap();
        assert_eq!(db.render_level(2, 2, region), "R-D2");
    }

    #[test]
    fn extend_str_level_after_append() {
        let mut db = transit_db();
        db.push_row(&[
            Value::Time(timestamp(2007, 10, 4, 0, 0, 0)),
            Value::Int(1),
            Value::from("Deanwood"), // new station, unmapped
            Value::from("in"),
            Value::Float(0.0),
        ])
        .unwrap();
        assert!(db.value_at_level(4, 2, 1).is_err());
        db.extend_str_level(2, |_| "D30".into()).unwrap();
        let v = db.value_at_level(4, 2, 1).unwrap();
        assert_eq!(db.render_level(2, 1, v), "D30");
    }

    #[test]
    fn int_mapping_extension() {
        let mut db = transit_db();
        db.push_row(&[
            Value::Time(timestamp(2007, 10, 4, 0, 0, 0)),
            Value::Int(777_777),
            Value::from("Wheaton"),
            Value::from("in"),
            Value::Float(0.0),
        ])
        .unwrap();
        assert!(db.value_at_level(4, 1, 1).is_err());
        db.add_int_mapping(1, 777_777, "senior").unwrap();
        let v = db.value_at_level(4, 1, 1).unwrap();
        assert_eq!(db.render_level(1, 1, v), "senior");
        assert_eq!(db.level_domain_size(1, 1), Some(3));
    }

    #[test]
    fn parse_level_value_inverts_render() {
        let db = transit_db();
        // Station and district.
        let v = db.parse_level_value(2, 0, "Pentagon").unwrap();
        assert_eq!(db.render_level(2, 0, v), "Pentagon");
        let d = db.parse_level_value(2, 1, "D10").unwrap();
        assert_eq!(db.render_level(2, 1, d), "D10");
        // Day bucket from a plain date.
        let day = db.parse_level_value(0, 1, "2007-10-01").unwrap();
        assert_eq!(db.render_level(0, 1, day), "2007-10-01");
        // Card id and fare group.
        assert_eq!(db.parse_level_value(1, 0, "688").unwrap(), 688);
        let fg = db.parse_level_value(1, 1, "regular").unwrap();
        assert_eq!(db.render_level(1, 1, fg), "regular");
        // Unknown values error.
        assert!(db.parse_level_value(2, 0, "Atlantis").is_err());
        assert!(db.parse_level_value(1, 0, "not-a-number").is_err());
    }

    #[test]
    fn cmp_rows_orders_by_keys() {
        use std::cmp::Ordering;
        let db = transit_db();
        assert_eq!(db.cmp_rows(0, 1, &[(0, true)]), Ordering::Less);
        assert_eq!(db.cmp_rows(0, 1, &[(0, false)]), Ordering::Greater);
        // Same card-id → falls through to row-id tiebreak.
        assert_eq!(db.cmp_rows(0, 1, &[(1, true)]), Ordering::Less);
        // String ordering is lexicographic, not id-order.
        assert_eq!(db.cmp_rows(0, 1, &[(2, true)]), Ordering::Less); // Glenmont < Pentagon
    }

    #[test]
    fn version_bumps_on_mutation() {
        let mut db = transit_db();
        let v = db.version();
        db.push_row(&[
            Value::Time(0),
            Value::Int(0),
            Value::from("Wheaton"),
            Value::from("in"),
            Value::Float(0.0),
        ])
        .unwrap();
        assert!(db.version() > v);
    }
}
