//! Query resource governance: deadlines, cell budgets and cooperative
//! cancellation.
//!
//! A production engine must treat runaway queries as the common case: a
//! pattern template with explosive match counts, an APPEND chain that
//! inflates the pattern length, or a grouping that materialises millions of
//! cells can otherwise only be stopped by killing the process. The
//! [`QueryGovernor`] is created per query from the engine configuration and
//! threaded by reference through every construction hot loop (sequence
//! formation, occurrence enumeration, counter scans, index builds and the
//! parallel workers). Loops call [`QueryGovernor::tick`] once per unit of
//! work; the deadline and the cancel flag are actually consulted only every
//! [`CHECK_INTERVAL`] ticks, so an over-limit query aborts within a bounded
//! number of events scanned while the per-event cost stays a decrement and
//! a branch.
//!
//! The cell budget is charged eagerly via [`QueryGovernor::charge_cells`]
//! whenever a loop materialises a new cell-like entry (an aggregation cell,
//! a sequence cluster, a dense counter block), so memory growth is bounded
//! even when time is not.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{Error, Result};
use crate::metrics::QueryRecorder;

/// How many [`QueryGovernor::tick`] calls elapse between two consultations
/// of the wall clock and the cancel flag. An over-limit query is therefore
/// detected after scanning at most `CHECK_INTERVAL` further events per
/// worker.
pub const CHECK_INTERVAL: u32 = 1024;

/// A cooperative cancellation flag, cheaply cloneable and sharable across
/// threads. Cancelling is a one-way latch until [`CancelToken::reset`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every query observing this token.
    pub fn cancel(&self) {
        // ord: standalone advisory flag — no other memory is published with it; cooperative checks tolerate a bounded-stale read
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Clears the flag so subsequent queries run normally.
    pub fn reset(&self) {
        // ord: see cancel() — advisory flag, no associated payload
        self.flag.store(false, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        // ord: a stale false only defers the abort to the next check interval; no data depends on this load
        self.flag.load(Ordering::Relaxed)
    }
}

/// Per-query resource limits plus consumption counters.
///
/// The governor is shared by reference across the parallel construction
/// workers of one query; all counters are atomic. A `None` limit means
/// unbounded, and with no limits and no cancel token every check is a
/// single relaxed atomic decrement.
#[derive(Debug)]
pub struct QueryGovernor {
    deadline: Option<Instant>,
    timeout_ms: u64,
    budget_cells: Option<u64>,
    cancel: Option<CancelToken>,
    cells: AtomicU64,
    events: AtomicU64,
    /// Countdown shared across ticks; hits zero every `CHECK_INTERVAL`.
    countdown: AtomicU64,
    /// Observability recorder for this query, if profiling is enabled.
    /// Piggy-backs on the governor because the governor is already threaded
    /// by reference through every construction hot loop and worker.
    recorder: Option<Arc<QueryRecorder>>,
}

impl QueryGovernor {
    /// A governor enforcing the given limits. `timeout` starts counting
    /// immediately (construction time is query start time).
    pub fn new(
        timeout: Option<Duration>,
        budget_cells: Option<u64>,
        cancel: Option<CancelToken>,
    ) -> Self {
        QueryGovernor {
            deadline: timeout.map(|t| Instant::now() + t),
            timeout_ms: timeout.map_or(0, |t| t.as_millis() as u64),
            budget_cells,
            cancel,
            cells: AtomicU64::new(0),
            events: AtomicU64::new(0),
            countdown: AtomicU64::new(CHECK_INTERVAL as u64),
            recorder: None,
        }
    }

    /// Attaches a per-query observability recorder; construction loops
    /// reach it through [`QueryGovernor::recorder`].
    pub fn with_recorder(mut self, recorder: Arc<QueryRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached observability recorder, if profiling is enabled for
    /// this query.
    #[inline]
    pub fn recorder(&self) -> Option<&QueryRecorder> {
        self.recorder.as_deref()
    }

    /// A governor with no limits (used by the compatibility wrappers of
    /// pre-governance entry points).
    pub fn unbounded() -> Self {
        QueryGovernor::new(None, None, None)
    }

    /// Whether any limit or token is configured at all.
    pub fn is_bounded(&self) -> bool {
        self.deadline.is_some() || self.budget_cells.is_some() || self.cancel.is_some()
    }

    /// Marks one unit of scan work (an event visited, a match-window
    /// attempted, a posting-list entry verified). The deadline and cancel
    /// flag are consulted every [`CHECK_INTERVAL`] ticks.
    #[inline]
    pub fn tick(&self) -> Result<()> {
        // ord: pure work counters — workers only accumulate; totals are read after the query joins its workers, and fetch_sub's atomicity alone guarantees exactly one thread sees each countdown value
        self.events.fetch_add(1, Ordering::Relaxed);
        if self.countdown.fetch_sub(1, Ordering::Relaxed) != 1 {
            return Ok(());
        }
        // ord: the refill only paces future checks; racing ticks at worst check early, never skip past a full interval unobserved
        self.countdown
            .store(CHECK_INTERVAL as u64, Ordering::Relaxed);
        self.check_now()
    }

    /// Consults the deadline and the cancel flag immediately (used at loop
    /// boundaries — group starts, worker spawn/join — where a prompt check
    /// is cheap).
    pub fn check_now(&self) -> Result<()> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Err(Error::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            let now = Instant::now();
            if now >= d {
                let over = now.duration_since(d).as_millis() as u64;
                return Err(Error::ResourceExhausted {
                    resource: "time_ms",
                    limit: self.timeout_ms,
                    consumed: self.timeout_ms + over,
                });
            }
        }
        Ok(())
    }

    /// Charges `n` newly materialised cells against the budget. Cells are
    /// counted across all workers of the query; thread-local duplicates of
    /// the same logical cell may be charged more than once, so the budget
    /// bounds memory growth rather than the exact result cardinality.
    pub fn charge_cells(&self, n: u64) -> Result<()> {
        // ord: fetch_add's return value is exact for this thread's charge; the budget comparison needs no cross-variable ordering
        let total = self.cells.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(limit) = self.budget_cells {
            if total > limit {
                return Err(Error::ResourceExhausted {
                    resource: "cells",
                    limit,
                    consumed: total,
                });
            }
        }
        Ok(())
    }

    /// Cells charged so far.
    pub fn cells_consumed(&self) -> u64 {
        // ord: diagnostic read; exact totals are only read after worker join, which synchronizes
        self.cells.load(Ordering::Relaxed)
    }

    /// Scan-work units ticked so far.
    pub fn events_ticked(&self) -> u64 {
        // ord: see cells_consumed()
        self.events.load(Ordering::Relaxed)
    }
}

impl Default for QueryGovernor {
    fn default() -> Self {
        QueryGovernor::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_trips() {
        let g = QueryGovernor::unbounded();
        for _ in 0..(CHECK_INTERVAL * 3) {
            g.tick().unwrap();
        }
        g.charge_cells(u64::MAX / 2).unwrap();
        assert!(!g.is_bounded());
        assert_eq!(g.events_ticked(), (CHECK_INTERVAL * 3) as u64);
    }

    #[test]
    fn expired_deadline_trips_within_one_interval() {
        let g = QueryGovernor::new(Some(Duration::ZERO), None, None);
        let mut failed_at = None;
        for i in 0..=(CHECK_INTERVAL as usize) {
            if g.tick().is_err() {
                failed_at = Some(i);
                break;
            }
        }
        let at = failed_at.expect("deadline must trip within CHECK_INTERVAL ticks");
        assert!(at < CHECK_INTERVAL as usize + 1, "bounded overrun: {at}");
        // The error is typed.
        let err = g.check_now().unwrap_err();
        assert!(matches!(
            err,
            Error::ResourceExhausted {
                resource: "time_ms",
                ..
            }
        ));
    }

    #[test]
    fn cell_budget_trips_exactly() {
        let g = QueryGovernor::new(None, Some(10), None);
        g.charge_cells(10).unwrap();
        let err = g.charge_cells(1).unwrap_err();
        assert_eq!(
            err,
            Error::ResourceExhausted {
                resource: "cells",
                limit: 10,
                consumed: 11
            }
        );
    }

    #[test]
    fn cancel_token_latches_and_resets() {
        let token = CancelToken::new();
        let g = QueryGovernor::new(None, None, Some(token.clone()));
        g.check_now().unwrap();
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(g.check_now().unwrap_err(), Error::Cancelled);
        token.reset();
        g.check_now().unwrap();
    }

    #[test]
    fn cancellation_observed_across_threads() {
        let token = CancelToken::new();
        let g = QueryGovernor::new(None, None, Some(token.clone()));
        std::thread::scope(|s| {
            s.spawn(|| token.cancel());
        });
        assert_eq!(g.check_now().unwrap_err(), Error::Cancelled);
        token.reset();
    }
}
