//! Property tests for the eventdb substrate: time arithmetic, dictionary
//! interning, the LRU cache against a naive model, sequence-query
//! determinism and persistence round trips.

use proptest::prelude::*;

use solap_eventdb::lru::LruCache;
use solap_eventdb::{
    build_sequence_groups, persist, time, AttrLevel, ColumnType, Dictionary, EventDb,
    EventDbBuilder, Pred, SeqQuerySpec, SortKey, Value,
};

proptest! {
    /// Civil-date conversion round-trips across ±4000 years.
    #[test]
    fn civil_roundtrip(z in -1_500_000i64..1_500_000) {
        let (y, m, d) = time::civil_from_days(z);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        prop_assert_eq!(time::days_from_civil(y, m, d), z);
    }

    /// format_timestamp ∘ parse_timestamp is the identity on seconds.
    #[test]
    fn timestamp_roundtrip(t in -40_000_000_000i64..40_000_000_000) {
        let text = time::format_timestamp(t);
        prop_assert_eq!(time::parse_timestamp(&text), Some(t), "{}", text);
    }

    /// Buckets are monotone non-decreasing in the timestamp.
    #[test]
    fn buckets_monotone(a in -10_000_000_000i64..10_000_000_000, delta in 0i64..100_000_000) {
        let b = a + delta;
        prop_assert!(time::day_of(a) <= time::day_of(b));
        prop_assert!(time::week_of(a) <= time::week_of(b));
        prop_assert!(time::month_of(a) <= time::month_of(b));
        prop_assert!(time::quarter_of(a) <= time::quarter_of(b));
        // And coarser buckets refine consistently: same day ⇒ same week.
        if time::day_of(a) == time::day_of(b) {
            prop_assert_eq!(time::week_of(a), time::week_of(b));
        }
    }

    /// Dictionary interning: ids are dense, stable and resolve back.
    #[test]
    fn dictionary_model(words in prop::collection::vec("[a-z]{1,6}", 0..60)) {
        let mut dict = Dictionary::new();
        let mut model: Vec<String> = Vec::new();
        for w in &words {
            let id = dict.intern(w);
            if let Some(pos) = model.iter().position(|m| m == w) {
                prop_assert_eq!(id as usize, pos);
            } else {
                prop_assert_eq!(id as usize, model.len());
                model.push(w.clone());
            }
        }
        prop_assert_eq!(dict.len(), model.len());
        for (i, w) in model.iter().enumerate() {
            prop_assert_eq!(dict.resolve(i as u32), Some(w.as_str()));
            prop_assert_eq!(dict.lookup(w), Some(i as u32));
        }
    }

    /// The LRU cache agrees with a naive model on membership and values.
    #[test]
    fn lru_against_model(
        capacity in 1usize..8,
        ops in prop::collection::vec((0u8..3, 0u16..12, 0u32..100), 0..120),
    ) {
        let mut cache: LruCache<u16, u32> = LruCache::new(capacity);
        // Model: vector of (key, value) in recency order (front = MRU).
        let mut model: Vec<(u16, u32)> = Vec::new();
        for (op, k, v) in ops {
            match op {
                0 => {
                    // insert
                    model.retain(|(mk, _)| *mk != k);
                    model.insert(0, (k, v));
                    model.truncate(capacity);
                    cache.insert(k, v);
                }
                1 => {
                    // get
                    let got = cache.get(&k).copied();
                    let expected = model.iter().position(|(mk, _)| *mk == k).map(|i| {
                        let e = model.remove(i);
                        model.insert(0, e);
                        model[0].1
                    });
                    prop_assert_eq!(got, expected);
                }
                _ => {
                    // remove
                    let got = cache.remove(&k);
                    let expected = model
                        .iter()
                        .position(|(mk, _)| *mk == k)
                        .map(|i| model.remove(i).1);
                    prop_assert_eq!(got, expected);
                }
            }
            prop_assert_eq!(cache.len(), model.len());
        }
    }
}

fn random_db(rows: &[(u8, u8, bool)]) -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("item", ColumnType::Str)
        .dimension("flag", ColumnType::Str)
        .measure("w", ColumnType::Float)
        .build()
        .unwrap();
    for (i, &(sid, item, flag)) in rows.iter().enumerate() {
        db.push_row(&[
            Value::Int(sid as i64 % 5),
            Value::Str(format!("i{item}", item = item % 7)),
            Value::Str(if flag { "a".into() } else { "b".into() }),
            Value::Float(i as f64 * 0.5),
        ])
        .unwrap();
    }
    db.attach_str_level(1, "bucket", |n| format!("b{}", n.len() % 2))
        .unwrap();
    db
}

proptest! {
    /// Sequence-group construction is deterministic and partitions exactly
    /// the selected rows.
    #[test]
    fn seqquery_partitions(rows in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..60)) {
        let db = random_db(&rows);
        let spec = SeqQuerySpec {
            filter: Pred::True,
            cluster_by: vec![AttrLevel::new(0, 0)],
            sequence_by: vec![SortKey { attr: 0, ascending: true }],
            group_by: vec![AttrLevel::new(2, 0)],
        };
        let a = build_sequence_groups(&db, &spec).unwrap();
        let b = build_sequence_groups(&db, &spec).unwrap();
        let rows_of = |g: &solap_eventdb::SequenceGroups| -> Vec<Vec<u32>> {
            g.iter_sequences().map(|s| s.rows.clone()).collect()
        };
        prop_assert_eq!(rows_of(&a), rows_of(&b));
        // Every row appears in exactly one sequence.
        let mut seen = vec![false; db.len()];
        for s in a.iter_sequences() {
            for &r in &s.rows {
                prop_assert!(!seen[r as usize], "row {} duplicated", r);
                seen[r as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
        // Sids are dense and the lookup is consistent.
        for s in a.iter_sequences() {
            prop_assert_eq!(&a.sequence(s.sid).unwrap().rows, &s.rows);
        }
    }

    /// Persistence round-trips arbitrary databases value-identically.
    #[test]
    fn persist_roundtrip(rows in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..40)) {
        let db = random_db(&rows);
        let mut buf = Vec::new();
        persist::save(&db, &mut buf).unwrap();
        let loaded = persist::load(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(db.len(), loaded.len());
        for row in 0..db.len() as u32 {
            for attr in 0..db.schema().len() as u32 {
                prop_assert_eq!(db.value(row, attr), loaded.value(row, attr));
            }
            let v1 = db.value_at_level(row, 1, 1).unwrap();
            let v2 = loaded.value_at_level(row, 1, 1).unwrap();
            prop_assert_eq!(db.render_level(1, 1, v1), loaded.render_level(1, 1, v2));
        }
    }
}
