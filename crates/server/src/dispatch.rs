//! The shared statement-dispatch layer.
//!
//! Every statement surface — the interactive REPL, `solap --eval`
//! scripts, and server connections — funnels through [`dispatch`]: one
//! statement string in, one structured [`Response`] out. The REPL prints
//! `Response::body`, the server serializes the whole response as a JSON
//! line; neither has execution logic of its own, so the three surfaces
//! cannot drift apart.
//!
//! A statement is either a dot-command (`.op append Z location station`,
//! `.strategy ii`, …) or a Figure-3 query (optionally prefixed with
//! `EXPLAIN` / `PROFILE`). Engine-lifecycle commands (`.gen`, `.save`,
//! `.load`) are *not* handled here: they replace or persist the engine
//! itself, which only the process that owns it may do, so the local CLI
//! intercepts them before dispatch and every other surface receives a
//! typed `unsupported` error.

use std::sync::Arc;

use solap_core::{Engine, PlanReport, Session};
use solap_eventdb::CancelToken;

use crate::command::{self, ArgError};
use crate::json::escape;

/// The statement surfaces' shared per-connection state: a [`Session`]
/// (current spec, cuboid, history, per-session config) plus display
/// state that belongs to the surface rather than the engine.
pub struct SessionCtx {
    session: Session,
    /// Whether every executed query also renders its profile
    /// (`.profile on|off`).
    pub show_profile: bool,
    /// Display labels for `.history`, one per navigation step (regex
    /// queries run outside [`Session`] history, so the surface keeps its
    /// own parallel list).
    labels: Vec<String>,
}

impl SessionCtx {
    /// Opens a fresh context on a shared engine.
    pub fn new(engine: Arc<Engine>) -> Self {
        SessionCtx {
            session: Session::new(engine),
            show_profile: false,
            labels: Vec::new(),
        }
    }

    /// The underlying navigation session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the underlying session (tests, config pokes).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// The session's cancel token — what a server trips when this
    /// context's client disconnects mid-query.
    pub fn cancel_token(&self) -> CancelToken {
        self.session.config().cancel.clone()
    }
}

/// The outcome of dispatching one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Whether the statement succeeded.
    pub ok: bool,
    /// The stable machine-readable error code when `!ok` (see
    /// [`solap_eventdb::Error::code`] plus the surface codes `usage`,
    /// `unsupported`, `over_capacity`, `too_large`, `bad_request`,
    /// `shutting_down`).
    pub code: Option<String>,
    /// Rendered output (success) or the error message (failure).
    pub body: String,
    /// The query's profile as a JSON object, when profiling was on.
    pub profile_json: Option<String>,
    /// The structured plan as a JSON object (`EXPLAIN` statements).
    pub plan_json: Option<String>,
    /// Whether the surface should close (`.quit` / `.exit`).
    pub quit: bool,
}

impl Response {
    /// A successful response carrying `body`.
    pub fn ok(body: impl Into<String>) -> Self {
        Response {
            ok: true,
            code: None,
            body: body.into(),
            profile_json: None,
            plan_json: None,
            quit: false,
        }
    }

    /// A failed response with a stable `code` and a message.
    pub fn err(code: impl Into<String>, message: impl Into<String>) -> Self {
        Response {
            ok: false,
            code: Some(code.into()),
            body: message.into(),
            profile_json: None,
            plan_json: None,
            quit: false,
        }
    }

    /// Serializes the response as a newline-terminated wire line, ready
    /// to append to a connection's write buffer.
    pub fn wire_line(&self) -> String {
        let mut line = self.to_wire();
        line.push('\n');
        line
    }

    /// Serializes the response as one JSON line (without the newline).
    pub fn to_wire(&self) -> String {
        let mut out = String::with_capacity(self.body.len() + 64);
        out.push_str("{\"ok\":");
        out.push_str(if self.ok { "true" } else { "false" });
        if let Some(code) = &self.code {
            out.push_str(",\"code\":\"");
            out.push_str(&escape(code));
            out.push('"');
        }
        if self.ok {
            out.push_str(",\"body\":\"");
            out.push_str(&escape(&self.body));
            out.push('"');
        } else {
            out.push_str(",\"error\":\"");
            out.push_str(&escape(&self.body));
            out.push('"');
        }
        if let Some(p) = &self.profile_json {
            out.push_str(",\"profile\":");
            out.push_str(p);
        }
        if let Some(p) = &self.plan_json {
            out.push_str(",\"plan\":");
            out.push_str(p);
        }
        if self.quit {
            out.push_str(",\"quit\":true");
        }
        out.push('}');
        out
    }
}

/// Renders a structured [`PlanReport`] as the human EXPLAIN text. The
/// engine builds reports; the statement surfaces own presentation — this
/// renderer is the text one, [`plan_to_json`] the wire one.
pub fn render_plan_text(report: &PlanReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("query:\n");
    for line in report.query.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("plan:\n");
    let _ = writeln!(out, "  strategy: {} ({})", report.strategy, report.why);
    let _ = writeln!(
        out,
        "  backend: {}, threads: {}",
        report.backend, report.threads
    );
    let _ = writeln!(
        out,
        "  step 1-2 (select + cluster): scan {} events, filter {}",
        report.events, report.filter
    );
    let _ = writeln!(
        out,
        "  step 3-4 (order + form groups): {} sort key(s), {} group attr(s)",
        report.sort_keys, report.group_attrs
    );
    let _ = writeln!(
        out,
        "  pattern: {} template, m = {}",
        report.template_kind, report.m
    );
    if let Some(ms) = report.min_support {
        let _ = writeln!(out, "  iceberg: drop cells with COUNT < {ms}");
    }
    let _ = writeln!(
        out,
        "  caches: cuboid repo {}, sequence cache shared per (filter, cluster, order, group)",
        if report.use_cuboid_repo { "on" } else { "off" }
    );
    let _ = writeln!(out, "  alternatives ({}):", report.mode);
    for alt in &report.alternatives {
        let _ = writeln!(
            out,
            "    {} {:<5} ~{:<10} {}",
            if alt.chosen { "->" } else { "  " },
            alt.label,
            solap_eventdb::metrics::format_nanos(alt.cost.total_nanos as u64),
            alt.detail
        );
    }
    out
}

/// Serializes a [`PlanReport`] as one JSON object — the wire protocol's
/// `"plan"` field on EXPLAIN responses.
pub fn plan_to_json(report: &PlanReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"mode\":\"{}\",\"strategy\":\"{}\",\"why\":\"{}\",\"backend\":\"{}\",\
         \"threads\":{},\"events\":{},\"template\":\"{}\",\"m\":{},\"alternatives\":[",
        escape(report.mode),
        escape(&report.strategy),
        escape(&report.why),
        escape(&report.backend),
        report.threads,
        report.events,
        escape(&report.template_kind),
        report.m
    );
    for (i, alt) in report.alternatives.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"detail\":\"{}\",\"cost_ns\":{},\"chosen\":{}}}",
            escape(&alt.label),
            escape(&alt.detail),
            alt.cost.total_nanos as u64,
            alt.chosen
        );
    }
    out.push_str("]}");
    out
}

/// An in-flight dispatch failure, before it is rendered as a [`Response`].
struct Fail {
    code: String,
    msg: String,
}

impl From<solap_eventdb::Error> for Fail {
    fn from(e: solap_eventdb::Error) -> Self {
        Fail {
            code: e.code().to_owned(),
            msg: e.to_string(),
        }
    }
}

impl From<ArgError> for Fail {
    fn from(e: ArgError) -> Self {
        Fail {
            code: e.code().to_owned(),
            msg: e.message(),
        }
    }
}

fn usage(msg: impl Into<String>) -> Fail {
    Fail {
        code: "usage".into(),
        msg: msg.into(),
    }
}

/// Executes one statement against the session context.
///
/// Never panics on bad input and never returns transport-level errors:
/// everything the statement can do wrong is reported as a `!ok`
/// [`Response`] with a stable code.
pub fn dispatch(ctx: &mut SessionCtx, line: &str) -> Response {
    let line = line.trim();
    if line.is_empty() {
        return Response::ok("");
    }
    let result = if let Some(rest) = line.strip_prefix('.') {
        dispatch_command(ctx, rest)
    } else {
        dispatch_query(ctx, line)
    };
    result.unwrap_or_else(|f| Response::err(f.code, f.msg))
}

fn dispatch_command(ctx: &mut SessionCtx, rest: &str) -> Result<Response, Fail> {
    use std::fmt::Write as _;
    let mut parts = rest.split_whitespace();
    let cmd = parts.next().unwrap_or("");
    let args: Vec<&str> = parts.collect();
    match cmd {
        "help" => Ok(Response::ok(command::help_text())),
        "quit" | "exit" => {
            let mut r = Response::ok("");
            r.quit = true;
            Ok(r)
        }
        "gen" | "save" | "load" => Err(Fail {
            code: "unsupported".into(),
            msg: format!(
                "`.{cmd}` manages the engine's dataset and is only available \
                 in the local CLI, not through a session surface"
            ),
        }),
        "schema" => {
            let db = ctx.session.engine().db();
            let mut out = String::new();
            for (i, col) in db.schema().columns().iter().enumerate() {
                let levels: Vec<String> = (0..db.level_count(i as u32))
                    .map(|l| db.level_name(i as u32, l))
                    .collect();
                // Writing to a String is infallible.
                let _ = writeln!(
                    out,
                    "  {:<14} {:<6} {:?}  levels: {}",
                    col.name,
                    col.ctype.name(),
                    col.role,
                    levels.join(" → ")
                );
            }
            Ok(Response::ok(out))
        }
        "strategy" => {
            use solap_core::Strategy;
            let s = match args.first().copied() {
                Some("cb") => Strategy::CounterBased,
                Some("ii") => Strategy::InvertedIndex,
                Some("auto") => Strategy::Auto,
                other => {
                    return Err(usage(format!(
                        "usage: .strategy cb|ii|auto (got {other:?})"
                    )))
                }
            };
            ctx.session.config_mut().strategy = s;
            Ok(Response::ok(""))
        }
        "backend" => {
            use solap_index::SetBackend;
            let b = match args.first().copied().and_then(SetBackend::parse) {
                Some(b) => b,
                None => {
                    return Err(usage(format!(
                        "usage: .backend list|bitmap|compressed|auto (got {:?})",
                        args.first()
                    )))
                }
            };
            ctx.session.config_mut().backend = b;
            Ok(Response::ok(""))
        }
        "index" => {
            let store = ctx.session.engine().index_store();
            let (hits, misses) = store.stats();
            Ok(Response::ok(format!(
                "backend: {:?}\ncached indices: {}\ncached bytes: {}\nstore hits: {}\nstore misses: {}\n",
                ctx.session.config().backend,
                store.len(),
                store.total_bytes(),
                hits,
                misses
            )))
        }
        "counters" => {
            use solap_core::cb::CounterMode;
            let m = match args.first().copied() {
                Some("hash") => CounterMode::Hash,
                Some("dense") => CounterMode::Dense,
                Some("auto") => CounterMode::Auto,
                other => {
                    return Err(usage(format!(
                        "usage: .counters hash|dense|auto (got {other:?})"
                    )))
                }
            };
            ctx.session.config_mut().counter_mode = m;
            Ok(Response::ok(""))
        }
        "threads" => {
            let n: usize = args
                .first()
                .ok_or_else(|| usage("usage: .threads N"))?
                .parse()
                .map_err(|_| usage("usage: .threads N (N ≥ 1)"))?;
            ctx.session.config_mut().threads = n.max(1);
            Ok(Response::ok(format!(
                "worker threads: {}\n",
                ctx.session.config().threads
            )))
        }
        "timeout" => {
            let ms: u64 = args
                .first()
                .ok_or_else(|| usage("usage: .timeout MS (0 = off)"))?
                .parse()
                .map_err(|_| usage("usage: .timeout MS (0 = off)"))?;
            ctx.session.config_mut().timeout =
                (ms > 0).then(|| std::time::Duration::from_millis(ms));
            Ok(Response::ok(match ms {
                0 => "query timeout: off\n".to_owned(),
                _ => format!("query timeout: {ms} ms\n"),
            }))
        }
        "budget" => {
            let cells: u64 = args
                .first()
                .ok_or_else(|| usage("usage: .budget CELLS (0 = off)"))?
                .parse()
                .map_err(|_| usage("usage: .budget CELLS (0 = off)"))?;
            ctx.session.config_mut().budget_cells = (cells > 0).then_some(cells);
            Ok(Response::ok(match cells {
                0 => "cell budget: off\n".to_owned(),
                _ => format!("cell budget: {cells} cells\n"),
            }))
        }
        "op" => {
            let db = ctx.session.engine_arc();
            let op = command::parse_op(&db.db(), &args, ctx.session.spec())?;
            let result = ctx.session.apply(op.clone())?;
            let spec = ctx.session.spec().ok_or_else(|| Fail {
                code: "internal".into(),
                msg: "apply left no current spec".into(),
            })?;
            let table = result.cuboid.tabulate(&db.db(), 10, true);
            ctx.labels
                .push(format!("{} → {}", op.name(), spec.template.render_head()));
            Ok(Response::ok(format!(
                "{}: {} cells via {} in {:?} ({} sequences scanned)\n{table}",
                op.name(),
                result.cuboid.len(),
                result.stats.strategy,
                result.stats.elapsed,
                result.stats.sequences_scanned
            )))
        }
        "back" => {
            if ctx.session.back()? {
                ctx.labels.pop();
                let head = ctx
                    .session
                    .spec()
                    .map(|s| s.template.render_head())
                    .unwrap_or_default();
                Ok(Response::ok(format!("back to: {head}\n")))
            } else {
                Ok(Response::ok("at the start of history\n"))
            }
        }
        "show" => {
            let n: usize = args
                .first()
                .map(|s| s.parse().map_err(|_| usage("bad row count")))
                .transpose()?
                .unwrap_or(20);
            let result = ctx.session.reexecute()?;
            let db = ctx.session.engine().db();
            Ok(Response::ok(result.cuboid.tabulate(&db, n, true)))
        }
        "spec" => {
            let spec = ctx
                .session
                .spec()
                .ok_or_else(|| usage("no current query"))?;
            Ok(Response::ok(spec.render(&ctx.session.engine().db())))
        }
        "stats" => {
            let engine = ctx.session.engine();
            let (sh, sm) = engine.sequence_cache().stats();
            let (ih, im) = engine.index_store().stats();
            let cr = engine.cuboid_repo().stats();
            Ok(Response::ok(format!(
                "sequence cache: {} entries, {sh} hits / {sm} misses\n\
                 index store:    {} indices, {:.1} KiB, {ih} hits / {im} misses\n\
                 cuboid repo:    {} cuboids, {:.1} KiB, {} hits / {} misses\n",
                engine.sequence_cache().len(),
                engine.index_store().len(),
                engine.index_store().total_bytes() as f64 / 1024.0,
                cr.entries,
                cr.bytes as f64 / 1024.0,
                cr.hits,
                cr.misses,
            )))
        }
        "repo" => {
            let s = ctx.session.engine().cuboid_repo().stats();
            Ok(Response::ok(format!(
                "policy:    {}\n\
                 entries:   {}\n\
                 bytes:     {:.1} KiB\n\
                 hit rate:  {:.1}% ({} hits / {} misses)\n\
                 evictions: {}\n",
                s.policy.name(),
                s.entries,
                s.bytes as f64 / 1024.0,
                s.hit_rate() * 100.0,
                s.hits,
                s.misses,
                s.evictions,
            )))
        }
        "history" => {
            let mut out = String::new();
            for (i, h) in ctx.labels.iter().enumerate() {
                let _ = writeln!(out, "  {i:>3}. {h}");
            }
            Ok(Response::ok(out))
        }
        "profile" => match args.first().copied() {
            Some("on") => {
                // Detailed counters are needed for the print-out to carry
                // information, so turn them on too.
                solap_eventdb::metrics::set_enabled(true);
                ctx.show_profile = true;
                Ok(Response::ok("per-query profile: on\n"))
            }
            Some("off") => {
                ctx.show_profile = false;
                Ok(Response::ok("per-query profile: off\n"))
            }
            other => Err(usage(format!("usage: .profile on|off (got {other:?})"))),
        },
        "metrics" => Ok(Response::ok(solap_eventdb::metrics::global().export_text())),
        "online" => {
            let chunk: usize = args
                .first()
                .map(|s| {
                    s.parse()
                        .map_err(|_| usage("usage: .online CHUNK (a positive sequence count)"))
                })
                .transpose()?
                .unwrap_or(64);
            let spec = ctx
                .session
                .spec()
                .ok_or_else(|| usage("no current query — run a COUNT query first"))?
                .clone();
            let engine = ctx.session.engine_arc();
            let groups = engine.sequence_groups(&spec)?;
            let db = engine.db();
            let mut body = String::new();
            let cuboid = solap_core::online::online_count(&db, &groups, &spec, chunk, |snap| {
                let _ = writeln!(
                    body,
                    "  {:>5.1}% processed → {} cells (estimated)",
                    snap.progress * 100.0,
                    snap.estimate.cells.len()
                );
            })?;
            body.push_str(&cuboid.tabulate(&db, 10, true));
            Ok(Response::ok(body))
        }
        other => Err(usage(format!("unknown command `.{other}` — try `.help`"))),
    }
}

fn dispatch_query(ctx: &mut SessionCtx, text: &str) -> Result<Response, Fail> {
    let text = text.trim_end_matches(';');
    // Ingestion: `STORE INTO Event VALUES …` goes through the engine's
    // store path (WAL-committed on durable engines) instead of the query
    // planner.
    let head = text.split_whitespace().next().unwrap_or("");
    if head.eq_ignore_ascii_case("STORE") {
        return dispatch_store(ctx, text);
    }
    // Regex-template queries (the §3.2 extension) use `CUBOID BY REGEX`
    // and run on the counter-based path.
    if text.to_ascii_uppercase().contains("CUBOID BY REGEX") {
        let head = text.split_whitespace().next().unwrap_or("");
        if head.eq_ignore_ascii_case("EXPLAIN") || head.eq_ignore_ascii_case("PROFILE") {
            return Err(usage(
                "EXPLAIN/PROFILE is not supported for regex-template queries \
                 (they run outside the planned engine path)",
            ));
        }
        return dispatch_regex_query(ctx, text);
    }
    let engine = ctx.session.engine_arc();
    let stmt = solap_query::parse_statement(&engine.db(), text)?;
    if stmt.mode == solap_query::ExplainMode::Explain {
        // EXPLAIN builds the structured plan without executing anything;
        // this layer renders it for humans and the wire alike.
        let report = ctx.session.explain(&stmt.spec)?;
        let mut response = Response::ok(render_plan_text(&report));
        response.plan_json = Some(plan_to_json(&report));
        return Ok(response);
    }
    let spec = stmt.spec;
    let result = ctx.session.query(spec)?;
    let spec = ctx.session.spec().ok_or_else(|| Fail {
        code: "internal".into(),
        msg: "query left no current spec".into(),
    })?;
    let table = result.cuboid.tabulate(&engine.db(), 15, true);
    ctx.labels.push(spec.template.render_head());
    let mut body = format!(
        "{} cells via {} in {:?} ({} sequences scanned, {} KiB of indices built)\n",
        result.cuboid.len(),
        result.stats.strategy,
        result.stats.elapsed,
        result.stats.sequences_scanned,
        result.stats.index_bytes_built / 1024
    );
    let mut response = Response::ok("");
    if stmt.mode == solap_query::ExplainMode::Profile || ctx.show_profile {
        body.push_str(&result.profile.render_text(false));
        response.profile_json = Some(result.profile.to_json());
    }
    body.push_str(&table);
    response.body = body;
    Ok(response)
}

fn dispatch_store(ctx: &mut SessionCtx, text: &str) -> Result<Response, Fail> {
    let engine = ctx.session.engine_arc();
    let stmt = solap_query::parse_store(&engine.db(), text)?;
    let start = std::time::Instant::now();
    // Per-session config so session-level budgets and cancellation govern
    // ingestion exactly like queries.
    let report = engine.append_events_configured(&stmt.rows, ctx.session.config())?;
    Ok(Response::ok(format!(
        "stored {} events in {:?} ({}, version {}) — {} group sets extended, \
         {} indices extended, {} rebuild fallbacks\n",
        report.appended,
        start.elapsed(),
        if report.durable {
            "durable"
        } else {
            "in-memory"
        },
        report.version,
        report.groups_extended,
        report.indexes_extended,
        report.rebuild_fallbacks,
    )))
}

fn dispatch_regex_query(ctx: &mut SessionCtx, text: &str) -> Result<Response, Fail> {
    let engine = ctx.session.engine_arc();
    let db = engine.db();
    let q = solap_query::parse_regex_query(&db, text)?;
    let start = std::time::Instant::now();
    let groups = solap_eventdb::build_sequence_groups(&db, &q.seq)?;
    let mut meter = solap_core::stats::ScanMeter::new();
    let cuboid =
        solap_core::regexq::regex_cuboid(&db, &groups, &q.template, q.restriction, &mut meter)?;
    let table = cuboid.tabulate(&db, 15, true);
    ctx.labels.push(format!("REGEX {}", q.template.render()));
    Ok(Response::ok(format!(
        "{} cells via regex/CB in {:?} ({} sequences scanned)\n{table}",
        cuboid.len(),
        start.elapsed(),
        meter.count()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ctx() -> SessionCtx {
        let db = command::generate(
            "transit",
            &HashMap::from([
                ("passengers".to_owned(), "60".to_owned()),
                ("days".to_owned(), "3".to_owned()),
            ]),
        )
        .unwrap();
        SessionCtx::new(Arc::new(Engine::builder(db).build()))
    }

    const QUERY: &str = r#"SELECT COUNT(*) FROM Event
        CLUSTER BY card-id AT individual, time AT day
        SEQUENCE BY time ASCENDING
        CUBOID BY SUBSTRING (X, Y)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1)
          WITH x1.action = "in" AND y1.action = "out";"#;

    #[test]
    fn query_and_op_flow() {
        let mut c = ctx();
        let r = dispatch(&mut c, QUERY);
        assert!(r.ok, "{}", r.body);
        assert!(r.body.contains("cells via"), "{}", r.body);
        let r = dispatch(&mut c, ".op append Z location station");
        assert!(r.ok && r.body.contains("APPEND"), "{}", r.body);
        let r = dispatch(&mut c, ".back");
        assert!(r.ok && r.body.contains("back to:"), "{}", r.body);
        let r = dispatch(&mut c, ".history");
        assert!(r.ok && !r.body.contains("APPEND"), "{}", r.body);
    }

    #[test]
    fn store_statement_appends_and_queries_see_it() {
        let mut c = ctx();
        let r = dispatch(&mut c, QUERY);
        assert!(r.ok, "{}", r.body);
        let before = c.session().engine().db().len();
        let r = dispatch(
            &mut c,
            r#"STORE INTO Event VALUES
                ("2007-10-05T08:00", 9999, "ST000", "in", 0.0),
                ("2007-10-05T08:20", 9999, "ST001", "out", -1.5);"#,
        );
        assert!(r.ok, "{}", r.body);
        assert!(r.body.contains("stored 2 events"), "{}", r.body);
        assert!(r.body.contains("in-memory"), "{}", r.body);
        assert_eq!(c.session().engine().db().len(), before + 2);
        // The post-append query runs against the new version (no stale
        // cached cuboid) and still succeeds.
        let r = dispatch(&mut c, QUERY);
        assert!(r.ok, "{}", r.body);
        // Bad tuples are rejected atomically with a typed code.
        let r = dispatch(&mut c, "STORE INTO Event VALUES (1, 2);");
        assert!(!r.ok);
        assert_eq!(r.code.as_deref(), Some("parse"));
        assert_eq!(c.session().engine().db().len(), before + 2);
    }

    #[test]
    fn online_command_reports_snapshots() {
        let mut c = ctx();
        let r = dispatch(&mut c, ".online 8");
        assert!(!r.ok, "needs a current query first");
        assert_eq!(r.code.as_deref(), Some("usage"));
        let r = dispatch(&mut c, QUERY);
        assert!(r.ok, "{}", r.body);
        let r = dispatch(&mut c, ".online 8");
        assert!(r.ok, "{}", r.body);
        assert!(r.body.contains("% processed"), "{}", r.body);
        let r = dispatch(&mut c, ".online zero");
        assert!(!r.ok);
        assert_eq!(r.code.as_deref(), Some("usage"));
        let r = dispatch(&mut c, ".online 0");
        assert!(!r.ok);
        assert_eq!(r.code.as_deref(), Some("invalid_operation"));
    }

    #[test]
    fn errors_carry_stable_codes() {
        let mut c = ctx();
        let r = dispatch(&mut c, ".op prollup Q");
        assert!(!r.ok);
        // parse_op succeeds (prollup only names a dimension); the failure
        // is the session's: no current query to operate on.
        assert_eq!(r.code.as_deref(), Some("invalid_operation"));
        let r = dispatch(&mut c, "SELECT BOGUS;");
        assert!(!r.ok);
        assert_eq!(r.code.as_deref(), Some("parse"));
        let r = dispatch(&mut c, ".op rollup bogus");
        assert!(!r.ok, "{}", r.body);
        // An op on an empty session is invalid_operation territory, but
        // parse_op's schema resolution fires first here.
        assert_eq!(r.code.as_deref(), Some("unknown_attribute"));
        let r = dispatch(&mut c, ".gen transit");
        assert!(!r.ok);
        assert_eq!(r.code.as_deref(), Some("unsupported"));
    }

    #[test]
    fn per_session_config_commands() {
        let mut c = ctx();
        for (cmd, want_empty) in [
            (".strategy cb", true),
            (".backend bitmap", true),
            (".counters dense", true),
            (".threads 4", false),
        ] {
            let r = dispatch(&mut c, cmd);
            assert!(r.ok, "{cmd}: {}", r.body);
            assert_eq!(r.body.is_empty(), want_empty, "{cmd}: {}", r.body);
        }
        assert_eq!(c.session().config().threads, 4);
        let r = dispatch(&mut c, ".timeout 5000");
        assert!(r.ok && r.body.contains("5000 ms"));
        let r = dispatch(&mut c, ".budget 0");
        assert!(r.ok && r.body.contains("off"));
        let r = dispatch(&mut c, ".strategy warp");
        assert!(!r.ok);
        assert_eq!(r.code.as_deref(), Some("usage"));
    }

    #[test]
    fn explain_and_profile_modes() {
        let mut c = ctx();
        let r = dispatch(&mut c, &format!("EXPLAIN {QUERY}"));
        assert!(r.ok, "{}", r.body);
        assert!(r.body.contains("plan:") && !r.body.contains("cells via"));
        assert!(r.body.contains("alternatives"), "{}", r.body);
        assert!(c.session().spec().is_none(), "EXPLAIN leaves no current");
        // The structured plan rides the wire as a "plan" JSON object.
        let plan = r.plan_json.as_deref().expect("EXPLAIN carries plan JSON");
        let v = crate::json::Json::parse(plan).unwrap();
        assert!(v.get("strategy").unwrap().as_str().is_some());
        let wire = r.to_wire();
        let v = crate::json::Json::parse(&wire).unwrap();
        assert!(v.get("plan").is_some(), "{wire}");
        let r = dispatch(&mut c, &format!("PROFILE {QUERY}"));
        assert!(r.ok, "{}", r.body);
        assert!(r.body.contains("profile:"), "{}", r.body);
        assert!(r.profile_json.is_some());
        // The profile JSON on the wire is valid JSON.
        crate::json::Json::parse(r.profile_json.as_deref().unwrap()).unwrap();
    }

    #[test]
    fn quit_sets_the_flag_and_wire_format_roundtrips() {
        let mut c = ctx();
        let r = dispatch(&mut c, ".quit");
        assert!(r.ok && r.quit);
        let wire = r.to_wire();
        let v = crate::json::Json::parse(&wire).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("quit").unwrap().as_bool(), Some(true));
        let e = Response::err("usage", "try .help\n").to_wire();
        let v = crate::json::Json::parse(&e).unwrap();
        assert_eq!(v.get("code").unwrap().as_str(), Some("usage"));
        assert_eq!(v.get("error").unwrap().as_str(), Some("try .help\n"));
    }

    #[test]
    fn repo_command_reports_policy_and_hit_rate() {
        let mut c = ctx();
        let r = dispatch(&mut c, ".repo");
        assert!(r.ok, "{}", r.body);
        assert!(r.body.contains("policy:"), "{}", r.body);
        assert!(r.body.contains("benefit-per-byte"), "{}", r.body);
        dispatch(&mut c, QUERY);
        dispatch(&mut c, QUERY);
        let r = dispatch(&mut c, ".repo");
        assert!(r.body.contains("entries:   1"), "{}", r.body);
        assert!(r.body.contains("1 hits"), "{}", r.body);
        assert!(r.body.contains("evictions: 0"), "{}", r.body);
    }

    #[test]
    fn regex_queries_run() {
        let mut c = ctx();
        let q = r#"SELECT COUNT(*) FROM Event
            CLUSTER BY card-id AT individual, time AT day
            SEQUENCE BY time ASCENDING
            CUBOID BY REGEX (X, Y, .*, Y, X)
              WITH X AS location AT station, Y AS location AT station
              LEFT-MAXIMALITY;"#;
        let r = dispatch(&mut c, q);
        assert!(r.ok && r.body.contains("via regex/CB"), "{}", r.body);
        let r = dispatch(&mut c, ".history");
        assert!(r.body.contains("REGEX (X, Y, .*, Y, X)"), "{}", r.body);
        let r = dispatch(&mut c, &format!("EXPLAIN {q}"));
        assert!(!r.ok);
        assert!(r.body.contains("not supported for regex-template"));
    }
}
