//! The multi-client S-OLAP server: a readiness-driven event loop in
//! front of a bounded worker pool.
//!
//! PR 5's thread-per-connection server plateaued near ~1.5k qps at 64
//! clients — one OS thread, one blocking read and one watcher thread per
//! connection is the wrong shape for production connection counts. This
//! rework keeps the protocol and every serving guarantee, but changes the
//! architecture:
//!
//! * **One event-loop thread** owns every accepted socket (non-blocking,
//!   multiplexed through the zero-`unsafe` [`readiness`](crate::readiness)
//!   shim — one fd per connection, no `try_clone` fan-out). It accepts,
//!   frames request lines incrementally ([`FrameBuf`]),
//!   flushes response buffers, detects mid-query disconnects, and enforces
//!   every timeout. Probe cost is bounded two ways: full readiness
//!   sweeps are *paced* by connection count (≈10µs of sweep budget per
//!   connection, so thousands of idle connections cost a fixed slice of
//!   one core), while connections with a response just flushed are
//!   *hot* — read directly each iteration, so an active round trip
//!   never waits on the sweep cadence. Between events the loop parks on
//!   the pool's waker, and only touched connections are serviced (a
//!   periodic full pass enforces timeouts).
//! * **A bounded worker pool** (`workers`, default `max_inflight`)
//!   executes statements, so a slow query occupies a worker — never the
//!   event loop. Statement execution is the only blocking work in the
//!   server.
//! * **Pipelining**: a client may write up to `pipeline_depth` statements
//!   without awaiting responses; responses always come back in request
//!   order. Contiguously queued statements of one connection are admitted
//!   to the pool as a single batch job (one queue entry, one session
//!   hand-off) — sessions are stateful, so per-connection execution is
//!   inherently serial, and cross-connection parallelism comes from the
//!   pool.
//!
//! The PR-5 guarantees, re-proven by `tests/server_chaos.rs` on this
//! loop (and extended under pipelining):
//!
//! * **Admission control** — at most `max_conn` connections (excess get a
//!   typed `over_capacity` line and are closed); a queued job no worker
//!   picks up within `queue_timeout` is rejected with `over_capacity`,
//!   one response per queued statement. `.server` stats are answered
//!   inline by the event loop, outside the pool, so observability
//!   survives saturation.
//! * **Disconnect cancellation** — the event loop keeps read interest on
//!   busy connections; EOF mid-query trips the session's
//!   [`CancelToken`] so the governor aborts
//!   in-flight work and the worker is reclaimed. Only that connection's
//!   work is cancelled.
//! * **Hostile-input guards** — bounded request lines (`too_large`),
//!   non-UTF-8 lines (`bad_request`), an idle read timeout, a write-stall
//!   timeout, and a write-buffer high-water mark that stops reading from
//!   a connection whose responses back up (backpressure instead of
//!   unbounded buffering).
//! * **Panic isolation** — a statement panicking through the
//!   `server.request` failpoint is caught *in the worker*; the connection
//!   dies, the worker, the event loop and every sibling session survive.
//! * **Graceful drain** — shutdown stops accepting, closes idle
//!   connections, lets queued and executing statements finish and flush
//!   their responses, answers anything framed afterwards with
//!   `shutting_down`, then joins the workers.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use solap_core::Engine;
use solap_eventdb::{fail_point, CancelToken};

use crate::conn::{Frame, FrameBuf, WriteBuf};
use crate::dispatch::{dispatch, Response, SessionCtx};
use crate::readiness::{Event, Interest, Poller, Waker};

/// Stop reading from a connection whose unflushed responses exceed this
/// many bytes until the peer drains them (slow-reader backpressure).
const WRITE_HIGH_WATER: usize = 4 << 20;

/// Per-sweep read cap per connection, so one fire-hosing client cannot
/// starve its siblings within a sweep.
const READ_BURST: usize = 256 * 1024;

/// How long after write progress a connection stays *hot*: the loop
/// reads its socket directly on every iteration (one syscall, no
/// sweep), because the next pipelined request usually lands within a
/// round trip — far sooner than the paced sweep would notice.
const HOT_WINDOW: Duration = Duration::from_millis(2);

/// The park used while any connection is hot: short enough to catch a
/// round-trip arrival promptly, long enough not to busy-spin the core
/// the workers need.
const HOT_PARK: Duration = Duration::from_micros(200);

/// Probe-cost pacing: a full readiness sweep costs one probe syscall
/// per connection, so consecutive sweeps are spaced by at least
/// `connections × SWEEP_COST_PER_CONN` (floored by `poll_timeout`,
/// capped by [`SWEEP_INTERVAL_MAX`]). Probing stays a bounded slice of
/// one core at any connection count; hot connections never wait on the
/// sweep cadence.
const SWEEP_COST_PER_CONN: Duration = Duration::from_micros(10);

/// Ceiling on the paced sweep interval: a quiet connection's new data,
/// EOF or flush retry is noticed within this bound.
const SWEEP_INTERVAL_MAX: Duration = Duration::from_millis(20);

/// Cadence of the full servicing pass that enforces idle and stall
/// timeouts on every connection (connections are otherwise serviced
/// only when events, completions or hot reads touch them).
const FULL_SCAN_INTERVAL: Duration = Duration::from_millis(20);

/// Server tuning; [`ServerConfig::from_env`] seeds the deployment knobs
/// from `SOLAP_ADDR`, `SOLAP_MAX_CONN`, `SOLAP_MAX_INFLIGHT`,
/// `SOLAP_WORKERS`, `SOLAP_PIPELINE` and `SOLAP_POLL_MS`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port 0 picks a free port.
    pub addr: String,
    /// Maximum concurrent connections; excess ones are rejected.
    pub max_conn: usize,
    /// Maximum statements executing at once across all connections —
    /// the worker-pool size unless [`ServerConfig::workers`] overrides it.
    pub max_inflight: usize,
    /// Worker-pool size; `0` means "use `max_inflight`".
    pub workers: usize,
    /// How many statements one connection may have in flight (queued or
    /// executing) before the loop stops reading from its socket.
    pub pipeline_depth: usize,
    /// The event loop's minimum park/sweep pacing. Probe sweeps are
    /// additionally spaced by connection count (see the module docs) so
    /// probing stays a bounded slice of one core; this knob is the
    /// floor of that pacing and the default idle park.
    pub poll_timeout: Duration,
    /// How long a queued job may wait for a worker before every
    /// statement in it is rejected with `over_capacity`.
    pub queue_timeout: Duration,
    /// Idle timeout: a connection with no in-flight work that sends no
    /// complete line for this long is closed.
    pub read_timeout: Duration,
    /// A connection whose pending responses make no write progress for
    /// this long is closed (stalled reader).
    pub write_timeout: Duration,
    /// Longest accepted request line, in bytes (`too_large` beyond).
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_owned(),
            max_conn: 1024,
            max_inflight: 16,
            workers: 0,
            pipeline_depth: 64,
            poll_timeout: Duration::from_millis(1),
            queue_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 1 << 20,
        }
    }
}

impl ServerConfig {
    /// The default configuration with the deployment knobs taken from
    /// the `SOLAP_*` environment where set.
    pub fn from_env() -> Self {
        fn parsed(value: Result<String, std::env::VarError>) -> Option<usize> {
            value.ok().and_then(|v| v.trim().parse::<usize>().ok())
        }
        let mut cfg = ServerConfig::default();
        if let Ok(addr) = std::env::var("SOLAP_ADDR") {
            if !addr.trim().is_empty() {
                cfg.addr = addr.trim().to_owned();
            }
        }
        if let Some(n) = parsed(std::env::var("SOLAP_MAX_CONN")) {
            cfg.max_conn = n.max(1);
        }
        if let Some(n) = parsed(std::env::var("SOLAP_MAX_INFLIGHT")) {
            cfg.max_inflight = n.max(1);
        }
        if let Some(n) = parsed(std::env::var("SOLAP_WORKERS")) {
            cfg.workers = n;
        }
        if let Some(n) = parsed(std::env::var("SOLAP_PIPELINE")) {
            cfg.pipeline_depth = n.max(1);
        }
        if let Some(ms) = parsed(std::env::var("SOLAP_POLL_MS")) {
            cfg.poll_timeout = Duration::from_millis((ms as u64).max(1));
        }
        cfg
    }

    /// The effective worker-pool size.
    pub fn worker_count(&self) -> usize {
        if self.workers == 0 {
            self.max_inflight.max(1)
        } else {
            self.workers
        }
    }
}

/// Cumulative server counters (monotonic except `active`).
#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    active: AtomicU64,
    rejected_conn: AtomicU64,
    rejected_queue: AtomicU64,
    served_ok: AtomicU64,
    served_err: AtomicU64,
    cancelled_disconnect: AtomicU64,
    conn_panics: AtomicU64,
    batches: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted (including later-rejected ones).
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Connections rejected by the `max_conn` limit.
    pub rejected_conn: u64,
    /// Statements rejected because no worker freed up in time.
    pub rejected_queue: u64,
    /// Statements answered with `ok: true`.
    pub served_ok: u64,
    /// Statements answered with a typed error.
    pub served_err: u64,
    /// Connections whose in-flight work was cancelled because the client
    /// disconnected.
    pub cancelled_disconnect: u64,
    /// Connections terminated by a panicking statement.
    pub conn_panics: u64,
    /// Batch jobs admitted to the worker pool.
    pub batches: u64,
    /// Statements executing in workers right now.
    pub executing: u64,
    /// Jobs waiting in the pool queue right now.
    pub queued: u64,
}

impl StatsSnapshot {
    /// Renders the counters as the `.server` response body.
    pub fn render_text(&self) -> String {
        format!(
            "server: {} accepted, {} active\n\
             rejected: {} connections, {} queued requests\n\
             served: {} ok, {} err ({} batches)\n\
             inflight now: {} executing, {} queued\n\
             cancelled by disconnect: {}\n\
             connection panics: {}\n",
            self.accepted,
            self.active,
            self.rejected_conn,
            self.rejected_queue,
            self.served_ok,
            self.served_err,
            self.batches,
            self.executing,
            self.queued,
            self.cancelled_disconnect,
            self.conn_panics,
        )
    }
}

/// A batch of statements from one connection, admitted to the pool as a
/// unit (sessions are stateful, so one connection's statements execute
/// serially on whichever worker takes the job).
struct Job {
    conn: u64,
    ctx: SessionCtx,
    statements: Vec<(u64, String)>,
    enqueued: Instant,
}

/// What a worker reports back to the event loop.
enum Completion {
    /// One statement finished; its response must flush at `seq`.
    Done {
        conn: u64,
        seq: u64,
        response: Response,
    },
    /// The whole job finished; the session context comes home.
    Finished { conn: u64, ctx: Box<SessionCtx> },
    /// A statement panicked; the session is lost and the connection must
    /// die. The worker survives.
    Panicked { conn: u64 },
}

/// The worker pool's shared half: a job queue, a completion queue and
/// the event-loop waker that makes responses flush promptly.
struct Pool {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    stop: AtomicBool,
    executing: AtomicU64,
    completions: Mutex<Vec<Completion>>,
}

impl Pool {
    fn new() -> Pool {
        Pool {
            queue: Mutex::ranked(
                parking_lot::rank::SERVER_POOL_QUEUE,
                "server.pool.queue",
                VecDeque::new(),
            ),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            executing: AtomicU64::new(0),
            completions: Mutex::ranked(
                parking_lot::rank::SERVER_POOL_COMPLETIONS,
                "server.pool.completions",
                Vec::new(),
            ),
        }
    }

    fn submit(&self, job: Job) {
        self.queue.lock().push_back(job);
        self.cv.notify_one();
    }

    fn complete(&self, completion: Completion) {
        self.completions.lock().push(completion);
    }

    fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock())
    }

    /// Removes and returns every queued job older than `timeout`.
    fn expire(&self, timeout: Duration) -> Vec<Job> {
        let mut queue = self.queue.lock();
        let mut expired = Vec::new();
        let mut i = 0;
        while let Some(job) = queue.get(i) {
            if job.enqueued.elapsed() > timeout {
                if let Some(job) = queue.remove(i) {
                    expired.push(job);
                }
            } else {
                i += 1;
            }
        }
        expired
    }

    fn queued(&self) -> usize {
        self.queue.lock().len()
    }

    /// Signals every worker to exit once the queue drains.
    fn stop_workers(&self) {
        // Set the flag under the queue lock so a worker between its
        // "queue empty?" check and its wait cannot miss the notify.
        let _queue = self.queue.lock();
        self.stop.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

/// State shared between the event loop, the workers and handles.
struct Shared {
    engine: Arc<Engine>,
    config: ServerConfig,
    stats: Stats,
    shutdown: AtomicBool,
    pool: Pool,
    waker: Waker,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            active: self.stats.active.load(Ordering::Relaxed),
            rejected_conn: self.stats.rejected_conn.load(Ordering::Relaxed),
            rejected_queue: self.stats.rejected_queue.load(Ordering::Relaxed),
            served_ok: self.stats.served_ok.load(Ordering::Relaxed),
            served_err: self.stats.served_err.load(Ordering::Relaxed),
            cancelled_disconnect: self.stats.cancelled_disconnect.load(Ordering::Relaxed),
            conn_panics: self.stats.conn_panics.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            executing: self.pool.executing.load(Ordering::Relaxed),
            queued: self.pool.queued() as u64,
        }
    }
}

/// A response waiting in a connection's reorder stash.
struct Stashed {
    response: Response,
    /// Close the connection once this response (and everything before
    /// it) has flushed — quit, `too_large`, `shutting_down`.
    close: bool,
}

/// Per-connection state owned by the event loop. The socket itself lives
/// in the poller (one registration, one fd); everything here is
/// bookkeeping around it.
struct Conn {
    frames: FrameBuf,
    out: WriteBuf,
    /// The session, present iff no job is in flight for this connection.
    ctx: Option<Box<SessionCtx>>,
    cancel: CancelToken,
    /// Framed statements not yet admitted to the pool.
    pending: VecDeque<(u64, String)>,
    /// Out-of-order responses awaiting their turn (keyed by seq).
    stash: BTreeMap<u64, Stashed>,
    /// Next statement sequence number to assign.
    next_seq: u64,
    /// Next sequence number to append to `out`.
    flush_seq: u64,
    /// The peer hung up (no more reads; cancel in-flight work).
    gone: bool,
    /// Stop framing (terminal protocol error, e.g. an oversized line).
    read_closed: bool,
    /// Close the socket once `out` drains.
    close_after_flush: bool,
    /// The cancel token was tripped for in-flight work.
    cancel_sent: bool,
    /// Last read bytes / response activity (idle timeout).
    last_activity: Instant,
    /// When the current partial line started buffering, if any.
    line_started: Option<Instant>,
    /// When the current write stall started, if any.
    stalled_since: Option<Instant>,
}

impl Conn {
    fn new(engine: Arc<Engine>, max_line: usize) -> Conn {
        let ctx = Box::new(SessionCtx::new(engine));
        let cancel = ctx.cancel_token();
        Conn {
            frames: FrameBuf::new(max_line),
            out: WriteBuf::new(),
            ctx: Some(ctx),
            cancel,
            pending: VecDeque::new(),
            stash: BTreeMap::new(),
            next_seq: 0,
            flush_seq: 0,
            gone: false,
            read_closed: false,
            close_after_flush: false,
            cancel_sent: false,
            last_activity: Instant::now(),
            line_started: None,
            stalled_since: None,
        }
    }

    /// Work handed to the pool and not yet returned.
    fn job_in_flight(&self) -> bool {
        self.ctx.is_none()
    }

    /// Nothing queued, executing, stashed or unflushed.
    fn is_idle(&self) -> bool {
        !self.job_in_flight()
            && self.pending.is_empty()
            && self.stash.is_empty()
            && self.out.is_empty()
    }
}

/// A bound, not-yet-serving server. [`Server::serve`] runs the event
/// loop on the calling thread; [`Server::spawn`] is the common
/// bind-and-background convenience.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A cloneable control handle: stats, address and graceful shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds the listener and prepares shared state. The engine arrives
    /// pre-built (see [`Engine::builder`]); the server never mutates it.
    pub fn bind(engine: Arc<Engine>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            config,
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            pool: Pool::new(),
            waker: Waker::new(),
        });
        Ok(Server {
            listener,
            local_addr,
            shared,
        })
    }

    /// Binds and starts serving on a background thread, returning the
    /// control handle and the event-loop join handle.
    pub fn spawn(
        engine: Arc<Engine>,
        config: ServerConfig,
    ) -> io::Result<(ServerHandle, std::thread::JoinHandle<io::Result<()>>)> {
        let server = Server::bind(engine, config)?;
        let handle = server.handle();
        let join = std::thread::Builder::new()
            .name("solap-loop".to_owned())
            .spawn(move || server.serve())?;
        Ok((handle, join))
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A control handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            local_addr: self.local_addr,
        }
    }

    /// Runs the event loop until [`ServerHandle::shutdown`], then drains:
    /// queued and executing statements finish and flush before this
    /// returns, and every worker thread is joined.
    pub fn serve(self) -> io::Result<()> {
        EventLoop::new(self.listener, self.shared)?.run()
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Initiates graceful drain: stop accepting, close idle connections,
    /// let queued and in-flight statements finish and flush. `serve()`
    /// returns once the last connection is drained.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.waker.wake();
    }
}

/// Sends a one-line typed rejection and closes the stream (used before a
/// connection is registered, while its socket is still blocking).
fn reject(mut stream: TcpStream, config: &ServerConfig, code: &str, msg: &str) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let line = Response::err(code, msg).wire_line();
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

/// The `server.request` failpoint: lets the chaos suite inject a typed
/// error, a delay or a panic at the top of statement handling, outside
/// the engine's own catch_unwind isolation (and therefore *inside* a
/// pool worker, exercising worker-level panic containment).
fn request_failpoint() -> solap_eventdb::Result<()> {
    fail_point!("server.request");
    Ok(())
}

fn execute_request(ctx: &mut SessionCtx, line: &str) -> Response {
    match request_failpoint() {
        Ok(()) => dispatch(ctx, line),
        Err(e) => Response::err(e.code(), e.to_string()),
    }
}

/// One pool worker: take a job, run its statements in order, report each
/// response as it lands, bring the session home. Panics are contained
/// here — the worker itself never dies.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let mut job = {
            let mut queue = shared.pool.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.pool.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.pool.cv.wait(queue);
            }
        };
        let conn = job.conn;
        shared.pool.executing.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // solint: allow(governor-tick) statements, not events — each dispatch runs under its own governor
            for (seq, statement) in std::mem::take(&mut job.statements) {
                let response = execute_request(&mut job.ctx, &statement);
                let quit = response.quit;
                shared.pool.complete(Completion::Done {
                    conn,
                    seq,
                    response,
                });
                shared.waker.wake();
                if quit {
                    break;
                }
            }
        }));
        shared.pool.executing.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok(()) => shared.pool.complete(Completion::Finished {
                conn,
                ctx: Box::new(job.ctx),
            }),
            Err(_) => shared.pool.complete(Completion::Panicked { conn }),
        }
        shared.waker.wake();
    }
}

/// What one non-blocking read pass over a socket produced.
struct ReadPass {
    bytes: usize,
    eof: bool,
    broken: bool,
}

/// Reads until `WouldBlock`, EOF or the per-sweep burst cap.
fn read_pass(stream: &TcpStream, frames: &mut FrameBuf) -> ReadPass {
    let mut scratch = [0u8; 16 * 1024];
    let mut pass = ReadPass {
        bytes: 0,
        eof: false,
        broken: false,
    };
    loop {
        match (&*stream).read(&mut scratch) {
            Ok(0) => {
                pass.eof = true;
                return pass;
            }
            Ok(n) => {
                frames.push(scratch.get(..n).unwrap_or_default());
                pass.bytes += n;
                if pass.bytes >= READ_BURST {
                    return pass;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return pass
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                pass.broken = true;
                return pass;
            }
        }
    }
}

/// The event loop itself: owns the listener, the poller and every
/// connection's state.
struct EventLoop {
    listener: TcpListener,
    shared: Arc<Shared>,
    config: ServerConfig,
    poller: Poller<TcpStream>,
    conns: HashMap<u64, Conn>,
    /// Connections read directly each iteration, with the instant they
    /// turned hot (fresh accept or write progress; see [`HOT_WINDOW`]).
    hot: HashMap<u64, Instant>,
    next_id: u64,
    last_sweep: Instant,
    last_full_scan: Instant,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl EventLoop {
    fn new(listener: TcpListener, shared: Arc<Shared>) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let poller = Poller::with_waker(shared.waker.clone());
        let mut workers = Vec::new();
        for i in 0..shared.config.worker_count() {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("solap-worker-{i}"))
                    .spawn(move || worker_loop(shared))?,
            );
        }
        let config = shared.config.clone();
        let now = Instant::now();
        Ok(EventLoop {
            listener,
            shared,
            config,
            poller,
            conns: HashMap::new(),
            hot: HashMap::new(),
            next_id: 1,
            last_sweep: now,
            last_full_scan: now,
            workers,
        })
    }

    /// Minimum spacing between full probe sweeps, scaled by connection
    /// count so probe syscalls stay a bounded slice of the core.
    fn sweep_interval(&self) -> Duration {
        (SWEEP_COST_PER_CONN * self.conns.len() as u32)
            .min(SWEEP_INTERVAL_MAX)
            .max(self.config.poll_timeout)
    }

    fn run(mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        let mut dirty: Vec<u64> = Vec::new();
        let result = loop {
            let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
            if !shutting_down {
                if let Err(e) = self.accept_new() {
                    break Err(e);
                }
            }
            dirty.clear();
            self.drain_completions(&mut dirty);
            self.expire_queued_jobs(&mut dirty);
            self.probe_hot(&mut dirty);

            // Paced full sweep: one probe syscall per connection, spaced
            // by sweep_interval so probing cost is bounded regardless of
            // how often completions wake the loop.
            let now = Instant::now();
            if now.duration_since(self.last_sweep) >= self.sweep_interval() {
                self.last_sweep = now;
                self.poller.sweep_now(&mut events);
                // solint: allow(governor-tick) readiness events, not engine data — bounded by open connections
                for ev in &events {
                    if ev.readable || ev.hangup {
                        self.read_conn(ev.token);
                    }
                    dirty.push(ev.token);
                }
            }

            // Service only touched connections; a periodic full pass
            // (and every drain iteration) covers timeout enforcement.
            let now = Instant::now();
            if shutting_down || now.duration_since(self.last_full_scan) >= FULL_SCAN_INTERVAL {
                self.last_full_scan = now;
                self.service_all(shutting_down, now);
            } else if !dirty.is_empty() {
                dirty.sort_unstable();
                dirty.dedup();
                self.service_ids(&dirty, shutting_down, now);
            }
            if shutting_down && self.conns.is_empty() {
                break Ok(());
            }

            // Idle iteration: wait for a wake (worker completion,
            // shutdown) — briefly while a round trip is in flight, until
            // the next paced sweep otherwise.
            if dirty.is_empty() {
                let park = if !self.hot.is_empty() {
                    HOT_PARK
                } else {
                    self.sweep_interval()
                        .saturating_sub(self.last_sweep.elapsed())
                        .max(self.config.poll_timeout)
                };
                self.poller.park(park);
            }
        };
        // Drain the pool and join every worker before returning.
        self.shared.pool.stop_workers();
        for worker in self.workers.drain(..) {
            // solint: allow(no-blocking-in-event-loop) shutdown drain: the loop is done serving; joining here is the liveness guarantee for Server::shutdown
            let _ = worker.join();
        }
        result
    }

    /// Reads every hot connection directly (one non-blocking read
    /// syscall each) so an active request/response conversation never
    /// stalls on the paced sweep.
    fn probe_hot(&mut self, dirty: &mut Vec<u64>) {
        if self.hot.is_empty() {
            return;
        }
        let now = Instant::now();
        let ids: Vec<u64> = self.hot.keys().copied().collect();
        for id in ids {
            let expired = self
                .hot
                .get(&id)
                .is_some_and(|t| now.duration_since(*t) > HOT_WINDOW);
            if expired || !self.conns.contains_key(&id) {
                self.hot.remove(&id);
                continue;
            }
            if self.read_conn(id) {
                self.hot.remove(&id);
                dirty.push(id);
            }
        }
    }

    /// Accepts until the listener would block, applying the `max_conn`
    /// admission gate.
    fn accept_new(&mut self) -> io::Result<()> {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (peer reset before accept,
                // fd pressure) should not take the server down.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) if e.kind() == io::ErrorKind::ConnectionReset => continue,
                Err(e) => return Err(e),
            };
            let config = &self.shared.config;
            self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            if self.conns.len() >= config.max_conn {
                self.shared
                    .stats
                    .rejected_conn
                    .fetch_add(1, Ordering::Relaxed);
                reject(
                    stream,
                    config,
                    "over_capacity",
                    "connection limit reached — try again later",
                );
                continue;
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let id = self.next_id;
            self.next_id += 1;
            let conn = Conn::new(Arc::clone(&self.shared.engine), config.max_line_bytes);
            if self.poller.register(id, stream, Interest::READ).is_err() {
                continue;
            }
            self.conns.insert(id, conn);
            // A fresh client usually sends its first statement within a
            // round trip: read it directly instead of waiting a sweep.
            self.hot.insert(id, Instant::now());
            self.shared.stats.active.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds worker completions into their connections' stashes,
    /// marking the touched connections dirty.
    fn drain_completions(&mut self, dirty: &mut Vec<u64>) {
        for completion in self.shared.pool.take_completions() {
            match completion {
                Completion::Done {
                    conn,
                    seq,
                    response,
                } => {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        let close = response.quit;
                        c.stash.insert(seq, Stashed { response, close });
                        dirty.push(conn);
                    }
                }
                Completion::Finished { conn, ctx } => {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.ctx = Some(ctx);
                        dirty.push(conn);
                    }
                }
                Completion::Panicked { conn } => {
                    self.shared
                        .stats
                        .conn_panics
                        .fetch_add(1, Ordering::Relaxed);
                    // The session died with the panic: the connection
                    // closes without a response, its siblings unaffected.
                    self.remove_conn(conn);
                }
            }
        }
    }

    /// Rejects every statement of queued jobs that out-waited
    /// `queue_timeout`, returning their sessions to their connections.
    fn expire_queued_jobs(&mut self, dirty: &mut Vec<u64>) {
        let timeout = self.shared.config.queue_timeout;
        for job in self.shared.pool.expire(timeout) {
            self.shared
                .stats
                .rejected_queue
                .fetch_add(job.statements.len() as u64, Ordering::Relaxed);
            if let Some(c) = self.conns.get_mut(&job.conn) {
                // solint: allow(governor-tick) statement seqs of one expired job — bounded by pipeline_depth
                for (seq, _) in &job.statements {
                    c.stash.insert(
                        *seq,
                        Stashed {
                            response: Response::err(
                                "over_capacity",
                                "no execution slot became free in time — try again later",
                            ),
                            close: false,
                        },
                    );
                }
                c.ctx = Some(Box::new(job.ctx));
                dirty.push(job.conn);
            }
        }
    }

    /// Reads and frames whatever `token`'s socket has ready. Returns
    /// whether anything advanced (bytes arrived, EOF, or a broken read).
    fn read_conn(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        if conn.gone || conn.read_closed {
            return false;
        }
        let Some(stream) = self.poller.get(token) else {
            return false;
        };
        let pass = read_pass(stream, &mut conn.frames);
        if pass.bytes > 0 {
            conn.last_activity = Instant::now();
        }
        if pass.eof || pass.broken {
            // A partial line without its terminator is dropped — the
            // peer hung up before finishing the request.
            conn.gone = true;
        }
        pass.bytes > 0 || pass.eof || pass.broken
    }

    /// Services every open connection (the periodic timeout pass and
    /// every drain iteration).
    fn service_all(&mut self, shutting_down: bool, now: Instant) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        self.service_ids(&ids, shutting_down, now);
    }

    fn service_ids(&mut self, ids: &[u64], shutting_down: bool, now: Instant) {
        let mut dead: Vec<u64> = Vec::new();
        for &id in ids {
            self.service_conn(id, shutting_down, now, &mut dead);
        }
        for id in dead {
            self.remove_conn(id);
        }
    }

    /// Per-connection servicing: frame extraction, inline statements,
    /// job admission, response reordering, flushing, timeouts, interest.
    fn service_conn(&mut self, id: u64, shutting_down: bool, now: Instant, dead: &mut Vec<u64>) {
        let config = &self.config;
        {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };

            // 1. Frame extraction, bounded by the pipeline depth and the
            // write high-water mark (backpressure).
            while !conn.read_closed
                && conn.pending.len() < config.pipeline_depth
                && conn.out.len() < WRITE_HIGH_WATER
            {
                match conn.frames.next_frame() {
                    None => break,
                    Some(Frame::Line(line)) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        let statement = line.trim().to_owned();
                        if shutting_down {
                            conn.stash.insert(
                                seq,
                                Stashed {
                                    response: Response::err(
                                        "shutting_down",
                                        "server is shutting down",
                                    ),
                                    close: true,
                                },
                            );
                        } else if statement == ".server" {
                            // Answered inline by the event loop, outside
                            // the worker pool: observability must work
                            // even when every worker is saturated.
                            conn.stash.insert(
                                seq,
                                Stashed {
                                    response: Response::ok(self.shared.snapshot().render_text()),
                                    close: false,
                                },
                            );
                        } else {
                            conn.pending.push_back((seq, statement));
                        }
                    }
                    Some(Frame::TooLong) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.stash.insert(
                            seq,
                            Stashed {
                                response: Response::err(
                                    "too_large",
                                    format!("request exceeds {} bytes", config.max_line_bytes),
                                ),
                                close: true,
                            },
                        );
                        conn.read_closed = true;
                    }
                    Some(Frame::BadEncoding) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.stash.insert(
                            seq,
                            Stashed {
                                response: Response::err(
                                    "bad_request",
                                    "request is not valid UTF-8",
                                ),
                                close: false,
                            },
                        );
                    }
                }
            }
            conn.line_started = match (conn.frames.buffered() > 0, conn.line_started) {
                (true, None) => Some(now),
                (true, started) => started,
                (false, _) => None,
            };

            // 2. Batch admission: hand every contiguously pending
            // statement to the pool as one job.
            if !conn.pending.is_empty() && !conn.close_after_flush {
                if let Some(ctx) = conn.ctx.take() {
                    let statements: Vec<(u64, String)> = conn.pending.drain(..).collect();
                    self.shared.stats.batches.fetch_add(1, Ordering::Relaxed);
                    self.shared.pool.submit(Job {
                        conn: id,
                        ctx: *ctx,
                        statements,
                        enqueued: now,
                    });
                }
            }

            // 3. Disconnect: trip the cancel token exactly once so the
            // governor aborts in-flight work; the disconnect is *counted*
            // only when the cancelled job comes home (by then its
            // governor failure is observable, matching PR-5 ordering).
            // An idle disconnected connection is simply removed.
            if conn.gone && !conn.cancel_sent && conn.job_in_flight() {
                conn.cancel_sent = true;
                conn.cancel.cancel();
            }
            if conn.gone && !conn.job_in_flight() {
                if conn.cancel_sent {
                    self.shared
                        .stats
                        .cancelled_disconnect
                        .fetch_add(1, Ordering::Relaxed);
                }
                dead.push(id);
                return;
            }

            // 4. Reorder stash → write buffer, in sequence order.
            // solint: allow(governor-tick) response seqs, not engine data — bounded by pipeline_depth
            while let Some(stashed) = conn.stash.remove(&conn.flush_seq) {
                conn.flush_seq += 1;
                if !conn.gone {
                    if stashed.response.ok {
                        self.shared.stats.served_ok.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.shared.stats.served_err.fetch_add(1, Ordering::Relaxed);
                    }
                    conn.out.append(stashed.response.wire_line().as_bytes());
                    conn.last_activity = now;
                }
                if stashed.close {
                    conn.close_after_flush = true;
                    conn.pending.clear();
                    conn.stash.clear();
                    break;
                }
            }

            // 5. Flush as much as the socket accepts.
            if !conn.out.is_empty() {
                let Some(stream) = self.poller.get(id) else {
                    dead.push(id);
                    return;
                };
                let mut progressed = false;
                let mut broken = false;
                while !conn.out.is_empty() {
                    match (&*stream).write(conn.out.pending()) {
                        Ok(0) => {
                            broken = true;
                            break;
                        }
                        Ok(n) => {
                            conn.out.advance(n);
                            progressed = true;
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                            ) =>
                        {
                            break
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            broken = true;
                            break;
                        }
                    }
                }
                if broken {
                    // The peer is unreachable: treat like a disconnect so
                    // in-flight work gets cancelled (counted when the
                    // cancelled job comes home, as above).
                    conn.gone = true;
                    if !conn.cancel_sent && conn.job_in_flight() {
                        conn.cancel_sent = true;
                        conn.cancel.cancel();
                    }
                    if !conn.job_in_flight() {
                        dead.push(id);
                        return;
                    }
                } else if progressed {
                    conn.stalled_since = None;
                    // The peer just consumed responses; its next request
                    // usually lands within a round trip — keep it hot.
                    if !conn.gone && !conn.read_closed && !conn.close_after_flush {
                        self.hot.insert(id, now);
                    }
                } else if conn.stalled_since.is_none() {
                    conn.stalled_since = Some(now);
                }
            } else {
                conn.stalled_since = None;
            }

            // 6. Close-after-flush (quit / too_large / shutting_down).
            if conn.close_after_flush && conn.out.is_empty() && !conn.job_in_flight() {
                dead.push(id);
                return;
            }

            // 7. Timeouts: write stall, idle peer, stalled partial line.
            if let Some(stalled) = conn.stalled_since {
                if now.duration_since(stalled) > config.write_timeout {
                    dead.push(id);
                    return;
                }
            }
            let partial_stalled = conn
                .line_started
                .is_some_and(|t| now.duration_since(t) > config.read_timeout);
            if partial_stalled
                || (conn.is_idle() && now.duration_since(conn.last_activity) > config.read_timeout)
            {
                dead.push(id);
                return;
            }

            // 8. Drain: close idle connections once shutdown starts.
            if shutting_down && conn.is_idle() {
                dead.push(id);
                return;
            }

            // 9. Refresh poller interest.
            let read = !conn.gone
                && !conn.read_closed
                && !conn.close_after_flush
                && conn.pending.len() < config.pipeline_depth
                && conn.out.len() < WRITE_HIGH_WATER;
            let write = !conn.out.is_empty();
            self.poller.set_interest(id, Interest { read, write });
        }
    }

    /// Closes and forgets a connection (socket, buffers, session).
    fn remove_conn(&mut self, id: u64) {
        if self.conns.remove(&id).is_some() {
            self.shared.stats.active.fetch_sub(1, Ordering::Relaxed);
        }
        self.hot.remove(&id);
        if let Some(stream) = self.poller.deregister(id) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}
