//! The multi-client S-OLAP server.
//!
//! A thread-per-connection TCP server sharing one [`Engine`] across every
//! connection; each connection owns a [`SessionCtx`] so P-ROLL-UP /
//! APPEND / BACK navigation state lives server-side, per client. The
//! protocol is deliberately minimal — one newline-terminated statement in
//! the Figure-3 language per request, one JSON line per response — so a
//! session can be driven from `nc` as easily as from the bundled
//! [`Client`](crate::client::Client).
//!
//! Production shape:
//!
//! * **Admission control** — at most `max_conn` concurrent connections
//!   (excess connections receive a typed `over_capacity` response and are
//!   closed) and at most `max_inflight` queries executing at once; a
//!   request that cannot obtain an execution slot within `queue_timeout`
//!   is rejected with `over_capacity` instead of queueing unboundedly.
//! * **Disconnect cancellation** — while a query runs, a watcher probes
//!   the client socket; a vanished client trips the session's
//!   [`CancelToken`](solap_eventdb::CancelToken), so the engine's
//!   governor aborts the query mid-flight instead of burning the slot.
//! * **Hostile-input guards** — read/write timeouts and a bounded line
//!   length (`too_large`) protect the server from slow or malicious
//!   peers.
//! * **Panic isolation** — a panicking request (exercised by the
//!   `server.request` failpoint) kills only its own connection; the
//!   engine's own isolation already confines query panics further in.
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] stops accepting,
//!   closes idle connections, lets in-flight queries finish and write
//!   their response, then joins every connection thread.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use solap_core::Engine;
use solap_eventdb::{fail_point, CancelToken};

use crate::dispatch::{dispatch, Response, SessionCtx};

/// Server tuning; [`ServerConfig::from_env`] seeds the deployment knobs
/// from `SOLAP_ADDR`, `SOLAP_MAX_CONN` and `SOLAP_MAX_INFLIGHT`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port 0 picks a free port.
    pub addr: String,
    /// Maximum concurrent connections; excess ones are rejected.
    pub max_conn: usize,
    /// Maximum queries executing at once across all connections.
    pub max_inflight: usize,
    /// How long a request may wait for an execution slot before it is
    /// rejected with `over_capacity`.
    pub queue_timeout: Duration,
    /// Idle/read timeout: a connection that sends no complete line for
    /// this long is closed.
    pub read_timeout: Duration,
    /// Per-write timeout towards slow readers.
    pub write_timeout: Duration,
    /// Longest accepted request line, in bytes (`too_large` beyond).
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_owned(),
            max_conn: 64,
            max_inflight: 16,
            queue_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 1 << 20,
        }
    }
}

impl ServerConfig {
    /// The default configuration with the deployment knobs taken from
    /// `SOLAP_ADDR`, `SOLAP_MAX_CONN` and `SOLAP_MAX_INFLIGHT` when set.
    pub fn from_env() -> Self {
        let mut cfg = ServerConfig::default();
        if let Ok(addr) = std::env::var("SOLAP_ADDR") {
            if !addr.trim().is_empty() {
                cfg.addr = addr.trim().to_owned();
            }
        }
        if let Some(n) = std::env::var("SOLAP_MAX_CONN")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            cfg.max_conn = n.max(1);
        }
        if let Some(n) = std::env::var("SOLAP_MAX_INFLIGHT")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            cfg.max_inflight = n.max(1);
        }
        cfg
    }
}

/// Cumulative server counters (monotonic except `active`).
#[derive(Debug, Default)]
struct Stats {
    accepted: AtomicU64,
    active: AtomicU64,
    rejected_conn: AtomicU64,
    rejected_queue: AtomicU64,
    served_ok: AtomicU64,
    served_err: AtomicU64,
    cancelled_disconnect: AtomicU64,
    conn_panics: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted (including later-rejected ones).
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Connections rejected by the `max_conn` limit.
    pub rejected_conn: u64,
    /// Requests rejected because no execution slot freed up in time.
    pub rejected_queue: u64,
    /// Requests answered with `ok: true`.
    pub served_ok: u64,
    /// Requests answered with a typed error.
    pub served_err: u64,
    /// Queries cancelled because their client disconnected mid-flight.
    pub cancelled_disconnect: u64,
    /// Connections terminated by a panicking request.
    pub conn_panics: u64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            rejected_conn: self.rejected_conn.load(Ordering::Relaxed),
            rejected_queue: self.rejected_queue.load(Ordering::Relaxed),
            served_ok: self.served_ok.load(Ordering::Relaxed),
            served_err: self.served_err.load(Ordering::Relaxed),
            cancelled_disconnect: self.cancelled_disconnect.load(Ordering::Relaxed),
            conn_panics: self.conn_panics.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Renders the counters as the `.server` response body.
    pub fn render_text(&self) -> String {
        format!(
            "server: {} accepted, {} active\n\
             rejected: {} connections, {} queued requests\n\
             served: {} ok, {} err\n\
             cancelled by disconnect: {}\n\
             connection panics: {}\n",
            self.accepted,
            self.active,
            self.rejected_conn,
            self.rejected_queue,
            self.served_ok,
            self.served_err,
            self.cancelled_disconnect,
            self.conn_panics,
        )
    }
}

/// A counting semaphore bounding in-flight query execution.
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

/// An execution slot; released on drop (also on panic unwind).
struct Permit<'a>(&'a Semaphore);

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    /// Tries to take a permit, waiting at most `timeout`.
    fn acquire_timeout(&self, timeout: Duration) -> Option<Permit<'_>> {
        let deadline = Instant::now() + timeout;
        let mut permits = self.permits.lock();
        loop {
            if *permits > 0 {
                *permits -= 1;
                return Some(Permit(self));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout(permits, deadline - now);
            permits = guard;
        }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        *self.0.permits.lock() += 1;
        self.0.cv.notify_one();
    }
}

/// State shared between the accept loop, connection threads and handles.
struct Shared {
    engine: Arc<Engine>,
    config: ServerConfig,
    stats: Stats,
    inflight: Semaphore,
    shutdown: AtomicBool,
    /// Open connections by id: a probe handle (for closing idle peers on
    /// shutdown) and whether a request is currently executing.
    conns: Mutex<HashMap<u64, ConnEntry>>,
    next_id: AtomicU64,
}

struct ConnEntry {
    stream: TcpStream,
    busy: Arc<AtomicBool>,
}

/// A bound, not-yet-serving server. [`Server::serve`] runs the accept
/// loop on the calling thread; [`Server::spawn`] is the common
/// bind-and-background convenience.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A cloneable control handle: stats, address and graceful shutdown.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds the listener and prepares shared state. The engine arrives
    /// pre-built (see [`Engine::builder`]); the server never mutates it.
    pub fn bind(engine: Arc<Engine>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            inflight: Semaphore::new(config.max_inflight.max(1)),
            config,
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        });
        Ok(Server {
            listener,
            local_addr,
            shared,
        })
    }

    /// Binds and starts serving on a background thread, returning the
    /// control handle and the accept-loop join handle.
    pub fn spawn(
        engine: Arc<Engine>,
        config: ServerConfig,
    ) -> io::Result<(ServerHandle, std::thread::JoinHandle<io::Result<()>>)> {
        let server = Server::bind(engine, config)?;
        let handle = server.handle();
        let join = std::thread::Builder::new()
            .name("solap-accept".to_owned())
            .spawn(move || server.serve())?;
        Ok((handle, join))
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A control handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            local_addr: self.local_addr,
        }
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`], then drains:
    /// every connection thread is joined before this returns.
    pub fn serve(self) -> io::Result<()> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                // Transient accept failures (peer reset before accept,
                // fd pressure) should not take the server down.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) if e.kind() == io::ErrorKind::ConnectionReset => continue,
                Err(e) => return Err(e),
            };
            workers.retain(|w| !w.is_finished());
            self.shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            if self.shared.stats.active.load(Ordering::Relaxed)
                >= self.shared.config.max_conn as u64
            {
                self.shared
                    .stats
                    .rejected_conn
                    .fetch_add(1, Ordering::Relaxed);
                reject(
                    stream,
                    &self.shared.config,
                    "over_capacity",
                    "connection limit reached — try again later",
                );
                continue;
            }
            let shared = Arc::clone(&self.shared);
            let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
            // Count the connection before its thread runs so a burst of
            // accepts cannot overshoot the limit.
            self.shared.stats.active.fetch_add(1, Ordering::Relaxed);
            let spawned = std::thread::Builder::new()
                .name(format!("solap-conn-{id}"))
                .spawn(move || handle_conn(shared, stream, id));
            match spawned {
                Ok(w) => workers.push(w),
                Err(_) => {
                    // Spawn failure: roll the count back; the stream drops
                    // closed.
                    self.shared.stats.active.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Initiates graceful shutdown: stop accepting, close idle
    /// connections, let in-flight requests finish. `serve()` returns once
    /// every connection thread has exited.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Close idle connections outright; busy ones observe the flag
        // after answering their current request.
        for entry in self.shared.conns.lock().values() {
            if !entry.busy.load(Ordering::SeqCst) {
                let _ = entry.stream.shutdown(Shutdown::Both);
            }
        }
        // Wake the accept loop so it notices the flag.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
    }
}

/// Sends a one-line typed rejection and closes the stream.
fn reject(mut stream: TcpStream, config: &ServerConfig, code: &str, msg: &str) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut line = Response::err(code, msg).to_wire();
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

/// Decrements `active` and unregisters the connection even when the
/// connection thread unwinds.
struct ConnGuard {
    shared: Arc<Shared>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.conns.lock().remove(&self.id);
        self.shared.stats.active.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_conn(shared: Arc<Shared>, stream: TcpStream, id: u64) {
    let guard = ConnGuard {
        shared: Arc::clone(&shared),
        id,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| conn_loop(&shared, stream, id)));
    match outcome {
        Ok(_io_result) => {}
        Err(_) => {
            // A request panicked through the failpoint or a bug outside
            // the engine's own isolation: this connection dies, the
            // server and its siblings stay healthy.
            shared.stats.conn_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
    drop(guard);
}

/// What one bounded line read produced.
enum ReadOutcome {
    Line(String),
    Eof,
    TimedOut,
    TooLong,
    /// The line was not valid UTF-8.
    BadEncoding,
}

/// Reads one `\n`-terminated line, enforcing a byte bound and an overall
/// deadline (each underlying read also carries the socket read timeout).
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    max_bytes: usize,
    deadline: Duration,
) -> io::Result<ReadOutcome> {
    let start = Instant::now();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if start.elapsed() > deadline {
            return Ok(ReadOutcome::TimedOut);
        }
        let (consumed, done) = {
            let available = match reader.fill_buf() {
                Ok(a) => a,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(ReadOutcome::TimedOut)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF; a partial line without terminator is dropped — the
                // peer hung up before finishing its request.
                return Ok(ReadOutcome::Eof);
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&available[..pos]);
                    (pos + 1, true)
                }
                None => {
                    buf.extend_from_slice(available);
                    (available.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if buf.len() > max_bytes {
            return Ok(ReadOutcome::TooLong);
        }
        if done {
            // Tolerate CRLF line endings from e.g. telnet.
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(match String::from_utf8(buf) {
                Ok(s) => ReadOutcome::Line(s),
                Err(_) => ReadOutcome::BadEncoding,
            });
        }
    }
}

/// The `server.request` failpoint: lets the chaos suite inject a typed
/// error or a panic at the top of request handling, outside the engine's
/// own catch_unwind isolation.
fn request_failpoint() -> solap_eventdb::Result<()> {
    fail_point!("server.request");
    Ok(())
}

fn execute_request(ctx: &mut SessionCtx, line: &str) -> Response {
    match request_failpoint() {
        Ok(()) => dispatch(ctx, line),
        Err(e) => Response::err(e.code(), e.to_string()),
    }
}

/// Runs one request while a watcher probes the client socket; a client
/// that disconnects mid-query trips the session's cancel token so the
/// governor aborts the query. Returns the response and whether the
/// client vanished.
///
/// The watcher shortens the socket's read timeout to pace its probe
/// loop; `SO_RCVTIMEO` lives on the socket itself (shared by every
/// `try_clone`), so the connection's own `read_timeout` is restored
/// before returning.
fn run_watched(
    ctx: &mut SessionCtx,
    line: &str,
    probe: &TcpStream,
    cancel: &CancelToken,
    read_timeout: Duration,
) -> (Response, bool) {
    let done = AtomicBool::new(false);
    let disconnected = AtomicBool::new(false);
    let response = std::thread::scope(|scope| {
        scope.spawn(|| {
            let _ = probe.set_read_timeout(Some(Duration::from_millis(20)));
            let mut byte = [0u8; 1];
            while !done.load(Ordering::SeqCst) {
                match probe.peek(&mut byte) {
                    // EOF: the client closed its end.
                    Ok(0) => {
                        disconnected.store(true, Ordering::SeqCst);
                        cancel.cancel();
                        break;
                    }
                    // Pipelined bytes are waiting; peek would return
                    // immediately forever, so pace the loop.
                    Ok(_) => std::thread::sleep(Duration::from_millis(20)),
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) => {}
                    // Reset / broken socket: same as a disconnect.
                    Err(_) => {
                        disconnected.store(true, Ordering::SeqCst);
                        cancel.cancel();
                        break;
                    }
                }
            }
        });
        // Dropped even if the request panics, so the watcher always
        // terminates and the scoped join cannot hang on a dead request.
        struct DoneGuard<'a>(&'a AtomicBool);
        impl Drop for DoneGuard<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let _done = DoneGuard(&done);
        execute_request(ctx, line)
    });
    let _ = probe.set_read_timeout(Some(read_timeout));
    (response, disconnected.load(Ordering::SeqCst))
}

fn write_response(writer: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut line = response.to_wire();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn conn_loop(shared: &Shared, stream: TcpStream, id: u64) -> io::Result<()> {
    let config = &shared.config;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let probe = stream.try_clone()?;
    let mut writer = stream.try_clone()?;
    let busy = Arc::new(AtomicBool::new(false));
    shared.conns.lock().insert(
        id,
        ConnEntry {
            stream: stream.try_clone()?,
            busy: Arc::clone(&busy),
        },
    );
    let mut reader = BufReader::new(stream);
    let mut ctx = SessionCtx::new(Arc::clone(&shared.engine));
    let cancel = ctx.cancel_token();
    loop {
        let line = match read_line_bounded(&mut reader, config.max_line_bytes, config.read_timeout)?
        {
            ReadOutcome::Eof | ReadOutcome::TimedOut => break,
            ReadOutcome::TooLong => {
                let r = Response::err(
                    "too_large",
                    format!("request exceeds {} bytes", config.max_line_bytes),
                );
                shared.stats.served_err.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(&mut writer, &r);
                break;
            }
            ReadOutcome::BadEncoding => {
                let r = Response::err("bad_request", "request is not valid UTF-8");
                shared.stats.served_err.fetch_add(1, Ordering::Relaxed);
                write_response(&mut writer, &r)?;
                continue;
            }
            ReadOutcome::Line(l) => l,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let r = Response::err("shutting_down", "server is shutting down");
            shared.stats.served_err.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut writer, &r);
            break;
        }
        let trimmed = line.trim();
        if trimmed == ".server" {
            // Served outside the admission gate: observability must work
            // even when the execution slots are saturated.
            let r = Response::ok(shared.stats.snapshot().render_text());
            shared.stats.served_ok.fetch_add(1, Ordering::Relaxed);
            write_response(&mut writer, &r)?;
            continue;
        }
        let Some(permit) = shared.inflight.acquire_timeout(config.queue_timeout) else {
            shared.stats.rejected_queue.fetch_add(1, Ordering::Relaxed);
            shared.stats.served_err.fetch_add(1, Ordering::Relaxed);
            write_response(
                &mut writer,
                &Response::err(
                    "over_capacity",
                    "no execution slot became free in time — try again later",
                ),
            )?;
            continue;
        };
        busy.store(true, Ordering::SeqCst);
        let (response, client_gone) =
            run_watched(&mut ctx, trimmed, &probe, &cancel, config.read_timeout);
        busy.store(false, Ordering::SeqCst);
        drop(permit);
        if client_gone {
            shared
                .stats
                .cancelled_disconnect
                .fetch_add(1, Ordering::Relaxed);
            break;
        }
        if response.ok {
            shared.stats.served_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.served_err.fetch_add(1, Ordering::Relaxed);
        }
        write_response(&mut writer, &response)?;
        if response.quit || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    Ok(())
}
