//! # solap-server
//!
//! Concurrent query serving for the S-OLAP engine — the layer that turns
//! the single-process prototype of Figure 6 into a multi-client system.
//!
//! The paper's architecture puts a *query engine* behind user sessions
//! that navigate cuboids interactively (§5's Qa → Qb → Qc explorations).
//! This crate reproduces that shape as infrastructure:
//!
//! * [`dispatch`](mod@crate::dispatch) — the shared statement-dispatch layer. The REPL,
//!   `solap --eval` scripts and every server connection execute
//!   statements through the same [`dispatch::dispatch`] function over a
//!   [`dispatch::SessionCtx`], so the surfaces cannot drift.
//! * [`server`] — a zero-dependency (`std::net` + `std::thread`)
//!   readiness-driven TCP server: one event loop multiplexes every
//!   non-blocking accepted socket through the [`readiness`] shim, frames
//!   statements incrementally ([`conn`]), and hands batches to a bounded
//!   worker pool sharing one [`Engine`](solap_core::Engine) — with
//!   request pipelining, admission control, disconnect-triggered query
//!   cancellation, hostile-input guards, panic isolation and graceful
//!   shutdown.
//! * [`readiness`] — the zero-`unsafe` poll-style multiplexer (probe via
//!   non-blocking peeks, parked waits cut short by a [`readiness::Waker`]).
//! * [`conn`] — per-connection incremental line framing and the
//!   cursor-compacted write buffer.
//! * [`client`] — the protocol client library (used by `solap
//!   --connect`, the `serve` benchmark and the chaos, soak and framing
//!   suites), including the pipelined batch API.
//! * [`command`] — argument parsing for the `.op` sub-language, `k=v`
//!   option lists and the dataset generators.
//! * [`json`] — the minimal JSON encoder/parser behind the wire format
//!   (the build environment has no crates.io access).
//!
//! ## Protocol
//!
//! Requests are newline-terminated statements in the Figure-3 query
//! language or dot-command syntax — exactly what the REPL accepts, minus
//! the engine-lifecycle commands (`.gen`/`.save`/`.load`, which are
//! rejected with code `unsupported`). Responses are one JSON line each:
//!
//! ```text
//! {"ok":true,"body":"…rendered output…"}
//! {"ok":true,"body":"…","profile":{…}}          (with .profile on)
//! {"ok":false,"code":"resource_exhausted","error":"…"}
//! ```
//!
//! Error codes are stable and machine-readable: the engine's
//! [`Error::code`](solap_eventdb::Error::code) values plus the surface
//! codes `usage`, `unsupported`, `over_capacity`, `too_large`,
//! `bad_request` and `shutting_down`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod command;
pub mod conn;
pub mod dispatch;
pub mod json;
pub mod readiness;
pub mod server;

pub use client::{Client, WireResponse};
pub use dispatch::{dispatch, Response, SessionCtx};
pub use server::{Server, ServerConfig, ServerHandle, StatsSnapshot};
