//! The zero-`unsafe` readiness shim behind the event loop.
//!
//! The workspace forbids `unsafe` everywhere (solint's `forbid-unsafe`
//! rule), which rules out binding `poll(2)`/`epoll(7)` through FFI. This
//! module provides the same *shape* — register sources with a read/write
//! interest, ask "who is ready?", park until something happens — on top
//! of plain non-blocking sockets:
//!
//! * **Read readiness** is discovered by probing each registered source
//!   with a non-blocking one-byte [`TcpStream::peek`]: `Ok(n>0)` means
//!   readable, `Ok(0)` means the peer hung up, `WouldBlock` means idle.
//!   `EINTR` is retried a bounded number of times and then treated as a
//!   spurious (empty) probe rather than an error.
//! * **Write readiness** cannot be probed without writing, so the poller
//!   reports every write-interest source as *assumed writable* on each
//!   return — level-triggered optimism. The consumer's own non-blocking
//!   `write` is the authoritative check; a `WouldBlock` there simply
//!   leaves the interest registered, and the poll timeout paces the
//!   retry so a stalled peer costs one failed write per poll interval,
//!   never a busy spin.
//! * **Wakeups** come from a [`Waker`]: worker threads finishing a
//!   statement wake the parked loop so responses flush promptly instead
//!   of waiting out the poll timeout. Spurious wakeups are allowed by
//!   contract — [`Poller::poll`] may return an empty event set at any
//!   time, and the caller just loops.
//!
//! The cost model is explicit: one `peek` syscall per read-interest
//! source per sweep. [`Poller::poll`] bundles park-then-sweep for
//! simple consumers; loops that serve thousands of mostly-idle
//! connections instead pace their own sweeps with [`Poller::sweep_now`]
//! and wait with [`Poller::park`], so with `C` connections and a sweep
//! cadence of `t` the probe load stays `C/t` syscalls per second *no
//! matter how often the waker fires* — the classic readiness-loop trade
//! struck without leaving safe Rust. Registration, deregistration,
//! interest changes, EINTR, timeout and backpressure paths are
//! unit-tested below against a scripted [`Pollable`] fake.

use std::collections::BTreeMap;
use std::io;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// What a source wants the poller to watch for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Probe for incoming bytes / peer hangup.
    pub read: bool,
    /// Report the source as (assumed) writable so the owner retries a
    /// pending flush.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    /// No interest at all — the source stays registered but is skipped.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the source was registered under.
    pub token: u64,
    /// Bytes are waiting (a probe saw data).
    pub readable: bool,
    /// The source has write interest and should retry its flush
    /// (assumed-writable; see the module docs).
    pub writable: bool,
    /// The peer closed or broke the connection.
    pub hangup: bool,
}

/// What one read-readiness probe observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// At least one byte is waiting.
    Data,
    /// Nothing to read right now (`EWOULDBLOCK`).
    Empty,
    /// The peer closed (EOF) or the connection broke.
    Closed,
    /// The probe was interrupted by a signal (`EINTR`); retry.
    Interrupted,
}

/// A source the poller can probe for read readiness.
pub trait Pollable {
    /// Probes for readable data without consuming it.
    fn probe_read(&self) -> Probe;
}

impl Pollable for TcpStream {
    fn probe_read(&self) -> Probe {
        let mut byte = [0u8; 1];
        match self.peek(&mut byte) {
            Ok(0) => Probe::Closed,
            Ok(_) => Probe::Data,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Probe::Empty
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Probe::Interrupted,
            Err(_) => Probe::Closed,
        }
    }
}

/// How many consecutive `EINTR`s a single probe retries before treating
/// the sweep as spurious.
const EINTR_RETRIES: usize = 3;

/// Shared wake state: a latched flag under a mutex plus a condvar that
/// interrupts the poller's park.
struct WakeState {
    flag: Mutex<bool>,
    cv: Condvar,
}

/// Wakes a parked [`Poller`] from another thread. Cheap to clone; wakes
/// coalesce (N wakes before the next poll produce one early return).
#[derive(Clone)]
pub struct Waker {
    state: Arc<WakeState>,
}

impl Waker {
    /// A waker not yet attached to a poller (attach with
    /// [`Poller::with_waker`]).
    pub fn new() -> Waker {
        Waker {
            state: Arc::new(WakeState {
                flag: Mutex::ranked(parking_lot::rank::SERVER_WAKER, "server.waker", false),
                cv: Condvar::new(),
            }),
        }
    }

    /// Wakes the poller: an in-progress park returns immediately, and
    /// the *next* park returns immediately if none is in progress.
    pub fn wake(&self) {
        let mut flag = self.state.flag.lock();
        *flag = true;
        self.state.cv.notify_all();
    }
}

impl Default for Waker {
    fn default() -> Self {
        Waker::new()
    }
}

/// The readiness loop's core: a registry of sources with interests and
/// a park-or-sweep [`poll`](Poller::poll).
pub struct Poller<S> {
    sources: BTreeMap<u64, (S, Interest)>,
    waker: Waker,
    /// Sweeps that observed at least one `EINTR` (observability + tests).
    interrupted_probes: u64,
}

impl<S: Pollable> Poller<S> {
    /// An empty poller with a fresh internal waker.
    pub fn new() -> Poller<S> {
        Poller::with_waker(Waker::new())
    }

    /// An empty poller parked/woken through `waker` (share the waker with
    /// worker threads to flush completions promptly).
    pub fn with_waker(waker: Waker) -> Poller<S> {
        Poller {
            sources: BTreeMap::new(),
            waker,
            interrupted_probes: 0,
        }
    }

    /// A clone of the waker that interrupts this poller's park.
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Registers a source under `token`. Fails if the token is taken —
    /// tokens are the caller's identity scheme and must be unique.
    pub fn register(&mut self, token: u64, source: S, interest: Interest) -> io::Result<()> {
        if self.sources.contains_key(&token) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("token {token} is already registered"),
            ));
        }
        self.sources.insert(token, (source, interest));
        Ok(())
    }

    /// Removes a source, returning it so the caller can close it.
    pub fn deregister(&mut self, token: u64) -> Option<S> {
        self.sources.remove(&token).map(|(s, _)| s)
    }

    /// Replaces a source's interest. Returns `false` for unknown tokens.
    pub fn set_interest(&mut self, token: u64, interest: Interest) -> bool {
        match self.sources.get_mut(&token) {
            Some(slot) => {
                slot.1 = interest;
                true
            }
            None => false,
        }
    }

    /// Borrows a registered source (the event loop reads and writes
    /// through `&TcpStream`, so the poller can keep ownership and each
    /// connection stays a single file descriptor).
    pub fn get(&self, token: u64) -> Option<&S> {
        self.sources.get(&token).map(|(s, _)| s)
    }

    /// A source's current interest.
    pub fn interest(&self, token: u64) -> Option<Interest> {
        self.sources.get(&token).map(|(_, i)| *i)
    }

    /// Registered source count.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Sweeps that saw `EINTR` (they are retried, never surfaced).
    pub fn interrupted_probes(&self) -> u64 {
        self.interrupted_probes
    }

    /// One probe sweep over every registered source.
    fn sweep(&mut self, events: &mut Vec<Event>) -> (bool, bool) {
        let mut any_read = false;
        let mut any_write = false;
        for (&token, (source, interest)) in &self.sources {
            let mut ev = Event {
                token,
                readable: false,
                writable: false,
                hangup: false,
            };
            if interest.read {
                let mut probe = source.probe_read();
                let mut retries = 0;
                while probe == Probe::Interrupted && retries < EINTR_RETRIES {
                    self.interrupted_probes += 1;
                    retries += 1;
                    probe = source.probe_read();
                }
                match probe {
                    Probe::Data => ev.readable = true,
                    Probe::Closed => ev.hangup = true,
                    // A probe still interrupted after its retries is
                    // treated as an empty (spurious) observation; the
                    // next sweep tries again.
                    Probe::Empty | Probe::Interrupted => {}
                }
            }
            if interest.write {
                ev.writable = true;
            }
            if ev.readable || ev.writable || ev.hangup {
                any_read |= ev.readable || ev.hangup;
                any_write |= ev.writable;
                events.push(ev);
            }
        }
        (any_read, any_write)
    }

    /// One immediate probe sweep with no park, for callers that pace
    /// sweeps themselves (see [`Poller::park`]): with `C` sources a
    /// sweep costs `C` probe syscalls, so a loop serving thousands of
    /// mostly-idle connections runs full sweeps on a cadence scaled to
    /// `C` and parks in between, instead of re-probing everyone on
    /// every wakeup. A pending wake latch is left alone — it still cuts
    /// the next park short.
    pub fn sweep_now(&mut self, events: &mut Vec<Event>) -> usize {
        events.clear();
        self.sweep(events);
        events.len()
    }

    /// Parks until the waker fires or `timeout` elapses, probing
    /// nothing. Returns `true` when the park was cut short (or
    /// pre-empted) by a wake. Pairs with [`Poller::sweep_now`]: worker
    /// completions interrupt the park immediately while idle sources
    /// cost zero syscalls until the next paced sweep.
    pub fn park(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut flag = self.waker.state.flag.lock();
        while !*flag {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let state = Arc::clone(&self.waker.state);
            let (guard, _timed_out) = state.cv.wait_timeout(flag, deadline - now);
            flag = guard;
        }
        std::mem::take(&mut *flag)
    }

    /// Collects ready sources into `events`, parking up to `timeout`.
    ///
    /// Returns as soon as a sweep observes readable data or a hangup, or
    /// when the waker fires, or when the timeout elapses — whichever is
    /// first. Assumed-writable events never cut the park short on their
    /// own (that is what paces flush retries against a stalled reader),
    /// but they ride along on every return. May return an empty set
    /// (timeout or spurious wakeup); callers must tolerate that.
    pub fn poll(&mut self, events: &mut Vec<Event>, timeout: Duration) -> usize {
        events.clear();
        let deadline = Instant::now() + timeout;
        // Fast path: if the waker already fired, or a probe finds data,
        // return without parking.
        let woken = {
            let mut flag = self.waker.state.flag.lock();
            std::mem::take(&mut *flag)
        };
        let (any_read, _) = self.sweep(events);
        if any_read || woken {
            return events.len();
        }
        // Park until woken or the deadline passes, then sweep once more.
        // A spurious condvar wakeup just means an extra sweep.
        {
            let mut flag = self.waker.state.flag.lock();
            while !*flag {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let state = Arc::clone(&self.waker.state);
                let (guard, _timed_out) = state.cv.wait_timeout(flag, deadline - now);
                flag = guard;
            }
            *flag = false;
        }
        events.clear();
        self.sweep(events);
        events.len()
    }
}

impl<S: Pollable> Default for Poller<S> {
    fn default() -> Self {
        Poller::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// A scripted source: pops one probe result per call, repeating the
    /// last one when the script runs dry.
    struct Fake {
        script: RefCell<VecDeque<Probe>>,
        last: RefCell<Probe>,
    }

    impl Fake {
        fn new(script: &[Probe]) -> Fake {
            Fake {
                script: RefCell::new(script.iter().copied().collect()),
                last: RefCell::new(*script.last().unwrap_or(&Probe::Empty)),
            }
        }
    }

    impl Pollable for Fake {
        fn probe_read(&self) -> Probe {
            match self.script.borrow_mut().pop_front() {
                Some(p) => {
                    *self.last.borrow_mut() = p;
                    p
                }
                None => *self.last.borrow(),
            }
        }
    }

    fn poll_once(poller: &mut Poller<Fake>, timeout_ms: u64) -> Vec<Event> {
        let mut events = Vec::new();
        poller.poll(&mut events, Duration::from_millis(timeout_ms));
        events
    }

    #[test]
    fn registration_and_deregistration() {
        let mut p: Poller<Fake> = Poller::new();
        assert!(p.is_empty());
        p.register(1, Fake::new(&[Probe::Data]), Interest::READ)
            .unwrap();
        p.register(2, Fake::new(&[Probe::Data]), Interest::READ)
            .unwrap();
        assert_eq!(p.len(), 2);
        // Duplicate tokens are an error, not a silent replace.
        let dup = p.register(1, Fake::new(&[Probe::Empty]), Interest::READ);
        assert_eq!(dup.unwrap_err().kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(p.len(), 2);
        // Both readable sources report; deregistering one removes it
        // from subsequent sweeps.
        let events = poll_once(&mut p, 10);
        assert_eq!(events.len(), 2);
        assert!(p.deregister(2).is_some());
        assert!(p.deregister(2).is_none());
        let events = poll_once(&mut p, 10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 1);
        assert!(events[0].readable && !events[0].hangup);
    }

    #[test]
    fn interest_changes_gate_probing_and_reporting() {
        let mut p: Poller<Fake> = Poller::new();
        p.register(7, Fake::new(&[Probe::Data]), Interest::NONE)
            .unwrap();
        // No interest: a readable source is never reported.
        assert!(poll_once(&mut p, 5).is_empty());
        assert!(p.set_interest(7, Interest::READ));
        let events = poll_once(&mut p, 5);
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
        // Unknown tokens are refused.
        assert!(!p.set_interest(99, Interest::READ));
        assert_eq!(p.interest(7), Some(Interest::READ));
    }

    #[test]
    fn hangup_is_reported_distinctly() {
        let mut p: Poller<Fake> = Poller::new();
        p.register(3, Fake::new(&[Probe::Closed]), Interest::READ)
            .unwrap();
        let events = poll_once(&mut p, 5);
        assert_eq!(events.len(), 1);
        assert!(events[0].hangup && !events[0].readable);
    }

    #[test]
    fn eintr_probes_are_retried_not_surfaced() {
        let mut p: Poller<Fake> = Poller::new();
        // Two EINTRs then data: the same sweep must retry through to the
        // data without reporting an error or an empty set.
        p.register(
            4,
            Fake::new(&[Probe::Interrupted, Probe::Interrupted, Probe::Data]),
            Interest::READ,
        )
        .unwrap();
        let events = poll_once(&mut p, 50);
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
        assert_eq!(p.interrupted_probes(), 2);
        // A probe that stays interrupted past its retry budget degrades
        // to an empty observation (spurious sweep), never a panic/hang.
        let mut p2: Poller<Fake> = Poller::new();
        p2.register(5, Fake::new(&[Probe::Interrupted]), Interest::READ)
            .unwrap();
        let t0 = Instant::now();
        assert!(poll_once(&mut p2, 20).is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert!(p2.interrupted_probes() >= EINTR_RETRIES as u64);
    }

    #[test]
    fn timeout_path_returns_empty_after_the_deadline() {
        let mut p: Poller<Fake> = Poller::new();
        p.register(1, Fake::new(&[Probe::Empty]), Interest::READ)
            .unwrap();
        let t0 = Instant::now();
        let events = poll_once(&mut p, 40);
        assert!(events.is_empty());
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(40), "parked {waited:?}");
        // Idle sources with no interest at all also just time out.
        assert!(p.set_interest(1, Interest::NONE));
        assert!(poll_once(&mut p, 10).is_empty());
    }

    #[test]
    fn waker_cuts_the_park_short_and_wakes_coalesce() {
        let mut p: Poller<Fake> = Poller::new();
        p.register(1, Fake::new(&[Probe::Empty]), Interest::READ)
            .unwrap();
        let waker = p.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // Several wakes in a row must coalesce into one early return.
            waker.wake();
            waker.wake();
            waker.wake();
        });
        let t0 = Instant::now();
        let events = poll_once(&mut p, 5_000);
        let waited = t0.elapsed();
        t.join().unwrap();
        assert!(events.is_empty(), "spurious wakeup returns an empty set");
        assert!(
            waited < Duration::from_secs(2),
            "waker did not interrupt the park ({waited:?})"
        );
        // The latched wake was consumed: the next poll parks again.
        let t0 = Instant::now();
        poll_once(&mut p, 30);
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn wake_before_poll_is_latched() {
        let mut p: Poller<Fake> = Poller::new();
        p.register(1, Fake::new(&[Probe::Empty]), Interest::READ)
            .unwrap();
        p.waker().wake();
        let t0 = Instant::now();
        let events = poll_once(&mut p, 5_000);
        assert!(events.is_empty());
        assert!(t0.elapsed() < Duration::from_secs(2), "latched wake lost");
    }

    #[test]
    fn assumed_writable_rides_along_but_never_cuts_the_park() {
        let mut p: Poller<Fake> = Poller::new();
        p.register(
            1,
            Fake::new(&[Probe::Empty]),
            Interest {
                read: true,
                write: true,
            },
        )
        .unwrap();
        // Write interest alone must wait out the timeout (this is the
        // pacing that stops a stalled reader from inducing a busy spin)…
        let t0 = Instant::now();
        let events = poll_once(&mut p, 40);
        assert!(t0.elapsed() >= Duration::from_millis(40));
        // …but the writable event is still delivered on return.
        assert_eq!(events.len(), 1);
        assert!(events[0].writable && !events[0].readable);
        // A readable sibling returns immediately and the writable event
        // still rides along.
        p.register(2, Fake::new(&[Probe::Data]), Interest::READ)
            .unwrap();
        let t0 = Instant::now();
        let events = poll_once(&mut p, 5_000);
        assert!(t0.elapsed() < Duration::from_secs(2));
        assert_eq!(events.len(), 2);
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
    }

    #[test]
    fn park_and_sweep_now_split_waiting_from_probing() {
        let mut p: Poller<Fake> = Poller::new();
        p.register(1, Fake::new(&[Probe::Data]), Interest::READ)
            .unwrap();
        // park probes nothing: even a readable source does not cut it
        // short — only the waker or the deadline do.
        let t0 = Instant::now();
        assert!(!p.park(Duration::from_millis(30)));
        assert!(t0.elapsed() >= Duration::from_millis(30));
        // The waker interrupts a park in progress…
        let waker = p.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let t0 = Instant::now();
        assert!(p.park(Duration::from_secs(5)));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "park missed the wake"
        );
        t.join().unwrap();
        // …a latched wake pre-empts the next park and is consumed by it…
        p.waker().wake();
        assert!(p.park(Duration::from_secs(5)));
        let t0 = Instant::now();
        assert!(!p.park(Duration::from_millis(20)));
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // …and sweep_now probes immediately, leaving any latch alone
        // for the caller's next park.
        let mut events = Vec::new();
        assert_eq!(p.sweep_now(&mut events), 1);
        assert!(events[0].readable);
        p.waker().wake();
        p.sweep_now(&mut events);
        let t0 = Instant::now();
        assert!(p.park(Duration::from_secs(5)), "sweep_now ate the latch");
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn spurious_readiness_is_harmless() {
        // A source that claims Data but whose consumer would then see
        // WouldBlock: the poller reports readable again next sweep and
        // nothing breaks — consumers own the authoritative read.
        let mut p: Poller<Fake> = Poller::new();
        p.register(1, Fake::new(&[Probe::Data, Probe::Empty]), Interest::READ)
            .unwrap();
        let events = poll_once(&mut p, 5);
        assert_eq!(events.len(), 1);
        // Second poll: the script is now Empty — clean timeout, no
        // lingering phantom readiness.
        assert!(poll_once(&mut p, 5).is_empty());
    }

    /// Real-socket coverage of the [`Pollable`] impl for [`TcpStream`]:
    /// probe states and writable-interest backpressure against a peer
    /// that stops reading mid-response.
    #[test]
    fn tcp_probe_and_write_backpressure() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        // Idle: empty probe.
        assert_eq!(server.probe_read(), Probe::Empty);
        // Data waiting: readable, and the probe does not consume it.
        client.write_all(b"hello\n").unwrap();
        let mut p: Poller<TcpStream> = Poller::new();
        p.register(1, server, Interest::READ).unwrap();
        let mut events = Vec::new();
        assert!(p.poll(&mut events, Duration::from_secs(5)) >= 1);
        assert!(events[0].readable);
        let server = p.get(1).unwrap();
        let mut buf = [0u8; 16];
        let n = (&*server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello\n");

        // Backpressure: the client stops reading; non-blocking writes
        // eventually hit WouldBlock. The poller keeps the write interest
        // and paces retries by its timeout instead of spinning.
        let chunk = vec![0x2au8; 64 * 1024];
        let mut stalled = false;
        let mut queued = 0usize;
        for _ in 0..4096 {
            match (&*server).write(&chunk) {
                Ok(n) => queued += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    stalled = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected write error: {e}"),
            }
        }
        assert!(stalled, "kernel buffers never filled ({queued} bytes)");
        p.set_interest(
            1,
            Interest {
                read: true,
                write: true,
            },
        );
        // The stalled writer is paced: the poll waits its full timeout
        // and then reports assumed-writable for the retry.
        let t0 = Instant::now();
        p.poll(&mut events, Duration::from_millis(30));
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // The peer drains everything; the retried write then succeeds.
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut sink = vec![0u8; 256 * 1024];
        let mut drained = 0usize;
        while drained < queued {
            match client.read(&mut sink) {
                Ok(0) => break,
                Ok(n) => drained += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("drain failed: {e}"),
            }
        }
        assert_eq!(drained, queued);
        let server = p.get(1).unwrap();
        let wrote = (&*server).write(&chunk);
        assert!(wrote.is_ok(), "write still stalled after peer drained");

        // Hangup: the client closes; the probe reports Closed.
        drop(client);
        std::thread::sleep(Duration::from_millis(50));
        // Drain whatever of our backlog the kernel still buffers…
        let server = p.deregister(1).unwrap();
        assert!(p.is_empty());
        std::thread::sleep(Duration::from_millis(50));
        // …the probe on a closed peer reports Closed (possibly after the
        // RST from the unread data propagates).
        let mut saw_closed = false;
        for _ in 0..100 {
            if server.probe_read() == Probe::Closed {
                saw_closed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(saw_closed, "hangup never observed");
    }
}
