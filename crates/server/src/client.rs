//! The wire-protocol client library.
//!
//! Speaks the server's newline-delimited protocol: one statement per
//! line out, one JSON line back. Used by `solap --connect`, the `serve`
//! benchmark and the chaos suite; external tooling can use it as the
//! reference implementation of the protocol.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::Json;

/// A response read back over the wire — the client-side mirror of
/// [`Response`](crate::dispatch::Response), with the profile kept as
/// parsed JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// Whether the statement succeeded server-side.
    pub ok: bool,
    /// The stable error code when `!ok`.
    pub code: Option<String>,
    /// Rendered output (success) or the error message (failure).
    pub body: String,
    /// The query's profile, when the session has profiling on.
    pub profile: Option<Json>,
    /// The structured plan, on EXPLAIN responses.
    pub plan: Option<Json>,
    /// Whether the server is closing this session (`.quit`).
    pub quit: bool,
}

impl WireResponse {
    /// Parses one response line.
    pub fn parse(line: &str) -> io::Result<WireResponse> {
        let v = Json::parse(line.trim()).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}"))
        })?;
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response missing `ok`"))?;
        let body = if ok { "body" } else { "error" };
        Ok(WireResponse {
            ok,
            code: v.get("code").and_then(Json::as_str).map(str::to_owned),
            body: v
                .get(body)
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            profile: v.get("profile").cloned(),
            plan: v.get("plan").cloned(),
            quit: v.get("quit").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// A connected protocol client. One client is one server-side session:
/// navigation state (current cuboid, history, per-session config) lives
/// on the server until the connection closes.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connects with a connect timeout (resolved address form).
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        Client::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sets how long [`Client::request`] waits for a response before
    /// failing with a timeout error.
    pub fn set_response_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one statement and reads its response. Embedded newlines are
    /// folded to spaces (the protocol is line-based); a statement from a
    /// multi-line script can therefore be passed as-is.
    pub fn request(&mut self, statement: &str) -> io::Result<WireResponse> {
        Ok(self.request_raw(statement)?.1)
    }

    /// Like [`Client::request`], but also returns the raw response line
    /// (for surfaces that relay the JSON verbatim, e.g. `solap --json`).
    pub fn request_raw(&mut self, statement: &str) -> io::Result<(String, WireResponse)> {
        self.send_only(statement)?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let parsed = WireResponse::parse(&response)?;
        Ok((response.trim_end().to_owned(), parsed))
    }

    /// The underlying stream (tests use this to force half-closes).
    pub fn stream(&self) -> &TcpStream {
        self.reader.get_ref()
    }

    /// Sends a statement *without* waiting for the response — the chaos
    /// suite uses this to disconnect mid-query.
    pub fn send_only(&mut self, statement: &str) -> io::Result<()> {
        let mut line = statement.replace(['\n', '\r'], " ");
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Writes a whole batch of statements in one send without reading
    /// any responses — the pipelined half of [`Client::pipeline`].
    pub fn send_batch<S: AsRef<str>>(&mut self, statements: &[S]) -> io::Result<()> {
        let mut wire = String::new();
        for statement in statements {
            wire.push_str(&statement.as_ref().replace(['\n', '\r'], " "));
            wire.push('\n');
        }
        self.writer.write_all(wire.as_bytes())?;
        self.writer.flush()
    }

    /// Reads the next response line (pairs with [`Client::send_batch`]:
    /// the server answers pipelined statements in order, one line each).
    pub fn recv_response(&mut self) -> io::Result<WireResponse> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        WireResponse::parse(&response)
    }

    /// Pipelines a batch: writes every statement up front, then reads
    /// the responses back in statement order.
    pub fn pipeline<S: AsRef<str>>(&mut self, statements: &[S]) -> io::Result<Vec<WireResponse>> {
        self.send_batch(statements)?;
        let mut responses = Vec::with_capacity(statements.len());
        for _ in statements {
            responses.push(self.recv_response()?);
        }
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ok_and_error_lines() {
        let r = WireResponse::parse(r#"{"ok":true,"body":"42 cells\n","quit":false}"#).unwrap();
        assert!(r.ok && r.body.contains("42 cells"));
        assert!(r.code.is_none() && !r.quit);
        let r =
            WireResponse::parse(r#"{"ok":false,"code":"over_capacity","error":"busy"}"#).unwrap();
        assert!(!r.ok);
        assert_eq!(r.code.as_deref(), Some("over_capacity"));
        assert_eq!(r.body, "busy");
        assert!(WireResponse::parse("not json").is_err());
        assert!(WireResponse::parse(r#"{"body":"no ok field"}"#).is_err());
    }

    #[test]
    fn parse_profile_passthrough() {
        let r = WireResponse::parse(r#"{"ok":true,"body":"","profile":{"stage":{"total_ns":5}}}"#)
            .unwrap();
        let p = r.profile.unwrap();
        assert_eq!(
            p.get("stage").unwrap().get("total_ns").unwrap().as_f64(),
            Some(5.0)
        );
    }
}
