//! Argument parsing shared by every statement surface: `k=v` option
//! lists, the `.op` sub-language that maps onto [`solap_core::Op`], and
//! the dataset generators behind `.gen` / `solap-serve --gen`.
//!
//! This lived in the CLI crate until the server grew a second statement
//! surface; it moved here so the REPL, `--eval` scripts and the wire
//! protocol resolve operations identically.

use std::collections::HashMap;

use solap_core::{Op, SCuboidSpec};
use solap_datagen::{ClickstreamConfig, SyntheticConfig, TransitConfig};
use solap_eventdb::EventDb;

/// A failed argument parse: either a usage mistake or a typed engine
/// error (unknown attribute, bad literal, …) whose stable
/// [`code()`](solap_eventdb::Error::code) is worth preserving on the wire.
#[derive(Debug)]
pub enum ArgError {
    /// The arguments did not fit the command's grammar.
    Usage(String),
    /// Resolution against the schema or spec failed.
    Engine(solap_eventdb::Error),
}

impl ArgError {
    /// The stable machine-readable code for this failure.
    pub fn code(&self) -> &'static str {
        match self {
            ArgError::Usage(_) => "usage",
            ArgError::Engine(e) => e.code(),
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> String {
        match self {
            ArgError::Usage(m) => m.clone(),
            ArgError::Engine(e) => e.to_string(),
        }
    }
}

impl From<solap_eventdb::Error> for ArgError {
    fn from(e: solap_eventdb::Error) -> Self {
        ArgError::Engine(e)
    }
}

fn usage(msg: impl Into<String>) -> ArgError {
    ArgError::Usage(msg.into())
}

/// Parses `key=value` arguments.
pub fn parse_kv(args: &[&str]) -> Result<HashMap<String, String>, ArgError> {
    let mut out = HashMap::new();
    for a in args {
        let (k, v) = a
            .split_once('=')
            .ok_or_else(|| usage(format!("expected key=value, got `{a}`")))?;
        if k.is_empty() || v.is_empty() {
            return Err(usage(format!("expected key=value, got `{a}`")));
        }
        out.insert(k.to_owned(), v.to_owned());
    }
    Ok(out)
}

/// Parses a `.op …` invocation into an [`Op`], resolving attribute and
/// level names (and slice values) against the schema and the current spec.
pub fn parse_op(
    db: &EventDb,
    args: &[&str],
    current: Option<&SCuboidSpec>,
) -> Result<Op, ArgError> {
    let op_usage = || {
        usage(
            "usage: .op append|prepend|detail|dehead|prollup|pdrilldown|rollup|drilldown|\
             slice-pattern|slice-group|minsup …",
        )
    };
    let op = args.first().copied().ok_or_else(op_usage)?;
    let arg = |i: usize| -> Result<&str, ArgError> {
        args.get(i)
            .copied()
            .ok_or_else(|| usage(format!("`.op {op}` needs more arguments")))
    };
    let attr_level = |attr_name: &str, level_name: &str| -> Result<(u32, usize), ArgError> {
        let attr = db.attr(attr_name)?;
        let level = db.level_by_name(attr, level_name)?;
        Ok((attr, level))
    };
    match op {
        "append" | "prepend" => {
            let symbol = arg(1)?.to_owned();
            // If the symbol exists in the current template, reuse its
            // binding; otherwise ATTR and LEVEL are required.
            let existing = current.and_then(|s| {
                s.template
                    .dims
                    .iter()
                    .find(|d| d.name == symbol)
                    .map(|d| (d.attr, d.level))
            });
            let (attr, level) = match (existing, args.len()) {
                (Some(b), 2) => b,
                _ => attr_level(arg(2)?, arg(3)?)?,
            };
            Ok(if op == "append" {
                Op::Append {
                    symbol,
                    attr,
                    level,
                }
            } else {
                Op::Prepend {
                    symbol,
                    attr,
                    level,
                }
            })
        }
        "detail" => Ok(Op::DeTail),
        "dehead" => Ok(Op::DeHead),
        "prollup" => Ok(Op::PRollUp {
            dim: arg(1)?.to_owned(),
        }),
        "pdrilldown" => Ok(Op::PDrillDown {
            dim: arg(1)?.to_owned(),
        }),
        "rollup" => {
            let attr = db.attr(arg(1)?)?;
            Ok(Op::RollUp { attr })
        }
        "drilldown" => {
            let attr = db.attr(arg(1)?)?;
            Ok(Op::DrillDown { attr })
        }
        "slice-pattern" => {
            let dim_name = arg(1)?.to_owned();
            let spec = current.ok_or_else(|| usage("no current query"))?;
            let dim = spec
                .template
                .dims
                .iter()
                .find(|d| d.name == dim_name)
                .ok_or_else(|| usage(format!("no pattern dimension `{dim_name}`")))?;
            let value = db.parse_level_value(dim.attr, dim.level, arg(2)?)?;
            Ok(Op::SlicePattern {
                dim: dim_name,
                value,
            })
        }
        "slice-group" => {
            let idx: usize = arg(1)?
                .parse()
                .map_err(|_| usage("slice-group needs a dimension index"))?;
            let spec = current.ok_or_else(|| usage("no current query"))?;
            let al = spec
                .seq
                .group_by
                .get(idx)
                .ok_or_else(|| usage(format!("no global dimension #{idx}")))?;
            let value = db.parse_level_value(al.attr, al.level, arg(2)?)?;
            Ok(Op::SliceGlobal { dim: idx, value })
        }
        "minsup" => {
            let v = arg(1)?;
            if v == "off" {
                Ok(Op::SetMinSupport(None))
            } else {
                let n: u64 = v
                    .parse()
                    .map_err(|_| usage("minsup needs a number or `off`"))?;
                Ok(Op::SetMinSupport(Some(n)))
            }
        }
        _ => Err(op_usage()),
    }
}

/// Builds a dataset from a generator name and `k=v` options — the engine
/// bootstrap shared by the REPL's `.gen` and `solap-serve --gen`.
pub fn generate(kind: &str, kv: &HashMap<String, String>) -> Result<EventDb, ArgError> {
    let get_usize = |key: &str, default: usize| -> Result<usize, ArgError> {
        match kv.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| usage(format!("bad integer for {key}: {v}"))),
            None => Ok(default),
        }
    };
    let get_f64 = |key: &str, default: f64| -> Result<f64, ArgError> {
        match kv.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| usage(format!("bad number for {key}: {v}"))),
            None => Ok(default),
        }
    };
    match kind {
        "transit" => {
            let cfg = TransitConfig {
                passengers: get_usize("passengers", 500)?,
                days: get_usize("days", 7)?,
                stations: get_usize("stations", 12)?,
                districts: get_usize("districts", 4)?,
                round_trip_rate: get_f64("round_trip_rate", 0.45)?,
                extra_trips: get_f64("extra_trips", 0.8)?,
                seed: get_usize("seed", 1)? as u64,
                ..Default::default()
            };
            Ok(solap_datagen::generate_transit(&cfg)?)
        }
        "clickstream" => {
            let cfg = ClickstreamConfig {
                sessions: get_usize("sessions", 20_000)?,
                seed: get_usize("seed", 2000)? as u64,
                ..Default::default()
            };
            Ok(solap_datagen::generate_clickstream(&cfg)?)
        }
        "synthetic" => {
            let cfg = SyntheticConfig {
                i: get_usize("i", 100)?,
                l: get_f64("l", 20.0)?,
                theta: get_f64("theta", 0.9)?,
                d: get_usize("d", 10_000)?,
                seed: get_usize("seed", 1)? as u64,
                hierarchy: true,
            };
            Ok(solap_datagen::generate_synthetic(&cfg)?)
        }
        other => Err(usage(format!(
            "unknown generator `{other}` — transit|clickstream|synthetic"
        ))),
    }
}

/// The statement-surface help text (`.help`), shared by the REPL and the
/// wire protocol. Commands marked *local* are rejected over the wire.
pub fn help_text() -> &'static str {
    "commands:
  .gen transit|clickstream|synthetic [k=v ...]   generate a dataset (local)
  .save PATH | .load PATH                        persist / restore the event db (local)
  .schema                                        show columns and hierarchies
  .strategy cb|ii|auto                           pick the construction approach (this session)
  .backend list|bitmap|compressed|auto           pick the inverted-list encoding (this session)
  .counters hash|dense|auto                      pick the CB counter layout (this session)
  .threads N                                     worker threads for construction (1 = sequential)
  .timeout MS                                    per-query deadline in milliseconds (0 = off)
  .budget CELLS                                  per-query cuboid-cell budget (0 = off)
  .op append SYM [ATTR LEVEL] | prepend SYM [ATTR LEVEL]
  .op detail | dehead | prollup DIM | pdrilldown DIM
  .op rollup ATTR | drilldown ATTR
  .op slice-pattern DIM VALUE | slice-group IDX VALUE | minsup N|off
  .back            step back to the previous cuboid in this session
  .show [n]        re-tabulate the current cuboid
  .spec            print the current query text
  .stats           cache statistics
  .repo            cuboid-repository statistics and retention policy
  .index           index-store statistics and the session's list encoding
  .profile on|off  print each query's per-stage profile (on enables detailed counters)
  .metrics         process-wide cumulative engine metrics
  .online [CHUNK]  re-run the current COUNT query with online-aggregation snapshots
  .history         operations applied so far
  .quit
anything else is parsed as an S-cuboid query; end it with `;`
prefix a query with EXPLAIN to see its plan, or PROFILE to run it and see counters
STORE INTO Event VALUES (v, ...), (v, ...);  appends events through the store path
(CUBOID BY REGEX (X, Y+, .*, X) runs regex templates on the CB path)
(multi-line input: keep typing, the query runs at the `;`)
"
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{ColumnType, EventDbBuilder, Value};

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .build()
            .unwrap();
        db.push_row(&[Value::Int(0), Value::from("Pentagon")])
            .unwrap();
        db.set_base_level_name(1, "station");
        db
    }

    #[test]
    fn kv_parsing() {
        let kv = parse_kv(&["a=1", "b=x"]).unwrap();
        assert_eq!(kv["a"], "1");
        assert_eq!(kv["b"], "x");
        assert!(parse_kv(&["oops"]).is_err());
        assert!(parse_kv(&["=v"]).is_err());
        assert!(parse_kv(&[]).unwrap().is_empty());
    }

    #[test]
    fn op_parsing() {
        let db = db();
        assert!(matches!(
            parse_op(&db, &["append", "Z", "location", "station"], None).unwrap(),
            Op::Append { .. }
        ));
        assert!(matches!(
            parse_op(&db, &["detail"], None).unwrap(),
            Op::DeTail
        ));
        assert!(matches!(
            parse_op(&db, &["dehead"], None).unwrap(),
            Op::DeHead
        ));
        assert!(matches!(
            parse_op(&db, &["prollup", "X"], None).unwrap(),
            Op::PRollUp { .. }
        ));
        assert!(matches!(
            parse_op(&db, &["rollup", "location"], None).unwrap(),
            Op::RollUp { .. }
        ));
        assert!(matches!(
            parse_op(&db, &["minsup", "5"], None).unwrap(),
            Op::SetMinSupport(Some(5))
        ));
        assert!(matches!(
            parse_op(&db, &["minsup", "off"], None).unwrap(),
            Op::SetMinSupport(None)
        ));
        assert!(
            parse_op(&db, &["append", "Z"], None).is_err(),
            "new symbol needs a binding"
        );
        assert!(parse_op(&db, &["warp"], None).is_err());
        assert!(parse_op(&db, &[], None).is_err());
        assert!(parse_op(&db, &["rollup", "bogus"], None).is_err());
    }

    #[test]
    fn arg_errors_carry_codes() {
        let db = db();
        let err = parse_op(&db, &["rollup", "bogus"], None).unwrap_err();
        assert_eq!(err.code(), "unknown_attribute");
        let err = parse_op(&db, &["warp"], None).unwrap_err();
        assert_eq!(err.code(), "usage");
        assert_eq!(
            generate("warp", &HashMap::new()).unwrap_err().code(),
            "usage"
        );
    }
}
