//! `solap-serve` — boot a multi-client S-OLAP server.
//!
//! ```text
//! $ solap-serve --gen transit passengers=500 days=7
//! listening on 127.0.0.1:7878 (1024 connections, 16 in-flight)
//! ```
//!
//! The dataset comes from a generator (`--gen KIND [k=v …]`) or a saved
//! database (`--load PATH`); engine defaults follow the usual
//! environment knobs (`SOLAP_THREADS`, `SOLAP_TIMEOUT_MS`, …) and the
//! serving knobs come from `SOLAP_ADDR`, `SOLAP_MAX_CONN`,
//! `SOLAP_MAX_INFLIGHT`, `SOLAP_WORKERS`, `SOLAP_PIPELINE` and
//! `SOLAP_POLL_MS` or their flag equivalents. The process serves until
//! killed; clients are never interrupted mid-response.

#![forbid(unsafe_code)]

use std::process::exit;
use std::sync::Arc;

use solap_core::Engine;
use solap_server::command::{generate, parse_kv};
use solap_server::server::{Server, ServerConfig};

const USAGE: &str = "usage: solap-serve [--addr HOST:PORT] [--max-conn N] [--max-inflight N]
                   [--workers N] [--pipeline N]
                   [--gen transit|clickstream|synthetic [k=v …]] [--load PATH] [--quiet]";

fn main() {
    // Arm SOLAP_FAILPOINTS at process entry, before dataset generation
    // (which has no `Engine` and therefore no builder-driven seeding).
    solap_eventdb::failpoint::init();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig::from_env();
    let mut gen_kind: Option<String> = None;
    let mut gen_opts: Vec<String> = Vec::new();
    let mut load_path: Option<String> = None;
    let mut quiet = false;

    let mut i = 0;
    while let Some(arg) = args.get(i) {
        let need_value = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                let flag = args.get(i).map(String::as_str).unwrap_or_default();
                eprintln!("{flag} needs a value\n{USAGE}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => {
                config.addr = need_value(i).to_owned();
                i += 2;
            }
            "--max-conn" => {
                config.max_conn = parse_count(need_value(i), "--max-conn");
                i += 2;
            }
            "--max-inflight" => {
                config.max_inflight = parse_count(need_value(i), "--max-inflight");
                i += 2;
            }
            "--workers" => {
                config.workers = parse_count(need_value(i), "--workers");
                i += 2;
            }
            "--pipeline" => {
                config.pipeline_depth = parse_count(need_value(i), "--pipeline");
                i += 2;
            }
            "--gen" => {
                gen_kind = Some(need_value(i).to_owned());
                i += 2;
                // Everything up to the next flag is a k=v generator option.
                while let Some(opt) = args
                    .get(i)
                    .filter(|a| a.contains('=') && !a.starts_with("--"))
                {
                    gen_opts.push(opt.clone());
                    i += 1;
                }
            }
            "--load" => {
                load_path = Some(need_value(i).to_owned());
                i += 2;
            }
            "--quiet" => {
                quiet = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                exit(2);
            }
        }
    }

    let db = match (&load_path, &gen_kind) {
        (Some(_), Some(_)) => {
            eprintln!("--load and --gen are mutually exclusive\n{USAGE}");
            exit(2);
        }
        (Some(path), None) => solap_eventdb::persist::load_from_path(path).unwrap_or_else(|e| {
            eprintln!("cannot load {path}: {e}");
            exit(1);
        }),
        (None, kind) => {
            let kind = kind.as_deref().unwrap_or("transit");
            let refs: Vec<&str> = gen_opts.iter().map(String::as_str).collect();
            let kv = parse_kv(&refs).unwrap_or_else(|e| {
                eprintln!("{}", e.message());
                exit(2);
            });
            generate(kind, &kv).unwrap_or_else(|e| {
                eprintln!("{}", e.message());
                exit(1);
            })
        }
    };

    let engine = Arc::new(Engine::builder(db).build());
    let server = Server::bind(engine, config.clone()).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", config.addr);
        exit(1);
    });
    if !quiet {
        // The bench and CI scripts parse this line for the bound port.
        println!(
            "listening on {} ({} connections, {} in-flight)",
            server.local_addr(),
            config.max_conn,
            config.max_inflight
        );
    }
    if let Err(e) = server.serve() {
        eprintln!("server error: {e}");
        exit(1);
    }
}

fn parse_count(value: &str, flag: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("{flag} needs a positive integer, got `{value}`\n{USAGE}");
            exit(2);
        }
    }
}
