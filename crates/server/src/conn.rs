//! Per-connection buffering: incremental line framing on the read side
//! and a cursor-compacted flush buffer on the write side.
//!
//! The event loop reads whatever the socket has — one byte, a split
//! CRLF, a coalesced pipeline of many statements — into a [`FrameBuf`],
//! then pulls complete frames out one at a time. Framing is therefore
//! completely independent of packetization: the wire-framing property
//! suite (`tests/server_framing.rs`) delivers the same statements under
//! adversarial fragmentations and asserts bit-identical responses.
//!
//! Responses go out through a [`WriteBuf`]: rendered lines are appended,
//! and the event loop flushes as much as the socket accepts, keeping the
//! rest for the next writable sweep (backpressure against slow readers).

/// One framed unit pulled out of a [`FrameBuf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete statement line (terminator and any trailing `\r`
    /// stripped, UTF-8 validated).
    Line(String),
    /// The line under construction exceeded the byte bound before its
    /// terminator arrived. The connection cannot resync afterwards and
    /// should answer `too_large` and close.
    TooLong,
    /// A complete line that was not valid UTF-8; answer `bad_request`
    /// and keep framing (the terminator resyncs the stream).
    BadEncoding,
}

/// Incremental newline framing over arbitrary byte fragments.
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Bytes below this offset are known to contain no `\n`.
    scanned: usize,
    max_line: usize,
    overflowed: bool,
}

impl FrameBuf {
    /// A framer enforcing `max_line` bytes per line (terminator
    /// excluded).
    pub fn new(max_line: usize) -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            scanned: 0,
            max_line,
            overflowed: false,
        }
    }

    /// Appends raw bytes read off the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet framed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pulls the next complete frame, if one is available.
    pub fn next_frame(&mut self) -> Option<Frame> {
        if self.overflowed {
            // Terminal: once a line has blown the bound there is no
            // trustworthy resync point.
            return Some(Frame::TooLong);
        }
        let unscanned = self.buf.get(self.scanned..).unwrap_or_default();
        match unscanned.iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let end = self.scanned + rel;
                let mut line: Vec<u8> = self.buf.drain(..=end).collect();
                line.pop(); // the '\n'
                self.scanned = 0;
                if line.len() > self.max_line {
                    self.overflowed = true;
                    return Some(Frame::TooLong);
                }
                if line.last() == Some(&b'\r') {
                    line.pop(); // tolerate CRLF endings (telnet et al.)
                }
                Some(match String::from_utf8(line) {
                    Ok(s) => Frame::Line(s),
                    Err(_) => Frame::BadEncoding,
                })
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > self.max_line {
                    self.overflowed = true;
                    return Some(Frame::TooLong);
                }
                None
            }
        }
    }
}

/// An append-and-flush output buffer with an explicit cursor, compacted
/// opportunistically so a long-lived connection does not accrete memory.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    head: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Appends rendered bytes to be flushed.
    pub fn append(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The unflushed remainder.
    pub fn pending(&self) -> &[u8] {
        self.buf.get(self.head..).unwrap_or_default()
    }

    /// Whether everything appended has been flushed.
    pub fn is_empty(&self) -> bool {
        self.head >= self.buf.len()
    }

    /// Unflushed byte count.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Records that `n` pending bytes were written out.
    pub fn advance(&mut self, n: usize) {
        self.head = (self.head + n).min(self.buf.len());
        // Compact once the dead prefix dominates, amortized O(1).
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head > 64 * 1024 && self.head * 2 > self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(fb: &mut FrameBuf) -> Vec<Frame> {
        std::iter::from_fn(|| fb.next_frame()).collect()
    }

    #[test]
    fn one_byte_fragments_reassemble() {
        let mut fb = FrameBuf::new(1024);
        for b in b"ab\ncd\n" {
            fb.push(&[*b]);
        }
        assert_eq!(
            lines(&mut fb),
            vec![Frame::Line("ab".into()), Frame::Line("cd".into())]
        );
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn split_crlf_and_coalesced_batches() {
        let mut fb = FrameBuf::new(1024);
        fb.push(b"first\r");
        assert_eq!(fb.next_frame(), None); // CR buffered, not yet a line
        fb.push(b"\nsecond\nthird");
        assert_eq!(fb.next_frame(), Some(Frame::Line("first".into())));
        assert_eq!(fb.next_frame(), Some(Frame::Line("second".into())));
        assert_eq!(fb.next_frame(), None); // "third" awaits its newline
        fb.push(b"\n");
        assert_eq!(fb.next_frame(), Some(Frame::Line("third".into())));
    }

    #[test]
    fn empty_lines_and_interior_cr() {
        let mut fb = FrameBuf::new(1024);
        fb.push(b"\n\r\na\rb\n");
        assert_eq!(fb.next_frame(), Some(Frame::Line(String::new())));
        assert_eq!(fb.next_frame(), Some(Frame::Line(String::new())));
        // Only the trailing CR is protocol; interior CRs are content.
        assert_eq!(fb.next_frame(), Some(Frame::Line("a\rb".into())));
    }

    #[test]
    fn oversize_detection_is_incremental_and_terminal() {
        let mut fb = FrameBuf::new(8);
        fb.push(b"12345");
        assert_eq!(fb.next_frame(), None);
        fb.push(b"6789"); // 9 bytes, no terminator yet: over the bound
        assert_eq!(fb.next_frame(), Some(Frame::TooLong));
        // Terminal: even after more data (with newlines) it stays TooLong.
        fb.push(b"\nok\n");
        assert_eq!(fb.next_frame(), Some(Frame::TooLong));

        // A complete line exactly at the bound passes…
        let mut fb = FrameBuf::new(8);
        fb.push(b"12345678\n");
        assert_eq!(fb.next_frame(), Some(Frame::Line("12345678".into())));
        // …one byte over (terminator arriving with the line) does not.
        let mut fb = FrameBuf::new(8);
        fb.push(b"123456789\n");
        assert_eq!(fb.next_frame(), Some(Frame::TooLong));
    }

    #[test]
    fn bad_utf8_resyncs_on_the_terminator() {
        let mut fb = FrameBuf::new(1024);
        fb.push(&[0xff, 0xfe, b'\n', b'o', b'k', b'\n']);
        assert_eq!(fb.next_frame(), Some(Frame::BadEncoding));
        assert_eq!(fb.next_frame(), Some(Frame::Line("ok".into())));
    }

    #[test]
    fn write_buf_flushes_in_arbitrary_chunks_and_compacts() {
        let mut wb = WriteBuf::new();
        assert!(wb.is_empty());
        wb.append(b"hello ");
        wb.append(b"world");
        assert_eq!(wb.len(), 11);
        assert_eq!(wb.pending(), b"hello world");
        wb.advance(6);
        assert_eq!(wb.pending(), b"world");
        wb.advance(5);
        assert!(wb.is_empty());
        assert_eq!(wb.pending(), b"");
        // Large flushed prefixes are compacted away.
        let big = vec![7u8; 100 * 1024];
        wb.append(&big);
        wb.advance(90 * 1024);
        assert_eq!(wb.len(), 10 * 1024);
        wb.append(b"tail");
        assert_eq!(wb.len(), 10 * 1024 + 4);
        assert_eq!(&wb.pending()[10 * 1024..], b"tail");
    }
}
