//! A minimal JSON layer for the wire protocol.
//!
//! The build environment has no crates.io access, so the server carries
//! its own encoder (string escaping — everything else on the wire is
//! assembled by hand) and a small recursive-descent parser used by the
//! client library and the tests to read responses back. The parser
//! accepts the full JSON grammar; numbers are kept as `f64` which is
//! exact for every counter the protocol emits (they are far below 2^53).

use std::collections::BTreeMap;

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// The value at `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Re-serializes the value to compact JSON.
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".into(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Json::Str(s) => format!("\"{}\"", escape(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(m) => {
                let inner: Vec<String> = m
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while matches!(b.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b.get(*pos..).is_some_and(|t| t.starts_with(lit.as_bytes())) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while matches!(
        b.get(*pos),
        Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    ) {
        *pos += 1;
    }
    std::str::from_utf8(b.get(start..*pos).unwrap_or_default())
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        // Surrogate pairs are not produced by this protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do bytewise: continuation bytes follow their leader).
                let start = *pos;
                *pos += 1;
                while b.get(*pos).is_some_and(|&x| x & 0xC0 == 0x80) {
                    *pos += 1;
                }
                let scalar = b.get(start..*pos).unwrap_or_default();
                out.push_str(std::str::from_utf8(scalar).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"ok":true,"n":42,"s":"hi\nthere","a":[1,2.5,null],"o":{"x":false}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi\nthere"));
        assert_eq!(v.get("o").unwrap().get("x").unwrap().as_bool(), Some(false));
        let re = Json::parse(&v.render()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"unterminated"#).is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::parse(r#""café → 北京""#).unwrap();
        assert_eq!(v.as_str(), Some("café → 北京"));
    }
}
