//! The index store: cached inverted indices per sequence group.
//!
//! Answering a query "is a by-product: the creation of new inverted
//! indices … such indices can assist the processing of a follow-up query"
//! (§4.2). The store caches every index built — offline-precomputed or
//! created on demand — keyed by the owning sequence group and the index's
//! structural signature, with an LRU byte budget.

use std::sync::Arc;

use parking_lot::Mutex;

use solap_eventdb::lru::LruCache;
use solap_pattern::TemplateSignature;

use crate::inverted::InvertedIndex;

/// Identifies an index: which sequence-group set it was built over, which
/// group within it, the structural signature of its patterns, and — for
/// slice-restricted assemblies — the fingerprint of the pattern slice it
/// was filtered by (`0` = unsliced, covering every pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKey {
    /// Fingerprint of the sequence groups (spec fingerprint ⊕ db version).
    pub groups_fp: u64,
    /// Ordinal of the group within the sequence groups.
    pub group_idx: usize,
    /// Structural identity of the index's patterns.
    pub sig: TemplateSignature,
    /// Fingerprint of the position slice baked into the lists (0 = none).
    pub slice_fp: u64,
}

/// A thread-safe LRU store of inverted indices.
pub struct IndexStore {
    inner: Mutex<LruCache<IndexKey, Arc<InvertedIndex>>>,
}

impl IndexStore {
    /// Creates a store bounded by entry count and total index bytes.
    pub fn new(capacity: usize, max_bytes: usize) -> Self {
        IndexStore {
            inner: Mutex::ranked(
                parking_lot::rank::INDEX_STORE,
                "index.store",
                LruCache::with_weight(capacity, max_bytes, |ix| ix.heap_bytes()),
            ),
        }
    }

    /// Fetches an index (LRU touch).
    pub fn get(&self, key: &IndexKey) -> Option<Arc<InvertedIndex>> {
        self.inner.lock().get(key).cloned()
    }

    /// Whether an index is present (no LRU touch).
    pub fn contains(&self, key: &IndexKey) -> bool {
        self.inner.lock().contains(key)
    }

    /// Stores an index.
    pub fn insert(&self, key: IndexKey, index: Arc<InvertedIndex>) {
        self.inner.lock().insert(key, index);
    }

    /// Finds the **largest available prefix index** for a target signature:
    /// the greatest `k` in `[2, m]` such that the index keyed by
    /// `sig.prefix(k)` is cached (Figure 15 line 8 joins "the largest
    /// available inverted index"). For sliced assemblies (`slice_fp ≠ 0`) a
    /// slice-restricted prefix of the same length is preferred over the
    /// unsliced one, which is always a valid (superset) starting point.
    /// Returns the index and its length.
    pub fn largest_prefix(
        &self,
        groups_fp: u64,
        group_idx: usize,
        sig: &TemplateSignature,
        slice_fp: u64,
    ) -> Option<(Arc<InvertedIndex>, usize)> {
        let mut guard = self.inner.lock();
        for k in (2..=sig.m()).rev() {
            let mut fps = vec![0u64];
            if slice_fp != 0 {
                fps.insert(0, slice_fp);
            }
            for fp in fps {
                let key = IndexKey {
                    groups_fp,
                    group_idx,
                    sig: sig.prefix(k),
                    slice_fp: fp,
                };
                if let Some(ix) = guard.get(&key) {
                    return Some((Arc::clone(ix), k));
                }
            }
        }
        None
    }

    /// Total bytes of cached indices.
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().weight()
    }

    /// Number of cached indices.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drops indices belonging to sequence groups other than `keep_fp`
    /// (e.g. after incremental updates invalidate old groups).
    pub fn retain_groups(&self, keep_fp: impl Fn(u64) -> bool) {
        self.inner.lock().retain(|k, _| keep_fp(k.groups_fp));
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        self.inner.lock().stats()
    }
}

impl Default for IndexStore {
    fn default() -> Self {
        // 256 indices / 512 MiB default budget.
        IndexStore::new(256, 512 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::SetBackend;
    use solap_pattern::{PatternKind, PatternTemplate};

    fn sig(syms: &[&str]) -> TemplateSignature {
        let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
        for &s in syms {
            if !bindings.iter().any(|(n, _, _)| *n == s) {
                bindings.push((s, 0, 0));
            }
        }
        PatternTemplate::new(PatternKind::Substring, syms, &bindings)
            .unwrap()
            .signature()
    }

    fn key(syms: &[&str]) -> IndexKey {
        IndexKey {
            groups_fp: 42,
            group_idx: 0,
            sig: sig(syms),
            slice_fp: 0,
        }
    }

    fn empty_index(syms: &[&str]) -> Arc<InvertedIndex> {
        Arc::new(InvertedIndex::new(sig(syms), SetBackend::List))
    }

    #[test]
    fn insert_get_roundtrip() {
        let store = IndexStore::default();
        let k = key(&["X", "Y"]);
        store.insert(k.clone(), empty_index(&["X", "Y"]));
        assert!(store.contains(&k));
        assert!(store.get(&k).is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn largest_prefix_prefers_longer() {
        let store = IndexStore::default();
        store.insert(key(&["X", "Y"]), empty_index(&["X", "Y"]));
        store.insert(key(&["X", "Y", "Y"]), empty_index(&["X", "Y", "Y"]));
        let target = sig(&["X", "Y", "Y", "X"]);
        let (_, k) = store.largest_prefix(42, 0, &target, 0).unwrap();
        assert_eq!(k, 3, "the length-3 prefix (X,Y,Y) must win over (X,Y)");
        // A different group sees nothing.
        assert!(store.largest_prefix(42, 1, &target, 0).is_none());
        assert!(store.largest_prefix(7, 0, &target, 0).is_none());
    }

    #[test]
    fn prefix_matching_is_structural() {
        let store = IndexStore::default();
        // Cache an (A, B) index; the prefix of (P, Q, Q, P) is structurally
        // identical, so it must be found.
        store.insert(key(&["A", "B"]), empty_index(&["A", "B"]));
        let target = sig(&["P", "Q", "Q", "P"]);
        let (_, k) = store.largest_prefix(42, 0, &target, 0).unwrap();
        assert_eq!(k, 2);
    }

    #[test]
    fn retain_groups_invalidates() {
        let store = IndexStore::default();
        store.insert(key(&["X", "Y"]), empty_index(&["X", "Y"]));
        let mut other = key(&["X", "Y"]);
        other.groups_fp = 7;
        store.insert(other, empty_index(&["X", "Y"]));
        store.retain_groups(|fp| fp == 42);
        assert_eq!(store.len(), 1);
        store.clear();
        assert!(store.is_empty());
    }
}
