//! Index-join algebra (Figure 15 lines 6–9) and the P-ROLL-UP list merge.
//!
//! `L_{i+1}^{(Y1..Yi+1)} = L_i^{(Y1..Yi)} ⋈ L_2^{(Yi,Yi+1)}`: an inverted
//! list is in the join iff it intersects a left list and a right list whose
//! patterns overlap on the shared element (paper §4.2.2: *"l =
//! L2\[v1,v2\] ∩ L2\[v3,v3\] such that … v2 = v3"*). The join produces
//! **candidate** lists; sequences in them must still be verified against the
//! data ("Scan the database to eliminate invalid entries"), which the engine
//! layer does since it owns the matcher.
//!
//! The same function also implements the PREPEND join (`L_2 ⋈ L_m`,
//! overlapping the left pattern's last element with the right pattern's
//! first), since both are "concatenate overlapping patterns, intersect
//! lists".

use std::collections::HashMap;

use solap_eventdb::{LevelValue, Result};
use solap_pattern::TemplateSignature;

use crate::inverted::InvertedIndex;

/// Joins `left` (length `i`) with `right` (length `j`), overlapping the last
/// element of each left pattern with the first element of each right
/// pattern. The candidate pattern is `left ++ right[1..]` (length
/// `i + j - 1`); its candidate list is the intersection of the two lists.
///
/// `accept` filters candidate patterns (e.g. "must instantiate the target
/// template" — for `(X, Y, Y, X)` the fourth element must equal the first).
/// Empty intersections are dropped.
pub fn join(
    left: &InvertedIndex,
    right: &InvertedIndex,
    target_sig: TemplateSignature,
    accept: impl Fn(&[LevelValue]) -> bool,
) -> InvertedIndex {
    assert_eq!(
        target_sig.m(),
        left.m() + right.m() - 1,
        "target length must be left + right - overlap"
    );
    // Bucket right lists by the first element of their pattern.
    let mut by_first: HashMap<LevelValue, Vec<(&Vec<LevelValue>, &crate::sidset::SidSet)>> =
        HashMap::new();
    for (k, v) in &right.lists {
        by_first.entry(k[0]).or_default().push((k, v));
    }
    let mut out = InvertedIndex::new(target_sig, left.backend);
    let mut candidate: Vec<LevelValue> = Vec::new();
    for (lk, lv) in &left.lists {
        let Some(rights) = by_first.get(lk.last().expect("non-empty pattern")) else {
            continue;
        };
        for (rk, rv) in rights {
            candidate.clear();
            candidate.extend_from_slice(lk);
            candidate.extend_from_slice(&rk[1..]);
            if !accept(&candidate) {
                continue;
            }
            let inter = lv.intersect(rv);
            if !inter.is_empty() {
                out.lists.insert(candidate.clone(), inter);
            }
        }
    }
    out
}

/// Merges an index to a coarser abstraction for P-ROLL-UP (§4.2.2 item 4):
/// each pattern is mapped elementwise by `map_value(position, value)` and
/// lists landing on the same coarse pattern are unioned.
///
/// Only legal when the template's symbols are pairwise distinct (the
/// paper's s6 counter-example shows repeated symbols under-approximate);
/// the engine checks that before calling.
pub fn rollup_merge(
    index: &InvertedIndex,
    target_sig: TemplateSignature,
    mut map_value: impl FnMut(usize, LevelValue) -> Result<LevelValue>,
) -> Result<InvertedIndex> {
    assert_eq!(target_sig.m(), index.m());
    let mut out = InvertedIndex::new(target_sig, index.backend);
    let mut coarse: Vec<LevelValue> = Vec::with_capacity(index.m());
    for (k, v) in &index.lists {
        coarse.clear();
        for (p, &val) in k.iter().enumerate() {
            coarse.push(map_value(p, val)?);
        }
        match out.lists.get_mut(&coarse) {
            Some(existing) => *existing = existing.union(v),
            None => {
                out.lists.insert(coarse.clone(), v.clone());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::{build_index, SetBackend};
    use solap_pattern::{PatternKind, PatternTemplate};

    /// Rebuild the Figure 8/10 fixtures locally (unit-test scope).
    fn fig8() -> (solap_eventdb::EventDb, Vec<solap_eventdb::Sequence>) {
        use solap_eventdb::{ColumnType, EventDbBuilder, Value};
        let mut db = EventDbBuilder::new()
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        let seq_defs: [&[&str]; 4] = [
            &[
                "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
            ],
            &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
            &["Clarendon", "Pentagon"],
            &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
        ];
        let mut seqs = Vec::new();
        let mut row = 0u32;
        for (sid, stations) in seq_defs.iter().enumerate() {
            let mut rows = Vec::new();
            for (i, st) in stations.iter().enumerate() {
                let action = if i % 2 == 0 { "in" } else { "out" };
                db.push_row(&[Value::from(*st), Value::from(action)])
                    .unwrap();
                rows.push(row);
                row += 1;
            }
            seqs.push(solap_eventdb::Sequence {
                sid: sid as u32,
                cluster_key: vec![],
                rows,
            });
        }
        (db, seqs)
    }

    fn template(syms: &[&str]) -> PatternTemplate {
        let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
        for &s in syms {
            if !bindings.iter().any(|(n, _, _)| *n == s) {
                bindings.push((s, 0, 0));
            }
        }
        PatternTemplate::new(PatternKind::Substring, syms, &bindings).unwrap()
    }

    fn station(db: &solap_eventdb::EventDb, name: &str) -> u64 {
        db.dict(0).unwrap().lookup(name).unwrap() as u64
    }

    /// Figure 13: L2^(X,Y) ⋈ L2^(Y,Y) candidate lists before verification.
    #[test]
    fn join_produces_figure_13_candidates() {
        let (db, seqs) = fig8();
        let (l2, _) = build_index(&db, &seqs, &template(&["X", "Y"]), SetBackend::List).unwrap();
        let (lyy, _) = build_index(&db, &seqs, &template(&["Y", "Y"]), SetBackend::List).unwrap();
        let txyy = template(&["X", "Y", "Y"]);
        let joined = join(&l2, &lyy, txyy.signature(), |cand| {
            txyy.is_instantiation(cand)
        });
        let p = station(&db, "Pentagon");
        let w = station(&db, "Wheaton");
        let c = station(&db, "Clarendon");
        let g = station(&db, "Glenmont");
        let d = station(&db, "Deanwood");
        // Figure 13 rows (candidates, pre-verification):
        // l10 Clarendon,Pentagon,Pentagon = {s3}∩{s1} = {} → dropped
        assert!(joined.list(&[c, p, p]).is_none());
        // l11 Glenmont,Pentagon,Pentagon = {s1}
        assert_eq!(joined.list(&[g, p, p]).unwrap().to_vec(), vec![0]);
        // l12 Pentagon,Pentagon,Pentagon = {s1} (false positive, removed by verify)
        assert_eq!(joined.list(&[p, p, p]).unwrap().to_vec(), vec![0]);
        // l13 Wheaton,Pentagon,Pentagon = {s1,s2}∩{s1} = {s1}
        assert_eq!(joined.list(&[w, p, p]).unwrap().to_vec(), vec![0]);
        // l14 Deanwood,Wheaton,Wheaton = {s4}∩{s1,s2} = {} → dropped
        assert!(joined.list(&[d, w, w]).is_none());
        // l15 Pentagon,Wheaton,Wheaton = {s1,s2}
        assert_eq!(joined.list(&[p, w, w]).unwrap().to_vec(), vec![0, 1]);
    }

    /// Figure 14: joining up to (X, Y, Y, X).
    #[test]
    fn join_to_xyyx_yields_figure_14() {
        let (db, seqs) = fig8();
        let (l2, _) = build_index(&db, &seqs, &template(&["X", "Y"]), SetBackend::List).unwrap();
        let (lyy, _) = build_index(&db, &seqs, &template(&["Y", "Y"]), SetBackend::List).unwrap();
        let txyy = template(&["X", "Y", "Y"]);
        let l3 = join(&l2, &lyy, txyy.signature(), |c| txyy.is_instantiation(c));
        // (Verification would remove s1 from (P,P,P); harmless here since
        // (P,P,P,P) requires an (P,P) suffix join that yields s1 anyway and
        // the final is_instantiation filter applies.)
        let txyyx = template(&["X", "Y", "Y", "X"]);
        let l4 = join(&l3, &l2, txyyx.signature(), |c| txyyx.is_instantiation(c));
        let p = station(&db, "Pentagon");
        let w = station(&db, "Wheaton");
        // Figure 14: the only non-empty list is [P,W,W,P] = {s1, s2}.
        assert_eq!(l4.list(&[p, w, w, p]).unwrap().to_vec(), vec![0, 1]);
        // Candidates violating X-repetition must have been filtered.
        for k in l4.lists.keys() {
            assert!(txyyx.is_instantiation(k), "non-instantiation {k:?} leaked");
        }
    }

    /// PREPEND joins a length-2 index on the left.
    #[test]
    fn prepend_join_shape() {
        let (db, seqs) = fig8();
        let (l2, _) = build_index(&db, &seqs, &template(&["X", "Y"]), SetBackend::List).unwrap();
        let tzxy = template(&["Z", "X", "Y"]);
        let joined = join(&l2, &l2, tzxy.signature(), |c| tzxy.is_instantiation(c));
        let g = station(&db, "Glenmont");
        let p = station(&db, "Pentagon");
        let w = station(&db, "Wheaton");
        // s1 = ⟨G,P,P,W,W,P⟩ contains (G,P,P) and (G,P) ∩ (P,P) = {s1}.
        assert_eq!(joined.list(&[g, p, p]).unwrap().to_vec(), vec![0]);
        assert!(
            joined.list(&[g, p, w]).is_some(),
            "candidate may be a false positive"
        );
        let _ = w;
    }

    #[test]
    fn rollup_merge_unions_lists() {
        let (db, seqs) = fig8();
        let (l2, _) = build_index(&db, &seqs, &template(&["X", "Y"]), SetBackend::List).unwrap();
        // Roll every station up to one of two districts: D10 = {Pentagon,
        // Clarendon} (paper's example), D20 = the rest.
        let p = station(&db, "Pentagon");
        let c = station(&db, "Clarendon");
        let coarse = |_pos: usize, v: LevelValue| -> Result<LevelValue> {
            Ok(if v == p || v == c { 100 } else { 200 })
        };
        let merged = rollup_merge(&l2, l2.sig.clone(), coarse).unwrap();
        // L2[Wheaton,Clarendon] = {s4}, L2[Wheaton,Pentagon] = {s1,s2} →
        // [D20, D10] ⊇ union {s1,s2,s4}; also Wheaton→Pentagon etc.
        let w_d10 = merged.list(&[200, 100]).unwrap().to_vec();
        assert!(w_d10.contains(&0) && w_d10.contains(&1) && w_d10.contains(&3));
        // Counts of lists shrink (9 fine lists → at most 4 coarse).
        assert!(merged.list_count() <= 4);
    }

    #[test]
    #[should_panic(expected = "target length")]
    fn join_length_mismatch_panics() {
        let (db, seqs) = fig8();
        let (l2, _) = build_index(&db, &seqs, &template(&["X", "Y"]), SetBackend::List).unwrap();
        let t = template(&["X", "Y"]);
        let _ = join(&l2, &l2, t.signature(), |_| true);
    }
}
