//! The inverted index `L_m` and the BUILDINDEX algorithm (Figure 9).

use std::collections::HashMap;

use solap_eventdb::{EventDb, LevelValue, QueryGovernor, Result, Sequence};
use solap_pattern::{MatchPred, Matcher, PatternTemplate, TemplateSignature};

/// Which [`crate::sidset::SidSet`] encoding an index uses for its lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SetBackend {
    /// Sorted sid lists (the paper's inverted lists).
    #[default]
    List,
    /// Bitmaps (§6 optimisation).
    Bitmap,
    /// Block-compressed lists with skip tables ([`crate::codec`]).
    Compressed,
    /// Per-list choice by the [`crate::sidset::choose_encoding`] density
    /// rule, settled when the index is sealed.
    Auto,
}

impl SetBackend {
    /// An empty [`crate::sidset::SidSet`] in this backend's build-time
    /// encoding. `Auto` stages in a plain list and promotes as it grows.
    pub fn empty(self) -> crate::sidset::SidSet {
        match self {
            SetBackend::List | SetBackend::Auto => crate::sidset::SidSet::empty_list(),
            SetBackend::Bitmap => crate::sidset::SidSet::empty_bitmap(),
            SetBackend::Compressed => crate::sidset::SidSet::empty_compressed(),
        }
    }

    /// Parses the `SOLAP_INDEX` / `.backend` spelling of a backend.
    pub fn parse(name: &str) -> Option<SetBackend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "list" => Some(SetBackend::List),
            "bitmap" => Some(SetBackend::Bitmap),
            "compressed" => Some(SetBackend::Compressed),
            "auto" => Some(SetBackend::Auto),
            _ => None,
        }
    }
}

/// A size-`m` inverted index over one sequence group: pattern → sid set.
///
/// An inverted list `L_m[v1, …, vm]` stores the sids of all sequences that
/// contain the length-`m` pattern `(v1, …, vm)` (as a substring or
/// subsequence, per the signature's kind). Only template instantiations are
/// keyed — for a repeated-symbol template like `(X, Y, Y, X)` the index is
/// `L^T_m`, the template-restricted subset of the paper's notation.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// The structural identity: per-position `(attr, level)` bindings, the
    /// symbol-equality classes, and substring/subsequence kind.
    pub sig: TemplateSignature,
    /// The non-empty inverted lists.
    pub lists: HashMap<Vec<LevelValue>, crate::sidset::SidSet>,
    /// Encoding used for new lists.
    pub backend: SetBackend,
}

impl InvertedIndex {
    /// An empty index with the given identity.
    pub fn new(sig: TemplateSignature, backend: SetBackend) -> Self {
        InvertedIndex {
            sig,
            lists: HashMap::new(),
            backend,
        }
    }

    /// Pattern length `m`.
    pub fn m(&self) -> usize {
        self.sig.m()
    }

    /// Number of non-empty lists.
    pub fn list_count(&self) -> usize {
        self.lists.len()
    }

    /// Total number of sid entries across lists.
    pub fn entry_count(&self) -> usize {
        self.lists.values().map(|s| s.len()).sum()
    }

    /// Approximate heap bytes — the "Size of II" column of Table 1.
    pub fn heap_bytes(&self) -> usize {
        self.lists
            .iter()
            .map(|(k, v)| k.len() * 8 + v.heap_bytes() + 48)
            .sum()
    }

    /// The list for a concrete pattern, if non-empty.
    pub fn list(&self, pattern: &[LevelValue]) -> Option<&crate::sidset::SidSet> {
        self.lists.get(pattern)
    }

    /// Adds `sid` to the list of `pattern` (creating it), preserving sid
    /// order — BUILDINDEX line 5. Under [`SetBackend::Auto`] the list is
    /// density-promoted as it grows.
    pub fn add(&mut self, pattern: &[LevelValue], sid: solap_eventdb::Sid) {
        let set = self
            .lists
            .entry(pattern.to_vec())
            .or_insert_with(|| self.backend.empty());
        match self.backend {
            SetBackend::Auto => set.push_promoting(sid),
            _ => set.push(sid),
        }
    }

    /// Canonicalizes every list for long-term storage (see
    /// [`crate::sidset::SidSet::sealed`]): compressed tails are flushed,
    /// auto settles each list's encoding from its final content, and
    /// stray encodings left by joins/unions are coerced to the backend's
    /// own. Executors call this before caching an index, so
    /// [`InvertedIndex::heap_bytes`] accounts the stored form exactly.
    pub fn seal(&mut self) {
        for v in self.lists.values_mut() {
            let s = std::mem::replace(v, crate::sidset::SidSet::empty_list());
            *v = s.sealed(self.backend);
        }
    }

    /// Iterates `(pattern, list)` pairs in deterministic (sorted-key) order.
    pub fn iter_sorted(&self) -> Vec<(&Vec<LevelValue>, &crate::sidset::SidSet)> {
        let mut v: Vec<_> = self.lists.iter().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }
}

/// BUILDINDEX (Figure 9): scans the sequences of one group and records, for
/// each sequence, every unique pattern instantiation it contains.
///
/// The matching predicate and cell restriction are deliberately **not**
/// consulted — indices are predicate-free so one index serves every query
/// with the same structural signature; predicates are verified at counting
/// time (Figure 11 lines 13–15).
///
/// Returns the index together with the number of sequences scanned (the
/// statistic reported by Table 1 and Figure 16).
pub fn build_index<'a>(
    db: &EventDb,
    sequences: impl IntoIterator<Item = &'a Sequence>,
    template: &PatternTemplate,
    backend: SetBackend,
) -> Result<(InvertedIndex, u64)> {
    build_index_governed(
        db,
        sequences,
        template,
        backend,
        &QueryGovernor::unbounded(),
    )
}

/// [`build_index`] under a [`QueryGovernor`]: pattern enumeration ticks per
/// candidate window and each newly created inverted list is charged against
/// the cell budget.
pub fn build_index_governed<'a>(
    db: &EventDb,
    sequences: impl IntoIterator<Item = &'a Sequence>,
    template: &PatternTemplate,
    backend: SetBackend,
    gov: &QueryGovernor,
) -> Result<(InvertedIndex, u64)> {
    let trivial = MatchPred::True;
    let matcher = Matcher::new(db, template, &trivial).with_governor(gov);
    let mut index = InvertedIndex::new(template.signature(), backend);
    let mut scanned = 0u64;
    for seq in sequences {
        scanned += 1;
        let before = index.list_count();
        matcher.for_each_unique_pattern(seq, |pattern| {
            index.add(pattern, seq.sid);
        })?;
        gov.charge_cells((index.list_count() - before) as u64)?;
    }
    if let Some(rec) = gov.recorder() {
        rec.add(solap_eventdb::Counter::MatchWindows, matcher.take_windows());
    }
    index.seal();
    Ok((index, scanned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{ColumnType, EventDbBuilder, Value};
    use solap_pattern::PatternKind;

    /// The Figure 8 sequence group.
    pub(crate) fn fig8() -> (EventDb, Vec<Sequence>) {
        let mut db = EventDbBuilder::new()
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        let seq_defs: [&[&str]; 4] = [
            &[
                "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
            ],
            &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
            &["Clarendon", "Pentagon"],
            &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
        ];
        let mut seqs = Vec::new();
        let mut row = 0u32;
        for (sid, stations) in seq_defs.iter().enumerate() {
            let mut rows = Vec::new();
            for (i, st) in stations.iter().enumerate() {
                let action = if i % 2 == 0 { "in" } else { "out" };
                db.push_row(&[Value::from(*st), Value::from(action)])
                    .unwrap();
                rows.push(row);
                row += 1;
            }
            seqs.push(Sequence {
                sid: sid as u32,
                cluster_key: vec![],
                rows,
            });
        }
        (db, seqs)
    }

    pub(crate) fn template(db: &EventDb, kind: PatternKind, syms: &[&str]) -> PatternTemplate {
        let _ = db;
        let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
        for &s in syms {
            if !bindings.iter().any(|(n, _, _)| *n == s) {
                bindings.push((s, 0, 0));
            }
        }
        PatternTemplate::new(kind, syms, &bindings).unwrap()
    }

    fn station(db: &EventDb, name: &str) -> u64 {
        db.dict(0).unwrap().lookup(name).unwrap() as u64
    }

    #[test]
    fn l1_matches_figure_10() {
        let (db, seqs) = fig8();
        let t = template(&db, PatternKind::Substring, &["X"]);
        let (l1, scanned) = build_index(&db, &seqs, &t, SetBackend::List).unwrap();
        assert_eq!(scanned, 4);
        let expect = [
            ("Clarendon", vec![2, 3]),
            ("Deanwood", vec![3]),
            ("Glenmont", vec![0]),
            ("Pentagon", vec![0, 1, 2]),
            ("Wheaton", vec![0, 1, 3]),
        ];
        assert_eq!(l1.list_count(), expect.len());
        for (name, sids) in expect {
            assert_eq!(
                l1.list(&[station(&db, name)]).unwrap().to_vec(),
                sids,
                "L1[{name}]"
            );
        }
    }

    #[test]
    fn l2_matches_figure_10() {
        let (db, seqs) = fig8();
        let t = template(&db, PatternKind::Substring, &["X", "Y"]);
        let (l2, _) = build_index(&db, &seqs, &t, SetBackend::List).unwrap();
        let expect = [
            (("Clarendon", "Deanwood"), vec![3]),
            (("Clarendon", "Pentagon"), vec![2]),
            (("Deanwood", "Wheaton"), vec![3]),
            (("Glenmont", "Pentagon"), vec![0]),
            (("Pentagon", "Pentagon"), vec![0]),
            (("Pentagon", "Wheaton"), vec![0, 1]),
            (("Wheaton", "Clarendon"), vec![3]),
            (("Wheaton", "Pentagon"), vec![0, 1]),
            (("Wheaton", "Wheaton"), vec![0, 1]),
        ];
        assert_eq!(
            l2.list_count(),
            expect.len(),
            "Figure 10 has 9 non-empty L2 lists"
        );
        for ((x, y), sids) in expect {
            assert_eq!(
                l2.list(&[station(&db, x), station(&db, y)])
                    .unwrap()
                    .to_vec(),
                sids,
                "L2[{x},{y}]"
            );
        }
        assert_eq!(l2.entry_count(), 12);
        assert!(l2.heap_bytes() > 0);
    }

    #[test]
    fn repeated_symbol_template_restricts_lists() {
        let (db, seqs) = fig8();
        let t = template(&db, PatternKind::Substring, &["X", "X"]);
        let (lxx, _) = build_index(&db, &seqs, &t, SetBackend::List).unwrap();
        // Footnote 7: L2^(X,X) = {l5, l9} = (Pentagon,Pentagon), (Wheaton,Wheaton).
        assert_eq!(lxx.list_count(), 2);
        assert!(lxx
            .list(&[station(&db, "Pentagon"), station(&db, "Pentagon")])
            .is_some());
        assert!(lxx
            .list(&[station(&db, "Wheaton"), station(&db, "Wheaton")])
            .is_some());
    }

    #[test]
    fn bitmap_backend_builds_identical_sets() {
        let (db, seqs) = fig8();
        let t = template(&db, PatternKind::Substring, &["X", "Y"]);
        let (ll, _) = build_index(&db, &seqs, &t, SetBackend::List).unwrap();
        let (lb, _) = build_index(&db, &seqs, &t, SetBackend::Bitmap).unwrap();
        assert_eq!(ll.list_count(), lb.list_count());
        for (k, v) in &ll.lists {
            assert_eq!(lb.lists[k].to_vec(), v.to_vec(), "pattern {k:?}");
        }
    }

    #[test]
    fn compressed_and_auto_backends_build_identical_sets() {
        let (db, seqs) = fig8();
        let t = template(&db, PatternKind::Substring, &["X", "Y"]);
        let (ll, _) = build_index(&db, &seqs, &t, SetBackend::List).unwrap();
        for backend in [SetBackend::Compressed, SetBackend::Auto] {
            let (lc, _) = build_index(&db, &seqs, &t, backend).unwrap();
            assert_eq!(ll.list_count(), lc.list_count(), "{backend:?}");
            for (k, v) in &ll.lists {
                assert_eq!(lc.lists[k].to_vec(), v.to_vec(), "{backend:?} {k:?}");
            }
        }
    }

    #[test]
    fn build_seals_compressed_lists() {
        let (db, seqs) = fig8();
        let t = template(&db, PatternKind::Substring, &["X"]);
        let (lc, _) = build_index(&db, &seqs, &t, SetBackend::Compressed).unwrap();
        for (k, v) in &lc.lists {
            match v {
                crate::sidset::SidSet::Compressed(c) => {
                    assert!(c.is_sealed(), "unsealed list for {k:?}")
                }
                other => panic!("non-compressed list {other:?} for {k:?}"),
            }
        }
    }

    #[test]
    fn subsequence_index_includes_gapped_patterns() {
        let (db, seqs) = fig8();
        let t = template(&db, PatternKind::Subsequence, &["X", "Y"]);
        let (l2, _) = build_index(&db, &seqs, &t, SetBackend::List).unwrap();
        // s0 contains (Glenmont, Wheaton) only as a gapped subsequence.
        let l = l2
            .list(&[station(&db, "Glenmont"), station(&db, "Wheaton")])
            .expect("gapped pattern must be indexed");
        assert_eq!(l.to_vec(), vec![0]);
    }

    #[test]
    fn iter_sorted_is_deterministic() {
        let (db, seqs) = fig8();
        let t = template(&db, PatternKind::Substring, &["X", "Y"]);
        let (l2, _) = build_index(&db, &seqs, &t, SetBackend::List).unwrap();
        let a: Vec<Vec<u64>> = l2.iter_sorted().iter().map(|(k, _)| (*k).clone()).collect();
        let mut b = a.clone();
        b.sort();
        assert_eq!(a, b);
    }
}
