//! # solap-index
//!
//! Inverted indices over sequence groups — the auxiliary data structure of
//! the paper's second S-cuboid construction approach (§4.2.2).
//!
//! A size-`m` inverted index `L_m` maps each length-`m` pattern (a string of
//! pattern-dimension values) to the list of sids of the sequences containing
//! it. This crate provides:
//!
//! * [`sidset::SidSet`] — sid collections in two encodings: sorted lists
//!   (the paper's inverted lists) and bitmaps (the §6 "bitmap index"
//!   optimisation, where intersection becomes bitwise AND);
//! * [`inverted::InvertedIndex`] and [`inverted::build_index`] — the
//!   BUILDINDEX algorithm of Figure 9;
//! * [`join`] — the index-join algebra of Figure 15
//!   (`L_{i+1} = L_i ⋈ L_2`), plus the list-union merge that answers
//!   P-ROLL-UP without touching the data (§4.2.2 item 4);
//! * [`store::IndexStore`] — the cache of precomputed and query-by-product
//!   indices, keyed by sequence-group fingerprint and template signature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inverted;
pub mod join;
pub mod sidset;
pub mod store;

pub use inverted::{build_index, build_index_governed, InvertedIndex, SetBackend};
pub use sidset::{Bitmap, SidSet};
pub use store::{IndexKey, IndexStore};
