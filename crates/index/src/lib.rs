//! # solap-index
//!
//! Inverted indices over sequence groups — the auxiliary data structure of
//! the paper's second S-cuboid construction approach (§4.2.2).
//!
//! A size-`m` inverted index `L_m` maps each length-`m` pattern (a string of
//! pattern-dimension values) to the list of sids of the sequences containing
//! it. This crate provides:
//!
//! * [`sidset::SidSet`] — sid collections in three encodings: sorted
//!   lists (the paper's inverted lists), bitmaps (the §6 "bitmap index"
//!   optimisation, where intersection becomes bitwise AND), and
//!   block-compressed lists;
//! * [`codec`] — the compressed form: delta+varint / bitpacked blocks of
//!   ≤ 128 sids behind a per-block max-sid skip table, the
//!   [`codec::SeekingIterator`] `next_seek` contract, and the leapfrog
//!   [`codec::gallop_intersect`] join kernel;
//! * [`inverted::InvertedIndex`] and [`inverted::build_index`] — the
//!   BUILDINDEX algorithm of Figure 9;
//! * [`join`] — the index-join algebra of Figure 15
//!   (`L_{i+1} = L_i ⋈ L_2`), plus the list-union merge that answers
//!   P-ROLL-UP without touching the data (§4.2.2 item 4);
//! * [`store::IndexStore`] — the cache of precomputed and query-by-product
//!   indices, keyed by sequence-group fingerprint and template signature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod inverted;
pub mod join;
pub mod sidset;
pub mod store;

pub use codec::{
    gallop_intersect, BlockFormat, CompressedSidSet, SeekingIterator, SidSetSeeker, BLOCK,
};
pub use inverted::{build_index, build_index_governed, InvertedIndex, SetBackend};
pub use sidset::{choose_encoding, Bitmap, Encoding, SidSet};
pub use store::{IndexKey, IndexStore};
