//! Block-compressed posting lists and seekable (galloping) iteration.
//!
//! The paper's inverted lists are plain sorted sid vectors; at
//! millions-of-sequences scale the index dominates memory and every
//! QUERYINDICES prefix-join scans whole lists. This module stores a list
//! as fixed-size **blocks** of up to [`BLOCK`] sids, each independently
//! encoded and fronted by a [`SkipEntry`] recording the block's first and
//! max sid, so intersection can *skip* whole blocks instead of walking
//! entries ("Compact Representations of Event Sequences" motivates exactly
//! this delta+varint / bitpacked block shape).
//!
//! Per-block encodings, chosen by whichever is smaller:
//!
//! * [`BlockFormat::Varint`] — the block's first sid lives in the skip
//!   entry; the payload is the `count - 1` successive gaps, each encoded
//!   as LEB128 varint of `delta - 1` (deltas are ≥ 1 on a strictly
//!   increasing list);
//! * [`BlockFormat::Bitpack`] — for dense runs: a little-endian bit vector
//!   of `(last - first) / 8 + 1` bytes where bit `i` means `first + i` is
//!   present.
//!
//! Skip-entry invariants (checked exhaustively by [`CompressedSidSet::
//! from_bytes`], relied on everywhere else): entries are sorted,
//! non-overlapping (`entry[i].first > entry[i-1].last`), `first ≤ last`,
//! `1 ≤ count ≤ BLOCK`, payloads are contiguous (`offset` of entry `i`
//! is the end of entry `i-1`'s payload), and each payload decodes to
//! exactly `count` strictly increasing sids from `first` to `last`.
//!
//! [`SeekingIterator`] is the consumption contract: `next_seek(target)`
//! returns the first not-yet-consumed sid `≥ target`, galloping over the
//! skip table (exponential probe + binary search) rather than scanning.
//! [`gallop_intersect`] leapfrogs two seeking iterators — the join kernel
//! used by `SidSet::intersect` whenever a compressed side is involved.

use solap_eventdb::{fail_point, Error, Result, Sid};

use crate::sidset::Bitmap;

/// Maximum number of sids per encoded block.
pub const BLOCK: usize = 128;

/// Serialized bytes per [`SkipEntry`] (`first + last + offset + count +
/// format`).
const SKIP_WIRE_BYTES: usize = 4 + 4 + 4 + 2 + 1;

/// Serialized header: magic, version, block count, payload length, tail
/// length.
const HEADER_BYTES: usize = 4 + 1 + 4 + 4 + 4;

/// Magic prefix of the serialized form.
const MAGIC: &[u8; 4] = b"SIDC";

/// Serialization format version.
const VERSION: u8 = 1;

/// How one block's payload is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockFormat {
    /// LEB128 varints of the successive gaps minus one.
    Varint,
    /// A bit vector of offsets from the block's first sid.
    Bitpack,
}

impl BlockFormat {
    fn to_byte(self) -> u8 {
        match self {
            BlockFormat::Varint => 0,
            BlockFormat::Bitpack => 1,
        }
    }

    fn from_byte(b: u8) -> Option<BlockFormat> {
        match b {
            0 => Some(BlockFormat::Varint),
            1 => Some(BlockFormat::Bitpack),
            _ => None,
        }
    }
}

/// Per-block directory entry: the seek structure of a compressed list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipEntry {
    /// Smallest sid in the block.
    pub first: Sid,
    /// Largest sid in the block — the key `next_seek` gallops on.
    pub last: Sid,
    /// Byte offset of the block's payload in the data buffer.
    pub offset: u32,
    /// Number of sids in the block (`1..=BLOCK`).
    pub count: u16,
    /// Payload encoding.
    pub format: BlockFormat,
}

/// A sorted sid set stored as compressed blocks plus a skip table.
///
/// Building is push-based like the other encodings: sids accumulate in a
/// small `tail` staging vector and every [`BLOCK`] entries are sealed into
/// an encoded block. [`CompressedSidSet::seal`] flushes the final partial
/// block, after which push-built and [`CompressedSidSet::from_sorted`]-built
/// sets are byte-identical (both cut blocks greedily every `BLOCK` sids).
///
/// `heap_bytes()` is **exact by construction**: encoded payload bytes plus
/// the in-memory skip table plus any unsealed tail — never the decoded
/// size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressedSidSet {
    /// Concatenated block payloads.
    data: Vec<u8>,
    /// One entry per sealed block, sorted by `first`.
    skips: Vec<SkipEntry>,
    /// Total sids across sealed blocks.
    sealed_len: usize,
    /// Staging buffer for the not-yet-sealed final block (`< BLOCK` after
    /// every `push`; empty once sealed).
    tail: Vec<Sid>,
}

impl CompressedSidSet {
    /// An empty compressed set.
    pub fn new() -> Self {
        CompressedSidSet::default()
    }

    /// Builds from a sorted, deduplicated vec and seals every block.
    pub fn from_sorted(v: Vec<Sid>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "sids must be sorted");
        let mut c = CompressedSidSet::new();
        for chunk in v.chunks(BLOCK) {
            c.seal_block(chunk);
        }
        c.shrink();
        c
    }

    /// Appends a sid; requires nondecreasing insertion order (duplicates
    /// are ignored), same contract as the list encoding.
    pub fn push(&mut self, sid: Sid) {
        if self.tail.last() == Some(&sid) {
            return;
        }
        debug_assert!(
            self.tail.last().is_none_or(|&l| l < sid) && self.max_sealed().is_none_or(|m| m < sid),
            "sids must be pushed in increasing order"
        );
        self.tail.push(sid);
        if self.tail.len() == BLOCK {
            let full = std::mem::take(&mut self.tail);
            self.seal_block(&full);
        }
    }

    /// Flushes the staged tail into a final encoded block. Idempotent;
    /// after sealing, the set is byte-identical to a `from_sorted` build
    /// of the same content.
    pub fn seal(&mut self) {
        if !self.tail.is_empty() {
            let t = std::mem::take(&mut self.tail);
            self.seal_block(&t);
        }
        self.shrink();
    }

    fn shrink(&mut self) {
        self.data.shrink_to_fit();
        self.skips.shrink_to_fit();
        self.tail.shrink_to_fit();
    }

    /// Largest sid in any sealed block.
    fn max_sealed(&self) -> Option<Sid> {
        self.skips.last().map(|e| e.last)
    }

    /// Encodes `sids` (sorted, non-empty, ≤ `BLOCK`) as one block.
    fn seal_block(&mut self, sids: &[Sid]) {
        debug_assert!(!sids.is_empty() && sids.len() <= BLOCK);
        let (first, last) = (sids[0], sids[sids.len() - 1]);
        // Varint candidate: gaps minus one, LEB128.
        let mut varint = Vec::with_capacity(sids.len());
        // solint: allow(governor-tick) bounded at BLOCK=128 sids; callers tick per posting
        for w in sids.windows(2) {
            write_varint(&mut varint, w[1] - w[0] - 1);
        }
        // Bitpack candidate size: one bit per sid in [first, last].
        let span_bytes = (last - first) as usize / 8 + 1;
        let format = if span_bytes < varint.len() {
            BlockFormat::Bitpack
        } else {
            BlockFormat::Varint
        };
        let offset = self.data.len() as u32;
        match format {
            BlockFormat::Varint => self.data.extend_from_slice(&varint),
            BlockFormat::Bitpack => {
                let start = self.data.len();
                self.data.resize(start + span_bytes, 0);
                // solint: allow(governor-tick) bounded at BLOCK=128 sids; callers tick per posting
                for &s in sids {
                    let bit = (s - first) as usize;
                    self.data[start + bit / 8] |= 1 << (bit % 8);
                }
            }
        }
        self.skips.push(SkipEntry {
            first,
            last,
            offset,
            count: sids.len() as u16,
            format,
        });
        self.sealed_len += sids.len();
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.sealed_len + self.tail.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the final partial block is still staged decoded.
    pub fn is_sealed(&self) -> bool {
        self.tail.is_empty()
    }

    /// Membership test: binary-search the skip table, decode one block.
    pub fn contains(&self, sid: Sid) -> bool {
        if self.tail.first().is_some_and(|&f| sid >= f) {
            return self.tail.binary_search(&sid).is_ok();
        }
        let b = self.skips.partition_point(|e| e.last < sid);
        let Some(entry) = self.skips.get(b) else {
            return false;
        };
        if sid < entry.first {
            return false;
        }
        self.decode_block(b).binary_search(&sid).is_ok()
    }

    /// Decodes sealed block `b` into a fresh vec. Infallible on sets built
    /// by `push`/`from_sorted`/validated `from_bytes` — every constructor
    /// establishes the skip-entry invariants.
    fn decode_block(&self, b: usize) -> Vec<Sid> {
        let entry = self.skips[b];
        let end = self
            .skips
            .get(b + 1)
            .map(|n| n.offset as usize)
            .unwrap_or(self.data.len());
        decode_block_checked(entry, &self.data[entry.offset as usize..end])
            .expect("sealed block satisfies codec invariants")
    }

    /// Number of sealed blocks.
    pub fn block_count(&self) -> usize {
        self.skips.len()
    }

    /// Per-block formats, for tests asserting both codecs are exercised.
    pub fn block_formats(&self) -> Vec<BlockFormat> {
        self.skips.iter().map(|e| e.format).collect()
    }

    /// Encoded payload bytes (excluding the skip table).
    pub fn encoded_data_len(&self) -> usize {
        self.data.len()
    }

    /// In-memory bytes of the skip table.
    pub fn skip_table_bytes(&self) -> usize {
        self.skips.len() * std::mem::size_of::<SkipEntry>()
    }

    /// Exact heap bytes: encoded payloads + skip table + staged tail.
    pub fn heap_bytes(&self) -> usize {
        self.encoded_data_len() + self.skip_table_bytes() + self.tail.len() * 4
    }

    /// Iterates sids in increasing order.
    pub fn iter(&self) -> CompressedSeeker<'_> {
        CompressedSeeker::new(self)
    }

    /// Collects into a sorted vec.
    pub fn to_vec(&self) -> Vec<Sid> {
        let mut out = Vec::with_capacity(self.len());
        for b in 0..self.skips.len() {
            out.extend(self.decode_block(b));
        }
        out.extend_from_slice(&self.tail);
        out
    }

    /// Serializes to a self-validating byte string (magic, version, skip
    /// table, payloads, staged tail, FNV-1a checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(HEADER_BYTES + self.skips.len() * SKIP_WIRE_BYTES + self.data.len());
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(self.skips.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.tail.len() as u32).to_le_bytes());
        for e in &self.skips {
            out.extend_from_slice(&e.first.to_le_bytes());
            out.extend_from_slice(&e.last.to_le_bytes());
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.count.to_le_bytes());
            out.push(e.format.to_byte());
        }
        out.extend_from_slice(&self.data);
        for &s in &self.tail {
            out.extend_from_slice(&s.to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes and fully validates a serialized set. Every truncation,
    /// bit flip or invariant violation yields [`Error::Corrupt`] — never a
    /// panic, never silently wrong sids. Iteration of the returned set is
    /// infallible because everything is checked here.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompressedSidSet> {
        fail_point!("index.decode");
        let corrupt = |detail: &str| Error::Corrupt {
            detail: format!("compressed sid set: {detail}"),
        };
        if bytes.len() < HEADER_BYTES + 8 {
            return Err(corrupt("truncated header"));
        }
        if &bytes[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        if bytes[4] != VERSION {
            return Err(corrupt("unsupported version"));
        }
        let n_blocks = read_u32(bytes, 5) as usize;
        let data_len = read_u32(bytes, 9) as usize;
        let tail_len = read_u32(bytes, 13) as usize;
        let expected = (HEADER_BYTES as u64)
            + (n_blocks as u64) * (SKIP_WIRE_BYTES as u64)
            + (data_len as u64)
            + (tail_len as u64) * 4
            + 8;
        if expected != bytes.len() as u64 {
            return Err(corrupt("length mismatch"));
        }
        let body = &bytes[..bytes.len() - 8];
        let sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if fnv1a(body) != sum {
            return Err(corrupt("checksum mismatch"));
        }
        if n_blocks == 0 && data_len != 0 {
            return Err(corrupt("payload bytes without blocks"));
        }
        let mut skips = Vec::with_capacity(n_blocks);
        let mut pos = HEADER_BYTES;
        let mut prev_last: Option<Sid> = None;
        for i in 0..n_blocks {
            let first = read_u32(bytes, pos);
            let last = read_u32(bytes, pos + 4);
            let offset = read_u32(bytes, pos + 8);
            let count = u16::from_le_bytes(bytes[pos + 12..pos + 14].try_into().expect("2 bytes"));
            let format =
                BlockFormat::from_byte(bytes[pos + 14]).ok_or_else(|| corrupt("bad format"))?;
            pos += SKIP_WIRE_BYTES;
            if first > last || count == 0 || count as usize > BLOCK {
                return Err(corrupt("invalid skip entry"));
            }
            if prev_last.is_some_and(|p| first <= p) {
                return Err(corrupt("blocks out of order"));
            }
            if i == 0 && offset != 0 {
                return Err(corrupt("first payload not at offset 0"));
            }
            prev_last = Some(last);
            skips.push(SkipEntry {
                first,
                last,
                offset,
                count,
                format,
            });
        }
        // Decode-validate every payload and advance the running offset.
        let data = &bytes[pos..pos + data_len];
        let mut sealed_len = 0usize;
        for (i, e) in skips.iter().enumerate() {
            let start = e.offset as usize;
            if start > data.len() {
                return Err(corrupt("payload offset out of range"));
            }
            let end = match e.format {
                BlockFormat::Bitpack => start + (e.last - e.first) as usize / 8 + 1,
                // Varint payloads self-delimit; measure by decoding.
                BlockFormat::Varint => start + varint_payload_len(&data[start..], e)?,
            };
            if end > data.len() {
                return Err(corrupt("payload past end of data"));
            }
            let decoded = decode_block_checked(*e, &data[start..end])?;
            debug_assert_eq!(decoded.len(), e.count as usize);
            sealed_len += decoded.len();
            // Contiguity with the next block (or the end of the payload).
            let next = skips
                .get(i + 1)
                .map(|n| n.offset as usize)
                .unwrap_or(data.len());
            if end != next {
                return Err(corrupt("payload length mismatch"));
            }
        }
        let mut tail = Vec::with_capacity(tail_len);
        let mut tpos = pos + data_len;
        for _ in 0..tail_len {
            let s = read_u32(bytes, tpos);
            tpos += 4;
            if tail.last().is_some_and(|&p: &Sid| s <= p) || prev_last.is_some_and(|p| s <= p) {
                return Err(corrupt("tail out of order"));
            }
            tail.push(s);
        }
        Ok(CompressedSidSet {
            data: data.to_vec(),
            skips,
            sealed_len,
            tail,
        })
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

/// FNV-1a 64-bit, the same dependency-free checksum family persist uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 u32; returns `(value, bytes_consumed)`.
fn read_varint(bytes: &[u8]) -> Result<(u32, usize)> {
    let mut v = 0u64;
    for (i, &b) in bytes.iter().enumerate().take(5) {
        v |= ((b & 0x7f) as u64) << (7 * i);
        if b & 0x80 == 0 {
            if v > u32::MAX as u64 {
                return Err(Error::Corrupt {
                    detail: "compressed sid set: varint overflows u32".into(),
                });
            }
            return Ok((v as u32, i + 1));
        }
    }
    Err(Error::Corrupt {
        detail: "compressed sid set: unterminated varint".into(),
    })
}

/// Byte length of a varint payload holding `count - 1` gaps.
fn varint_payload_len(data: &[u8], e: &SkipEntry) -> Result<usize> {
    let mut at = 0usize;
    for _ in 1..e.count {
        let (_, n) = read_varint(&data[at.min(data.len())..])?;
        at += n;
    }
    Ok(at)
}

/// Decodes one block payload, checking every invariant: exact `count`
/// strictly increasing sids running from `first` to `last`, consuming the
/// payload exactly.
fn decode_block_checked(e: SkipEntry, payload: &[u8]) -> Result<Vec<Sid>> {
    let corrupt = |detail: &str| Error::Corrupt {
        detail: format!("compressed sid set: {detail}"),
    };
    let mut out = Vec::with_capacity(e.count as usize);
    match e.format {
        BlockFormat::Varint => {
            let mut cur = e.first;
            out.push(cur);
            let mut at = 0usize;
            for _ in 1..e.count {
                let (gap, n) = read_varint(&payload[at..])?;
                at += n;
                cur = cur
                    .checked_add(gap)
                    .and_then(|c| c.checked_add(1))
                    .ok_or_else(|| corrupt("sid overflow"))?;
                out.push(cur);
            }
            if at != payload.len() {
                return Err(corrupt("trailing bytes in varint block"));
            }
            if cur != e.last {
                return Err(corrupt("block last-sid mismatch"));
            }
        }
        BlockFormat::Bitpack => {
            let span_bytes = (e.last - e.first) as usize / 8 + 1;
            if payload.len() != span_bytes {
                return Err(corrupt("bitpack payload size mismatch"));
            }
            for (i, &byte) in payload.iter().enumerate() {
                let mut w = byte;
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let off = (i * 8 + bit) as u32;
                    if off > e.last - e.first {
                        return Err(corrupt("bit set past block span"));
                    }
                    out.push(e.first + off);
                }
            }
            if out.first() != Some(&e.first) || out.last() != Some(&e.last) {
                return Err(corrupt("block bounds not present"));
            }
        }
    }
    if out.len() != e.count as usize {
        return Err(corrupt("block count mismatch"));
    }
    Ok(out)
}

/// An ordered sid stream supporting forward skips.
///
/// Contract: `next_sid` yields sids strictly increasing; `next_seek(t)`
/// consumes and returns the first not-yet-consumed sid `≥ t` (for `t` at
/// or below the current position it behaves like `next_sid`). Both return
/// `None` once exhausted, and stay exhausted.
pub trait SeekingIterator {
    /// The next sid in increasing order.
    fn next_sid(&mut self) -> Option<Sid>;

    /// The first not-yet-consumed sid `≥ target`, skipping ahead by
    /// galloping rather than scanning.
    fn next_seek(&mut self, target: Sid) -> Option<Sid>;
}

/// Seeking iterator over a sorted slice: gallops (exponential probe +
/// binary search) instead of scanning.
pub struct SliceSeeker<'a> {
    sids: &'a [Sid],
    pos: usize,
}

impl<'a> SliceSeeker<'a> {
    /// Iterates `sids` (sorted strictly increasing).
    pub fn new(sids: &'a [Sid]) -> Self {
        SliceSeeker { sids, pos: 0 }
    }
}

impl SeekingIterator for SliceSeeker<'_> {
    fn next_sid(&mut self) -> Option<Sid> {
        let s = self.sids.get(self.pos).copied();
        self.pos += (s.is_some()) as usize;
        s
    }

    fn next_seek(&mut self, target: Sid) -> Option<Sid> {
        let rest = &self.sids[self.pos.min(self.sids.len())..];
        self.pos += gallop_partition(rest, target);
        self.next_sid()
    }
}

/// Index of the first element `≥ target` in sorted `s`, found by
/// exponential probing then binary search — O(log distance), the skip
/// behavior the prefix-join ladder relies on for asymmetric lists.
fn gallop_partition(s: &[Sid], target: Sid) -> usize {
    let mut lo = 0usize;
    let mut step = 1usize;
    while lo + step < s.len() && s[lo + step] < target {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step + 1).min(s.len());
    lo + s[lo..hi].partition_point(|&x| x < target)
}

/// Seeking iterator over a [`Bitmap`]: seeks jump straight to the target's
/// word.
pub struct BitmapSeeker<'a> {
    words: &'a [u64],
    /// Current word index.
    w: usize,
    /// Remaining bits of the current word.
    cur: u64,
}

impl<'a> BitmapSeeker<'a> {
    /// Iterates the set bits of `bitmap`.
    pub fn new(bitmap: &'a Bitmap) -> Self {
        let words = bitmap.words();
        BitmapSeeker {
            words,
            w: 0,
            cur: words.first().copied().unwrap_or(0),
        }
    }

    fn advance_word(&mut self) -> bool {
        while self.cur == 0 {
            self.w += 1;
            match self.words.get(self.w) {
                Some(&next) => self.cur = next,
                None => return false,
            }
        }
        true
    }
}

impl SeekingIterator for BitmapSeeker<'_> {
    fn next_sid(&mut self) -> Option<Sid> {
        if !self.advance_word() {
            return None;
        }
        let b = self.cur.trailing_zeros();
        self.cur &= self.cur - 1;
        Some((self.w as u32) * 64 + b)
    }

    fn next_seek(&mut self, target: Sid) -> Option<Sid> {
        let tw = (target / 64) as usize;
        if tw > self.w {
            self.w = tw;
            self.cur = self.words.get(tw).copied().unwrap_or(0);
        }
        if self.w == tw {
            // Clear bits below the target within its word.
            self.cur &= u64::MAX.checked_shl(target % 64).unwrap_or(0);
        }
        self.next_sid()
    }
}

/// Seeking iterator over a [`CompressedSidSet`]: seeks gallop the skip
/// table on `last` sids, decode one block, and binary-search within it.
pub struct CompressedSeeker<'a> {
    set: &'a CompressedSidSet,
    /// Decoded sids of the current block.
    buf: Vec<Sid>,
    /// Cursor into `buf`.
    pos: usize,
    /// Index of the next sealed block to decode.
    next_block: usize,
    /// Cursor into the staged tail.
    tail_pos: usize,
}

impl<'a> CompressedSeeker<'a> {
    fn new(set: &'a CompressedSidSet) -> Self {
        CompressedSeeker {
            set,
            buf: Vec::new(),
            pos: 0,
            next_block: 0,
            tail_pos: 0,
        }
    }

    /// Loads sealed block `b` and positions the cursor at its start.
    fn load_block(&mut self, b: usize) {
        self.buf = self.set.decode_block(b);
        self.pos = 0;
        self.next_block = b + 1;
    }
}

impl SeekingIterator for CompressedSeeker<'_> {
    fn next_sid(&mut self) -> Option<Sid> {
        if self.pos < self.buf.len() {
            let s = self.buf[self.pos];
            self.pos += 1;
            return Some(s);
        }
        if self.next_block < self.set.skips.len() {
            self.load_block(self.next_block);
            return self.next_sid();
        }
        let s = self.set.tail.get(self.tail_pos).copied();
        self.tail_pos += (s.is_some()) as usize;
        s
    }

    fn next_seek(&mut self, target: Sid) -> Option<Sid> {
        // Within the already-decoded block?
        if self.pos < self.buf.len() && target <= *self.buf.last().expect("non-empty block") {
            let rest = &self.buf[self.pos..];
            self.pos += gallop_partition(rest, target);
            return self.next_sid();
        }
        if self.pos < self.buf.len() || self.next_block < self.set.skips.len() {
            // Gallop the skip table (from the next undecoded block) for the
            // first block whose max sid reaches the target.
            let sk = &self.set.skips;
            let mut lo = self.next_block;
            let mut step = 1usize;
            while lo + step < sk.len() && sk[lo + step].last < target {
                lo += step;
                step <<= 1;
            }
            let hi = (lo + step + 1).min(sk.len());
            let b = lo + sk[lo..hi].partition_point(|e| e.last < target);
            if b < sk.len() {
                self.load_block(b);
                self.pos = gallop_partition(&self.buf, target);
                return self.next_sid();
            }
            // Past every sealed block: fall through to the tail.
            self.pos = self.buf.len();
            self.next_block = sk.len();
        }
        let rest = &self.set.tail[self.tail_pos.min(self.set.tail.len())..];
        self.tail_pos += gallop_partition(rest, target);
        self.next_sid()
    }
}

impl Iterator for CompressedSeeker<'_> {
    type Item = Sid;

    fn next(&mut self) -> Option<Sid> {
        self.next_sid()
    }
}

/// A seeking iterator over any [`crate::sidset::SidSet`] encoding.
pub enum SidSetSeeker<'a> {
    /// Over a sorted list.
    List(SliceSeeker<'a>),
    /// Over a bitmap.
    Bitmap(BitmapSeeker<'a>),
    /// Over a compressed set.
    Compressed(CompressedSeeker<'a>),
}

impl SeekingIterator for SidSetSeeker<'_> {
    fn next_sid(&mut self) -> Option<Sid> {
        match self {
            SidSetSeeker::List(s) => s.next_sid(),
            SidSetSeeker::Bitmap(s) => s.next_sid(),
            SidSetSeeker::Compressed(s) => s.next_sid(),
        }
    }

    fn next_seek(&mut self, target: Sid) -> Option<Sid> {
        match self {
            SidSetSeeker::List(s) => s.next_seek(target),
            SidSetSeeker::Bitmap(s) => s.next_seek(target),
            SidSetSeeker::Compressed(s) => s.next_seek(target),
        }
    }
}

impl Iterator for SidSetSeeker<'_> {
    type Item = Sid;

    fn next(&mut self) -> Option<Sid> {
        self.next_sid()
    }
}

/// Leapfrog intersection of two seeking iterators: each side repeatedly
/// seeks to the other's cursor, so runs with no overlap are skipped at
/// block granularity instead of scanned.
pub fn gallop_intersect<A: SeekingIterator, B: SeekingIterator>(mut a: A, mut b: B) -> Vec<Sid> {
    let mut out = Vec::new();
    let Some(mut x) = a.next_sid() else {
        return out;
    };
    loop {
        let Some(y) = b.next_seek(x) else {
            return out;
        };
        if y == x {
            out.push(x);
            match a.next_sid() {
                Some(nx) => x = nx,
                None => return out,
            }
        } else {
            match a.next_seek(y) {
                Some(nx) => x = nx,
                None => return out,
            }
            if x == y {
                out.push(x);
                match a.next_sid() {
                    Some(nx) => x = nx,
                    None => return out,
                }
                // `y` is consumed on both sides; the next round seeks `b`
                // past it.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compressed(v: &[Sid]) -> CompressedSidSet {
        CompressedSidSet::from_sorted(v.to_vec())
    }

    #[test]
    fn round_trips_small_and_blocky() {
        for v in [
            vec![],
            vec![0],
            vec![u32::MAX],
            (0..1000).collect::<Vec<_>>(),
            (0..1000).map(|i| i * 3001).collect(),
        ] {
            let c = compressed(&v);
            assert_eq!(c.to_vec(), v, "decode mismatch");
            assert_eq!(c.len(), v.len());
            for &s in &v {
                assert!(c.contains(s));
            }
        }
    }

    #[test]
    fn push_then_seal_matches_from_sorted() {
        let v: Vec<Sid> = (0..777).map(|i| i * 7 + (i % 3)).collect();
        let mut p = CompressedSidSet::new();
        for &s in &v {
            p.push(s);
        }
        p.seal();
        assert_eq!(p, compressed(&v), "push+seal must be canonical");
    }

    #[test]
    fn dense_runs_bitpack_sparse_runs_varint() {
        let dense = compressed(&(0..256).collect::<Vec<_>>());
        assert!(dense
            .block_formats()
            .iter()
            .all(|f| *f == BlockFormat::Bitpack));
        let sparse = compressed(&(0..256).map(|i| i * 100_000).collect::<Vec<_>>());
        assert!(sparse
            .block_formats()
            .iter()
            .all(|f| *f == BlockFormat::Varint));
    }

    #[test]
    fn heap_bytes_is_encoded_not_decoded() {
        let v: Vec<Sid> = (0..10_000).map(|i| i * 5).collect();
        let c = compressed(&v);
        assert_eq!(
            c.heap_bytes(),
            c.encoded_data_len() + c.skip_table_bytes(),
            "sealed sets count payload + skip table only"
        );
        assert!(c.heap_bytes() < v.len() * 4, "must beat the list encoding");
    }

    #[test]
    fn seek_contract() {
        let v: Vec<Sid> = vec![2, 5, 8, 130, 260, 10_000, 10_001];
        let c = compressed(&v);
        let mut it = c.iter();
        assert_eq!(it.next_seek(0), Some(2));
        assert_eq!(it.next_seek(5), Some(5));
        assert_eq!(it.next_seek(1), Some(8), "never goes backwards");
        assert_eq!(it.next_seek(200), Some(260));
        assert_eq!(it.next_sid(), Some(10_000));
        assert_eq!(it.next_seek(10_001), Some(10_001));
        assert_eq!(it.next_seek(1), None);
        assert_eq!(it.next_sid(), None, "stays exhausted");
    }

    #[test]
    fn gallop_matches_scan() {
        let a: Vec<Sid> = (0..4000).map(|i| i * 3).collect();
        let b: Vec<Sid> = (0..400).map(|i| i * 31).collect();
        let scan: Vec<Sid> = a.iter().copied().filter(|s| b.contains(s)).collect();
        let ca = compressed(&a);
        let cb = compressed(&b);
        assert_eq!(gallop_intersect(ca.iter(), cb.iter()), scan);
        assert_eq!(gallop_intersect(cb.iter(), ca.iter()), scan);
        assert_eq!(
            gallop_intersect(SliceSeeker::new(&a), cb.iter()),
            scan,
            "mixed slice × compressed"
        );
    }

    #[test]
    fn serialized_round_trip_and_truncation() {
        let c = compressed(&(0..500).map(|i| i * 17).collect::<Vec<_>>());
        let bytes = c.to_bytes();
        assert_eq!(CompressedSidSet::from_bytes(&bytes).unwrap(), c);
        for cut in 0..bytes.len() {
            assert!(
                CompressedSidSet::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
    }
}
