//! Sid collections: sorted lists and bitmaps.
//!
//! The paper's inverted lists are sid lists; §6 suggests that "if the domain
//! of a pattern dimension is small, we can encode … the inverted indices as
//! bitmap indices. Consequently, the intersection operation … can be
//! performed much faster using the bitwise-AND operation." Both encodings
//! are implemented here behind [`SidSet`], so the engines and the ablation
//! benchmarks can switch backend per index.

use solap_eventdb::Sid;

/// A fixed-universe bitmap of sids (64-bit blocks).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Sets a bit. Bits may be set in any order.
    pub fn insert(&mut self, sid: Sid) {
        let w = (sid / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (sid % 64);
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.len += 1;
        }
    }

    /// Membership test.
    pub fn contains(&self, sid: Sid) -> bool {
        self.words
            .get((sid / 64) as usize)
            .is_some_and(|w| w & (1u64 << (sid % 64)) != 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bitwise-AND intersection.
    pub fn intersect(&self, other: &Bitmap) -> Bitmap {
        let n = self.words.len().min(other.words.len());
        let mut words = Vec::with_capacity(n);
        let mut len = 0;
        for i in 0..n {
            let w = self.words[i] & other.words[i];
            len += w.count_ones() as usize;
            words.push(w);
        }
        Bitmap { words, len }
    }

    /// Bitwise-OR union.
    pub fn union(&self, other: &Bitmap) -> Bitmap {
        let n = self.words.len().max(other.words.len());
        let mut words = vec![0u64; n];
        let mut len = 0;
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0);
            len += w.count_ones() as usize;
        }
        Bitmap { words, len }
    }

    /// Iterates set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Sid> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some((i as u32) * 64 + b)
                }
            })
        })
    }

    /// Heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl FromIterator<Sid> for Bitmap {
    fn from_iter<T: IntoIterator<Item = Sid>>(iter: T) -> Self {
        let mut b = Bitmap::new();
        for s in iter {
            b.insert(s);
        }
        b
    }
}

/// A set of sids in one of two encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidSet {
    /// A strictly increasing sorted list (the paper's inverted list).
    List(Vec<Sid>),
    /// A bitmap (§6 optimisation).
    Bitmap(Bitmap),
}

impl SidSet {
    /// An empty set in the list encoding.
    pub fn empty_list() -> Self {
        SidSet::List(Vec::new())
    }

    /// An empty set in the bitmap encoding.
    pub fn empty_bitmap() -> Self {
        SidSet::Bitmap(Bitmap::new())
    }

    /// Builds from a sorted, deduplicated vec.
    pub fn from_sorted(v: Vec<Sid>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "sids must be sorted");
        SidSet::List(v)
    }

    /// Appends a sid; list encoding requires nondecreasing insertion order
    /// (BUILDINDEX scans sequences in sid order, so this holds naturally).
    pub fn push(&mut self, sid: Sid) {
        match self {
            SidSet::List(v) => {
                if v.last() != Some(&sid) {
                    debug_assert!(v.last().is_none_or(|&l| l < sid));
                    v.push(sid);
                }
            }
            SidSet::Bitmap(b) => b.insert(sid),
        }
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        match self {
            SidSet::List(v) => v.len(),
            SidSet::Bitmap(b) => b.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, sid: Sid) -> bool {
        match self {
            SidSet::List(v) => v.binary_search(&sid).is_ok(),
            SidSet::Bitmap(b) => b.contains(sid),
        }
    }

    /// Iterates sids in increasing order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = Sid> + '_> {
        match self {
            SidSet::List(v) => Box::new(v.iter().copied()),
            SidSet::Bitmap(b) => Box::new(b.iter()),
        }
    }

    /// Collects into a sorted vec.
    pub fn to_vec(&self) -> Vec<Sid> {
        self.iter().collect()
    }

    /// Intersection; the result keeps `self`'s encoding. Mixed encodings
    /// are supported (the bitmap side is probed per element).
    pub fn intersect(&self, other: &SidSet) -> SidSet {
        match (self, other) {
            (SidSet::List(a), SidSet::List(b)) => {
                let mut out = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                SidSet::List(out)
            }
            (SidSet::Bitmap(a), SidSet::Bitmap(b)) => SidSet::Bitmap(a.intersect(b)),
            (SidSet::List(a), SidSet::Bitmap(b)) => {
                SidSet::List(a.iter().copied().filter(|&s| b.contains(s)).collect())
            }
            (SidSet::Bitmap(a), SidSet::List(b)) => {
                SidSet::Bitmap(b.iter().copied().filter(|&s| a.contains(s)).collect())
            }
        }
    }

    /// Union; the result keeps `self`'s encoding.
    pub fn union(&self, other: &SidSet) -> SidSet {
        match (self, other) {
            (SidSet::List(a), SidSet::List(b)) => {
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            out.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend_from_slice(&a[i..]);
                out.extend_from_slice(&b[j..]);
                SidSet::List(out)
            }
            (SidSet::Bitmap(a), SidSet::Bitmap(b)) => SidSet::Bitmap(a.union(b)),
            (SidSet::List(_), SidSet::Bitmap(b)) => {
                let mut merged: Bitmap = self.iter().collect();
                for s in b.iter() {
                    merged.insert(s);
                }
                SidSet::List(merged.iter().collect())
            }
            (SidSet::Bitmap(a), SidSet::List(b)) => {
                let mut out = a.clone();
                for &s in b {
                    out.insert(s);
                }
                SidSet::Bitmap(out)
            }
        }
    }

    /// Heap bytes (for index size accounting, Table 1's "Size of II").
    pub fn heap_bytes(&self) -> usize {
        match self {
            SidSet::List(v) => v.len() * 4,
            SidSet::Bitmap(b) => b.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(v: &[Sid]) -> SidSet {
        SidSet::from_sorted(v.to_vec())
    }

    fn bitmap(v: &[Sid]) -> SidSet {
        SidSet::Bitmap(v.iter().copied().collect())
    }

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::new();
        for s in [5, 64, 1, 200, 64] {
            b.insert(s);
        }
        assert_eq!(b.len(), 4);
        assert!(b.contains(64));
        assert!(!b.contains(63));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 5, 64, 200]);
        assert!(b.heap_bytes() >= 4 * 8);
    }

    #[test]
    fn list_intersection() {
        let a = list(&[1, 3, 5, 7, 200]);
        let b = list(&[3, 4, 5, 200, 300]);
        assert_eq!(a.intersect(&b).to_vec(), vec![3, 5, 200]);
        assert_eq!(b.intersect(&a).to_vec(), vec![3, 5, 200]);
        assert!(a.intersect(&SidSet::empty_list()).is_empty());
    }

    #[test]
    fn list_union() {
        let a = list(&[1, 5]);
        let b = list(&[2, 5, 9]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 5, 9]);
    }

    #[test]
    fn bitmap_set_algebra_matches_lists() {
        let xs = [1u32, 3, 64, 65, 128, 500];
        let ys = [3u32, 64, 400, 500];
        let (la, lb) = (list(&xs), list(&ys));
        let (ba, bb) = (bitmap(&xs), bitmap(&ys));
        assert_eq!(la.intersect(&lb).to_vec(), ba.intersect(&bb).to_vec());
        assert_eq!(la.union(&lb).to_vec(), ba.union(&bb).to_vec());
    }

    #[test]
    fn mixed_encodings() {
        let a = list(&[1, 2, 3, 100]);
        let b = bitmap(&[2, 100, 101]);
        assert_eq!(a.intersect(&b).to_vec(), vec![2, 100]);
        assert_eq!(b.intersect(&a).to_vec(), vec![2, 100]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 100, 101]);
        assert_eq!(b.union(&a).to_vec(), vec![1, 2, 3, 100, 101]);
    }

    #[test]
    fn push_dedupes_in_order() {
        let mut s = SidSet::empty_list();
        for sid in [1, 1, 2, 2, 2, 9] {
            s.push(sid);
        }
        assert_eq!(s.to_vec(), vec![1, 2, 9]);
        let mut b = SidSet::empty_bitmap();
        for sid in [9, 1, 1] {
            b.push(sid);
        }
        assert_eq!(b.to_vec(), vec![1, 9]);
    }

    #[test]
    fn contains_and_len() {
        let s = list(&[2, 4, 6]);
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert_eq!(s.len(), 3);
        let b = bitmap(&[2, 4, 6]);
        assert!(b.contains(6));
        assert_eq!(b.len(), 3);
    }
}
