//! Sid collections: sorted lists, bitmaps, and compressed blocks.
//!
//! The paper's inverted lists are sid lists; §6 suggests that "if the domain
//! of a pattern dimension is small, we can encode … the inverted indices as
//! bitmap indices. Consequently, the intersection operation … can be
//! performed much faster using the bitwise-AND operation." Both encodings
//! are implemented here behind [`SidSet`], along with a third — the
//! block-compressed, skip-indexed form of [`crate::codec`] — so the engines
//! and the ablation benchmarks can switch backend per index.
//!
//! Whenever a compressed side is involved, set algebra runs on
//! [`SeekingIterator`]s (leapfrog [`gallop_intersect`] instead of a linear
//! merge); the result always keeps `self`'s encoding, as before.

use solap_eventdb::Sid;

use crate::codec::{
    gallop_intersect, BitmapSeeker, CompressedSidSet, SeekingIterator, SidSetSeeker, SliceSeeker,
};

/// A fixed-universe bitmap of sids (64-bit blocks).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Sets a bit. Bits may be set in any order.
    pub fn insert(&mut self, sid: Sid) {
        let w = (sid / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (sid % 64);
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.len += 1;
        }
    }

    /// Membership test.
    pub fn contains(&self, sid: Sid) -> bool {
        self.words
            .get((sid / 64) as usize)
            .is_some_and(|w| w & (1u64 << (sid % 64)) != 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bitwise-AND intersection.
    pub fn intersect(&self, other: &Bitmap) -> Bitmap {
        let n = self.words.len().min(other.words.len());
        let mut words = Vec::with_capacity(n);
        let mut len = 0;
        for i in 0..n {
            let w = self.words[i] & other.words[i];
            len += w.count_ones() as usize;
            words.push(w);
        }
        Bitmap { words, len }
    }

    /// Bitwise-OR union.
    pub fn union(&self, other: &Bitmap) -> Bitmap {
        let n = self.words.len().max(other.words.len());
        let mut words = vec![0u64; n];
        let mut len = 0;
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0);
            len += w.count_ones() as usize;
        }
        Bitmap { words, len }
    }

    /// Iterates set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Sid> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some((i as u32) * 64 + b)
                }
            })
        })
    }

    /// Heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The raw 64-bit words, for the codec's seeking iterator.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }
}

impl FromIterator<Sid> for Bitmap {
    fn from_iter<T: IntoIterator<Item = Sid>>(iter: T) -> Self {
        let mut b = Bitmap::new();
        for s in iter {
            b.insert(s);
        }
        b
    }
}

/// How [`SidSet::sealed`] canonicalizes a set, given its final content.
///
/// Shared by every construction path (bulk `from_sorted_auto`, push-time
/// promotion, end-of-build sealing) so they all agree — the density rule
/// lives in exactly one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Plain sorted vec — cheapest for tiny sets.
    List,
    /// Bitmap — smallest and fastest above 1-in-8 density.
    Bitmap,
    /// Block-compressed — wins on everything sparse but non-tiny.
    Compressed,
}

/// Below this cardinality a plain list is smaller than a compressed set
/// (one skip entry alone costs four sids' worth of bytes).
const COMPRESS_MIN_LEN: usize = 16;

/// The density rule used by auto selection: the canonical [`Encoding`] for
/// a set of `len` sids whose maximum is `max`.
pub fn choose_encoding(len: usize, max: Sid) -> Encoding {
    if len >= COMPRESS_MIN_LEN && (max as u64) < (len as u64) * 8 {
        // Bitmap bytes = (max+1)/8 < len, beating both other forms.
        Encoding::Bitmap
    } else if len >= COMPRESS_MIN_LEN {
        Encoding::Compressed
    } else {
        Encoding::List
    }
}

/// A set of sids in one of three encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidSet {
    /// A strictly increasing sorted list (the paper's inverted list).
    List(Vec<Sid>),
    /// A bitmap (§6 optimisation).
    Bitmap(Bitmap),
    /// Delta+varint / bitpacked blocks behind a skip table
    /// ([`crate::codec`]).
    Compressed(CompressedSidSet),
}

impl SidSet {
    /// An empty set in the list encoding.
    pub fn empty_list() -> Self {
        SidSet::List(Vec::new())
    }

    /// An empty set in the bitmap encoding.
    pub fn empty_bitmap() -> Self {
        SidSet::Bitmap(Bitmap::new())
    }

    /// An empty set in the compressed encoding.
    pub fn empty_compressed() -> Self {
        SidSet::Compressed(CompressedSidSet::new())
    }

    /// Builds from a sorted, deduplicated vec.
    pub fn from_sorted(v: Vec<Sid>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "sids must be sorted");
        SidSet::List(v)
    }

    /// Builds from a sorted, deduplicated vec in the canonical encoding
    /// for its density — the same [`choose_encoding`] rule push-time
    /// promotion and [`SidSet::sealed`] apply, so every construction path
    /// lands on identical bytes.
    pub fn from_sorted_auto(v: Vec<Sid>) -> Self {
        match choose_encoding(v.len(), v.last().copied().unwrap_or(0)) {
            Encoding::List => SidSet::from_sorted(v),
            Encoding::Bitmap => SidSet::Bitmap(v.into_iter().collect()),
            Encoding::Compressed => SidSet::Compressed(CompressedSidSet::from_sorted(v)),
        }
    }

    /// Appends a sid; list and compressed encodings require nondecreasing
    /// insertion order (BUILDINDEX scans sequences in sid order, so this
    /// holds naturally).
    pub fn push(&mut self, sid: Sid) {
        match self {
            SidSet::List(v) => {
                if v.last() != Some(&sid) {
                    debug_assert!(v.last().is_none_or(|&l| l < sid));
                    v.push(sid);
                }
            }
            SidSet::Bitmap(b) => b.insert(sid),
            SidSet::Compressed(c) => c.push(sid),
        }
    }

    /// [`SidSet::push`] with auto-backend bookkeeping: once the staged
    /// list crosses the [`choose_encoding`] boundary it is promoted in
    /// place. A final [`SidSet::sealed`] with [`SetBackend::Auto`] settles
    /// the encoding from the *final* content, so push-promotion and
    /// [`SidSet::from_sorted_auto`] cannot disagree.
    ///
    /// [`SetBackend::Auto`]: crate::inverted::SetBackend::Auto
    pub fn push_promoting(&mut self, sid: Sid) {
        self.push(sid);
        if let SidSet::List(v) = self {
            let max = v.last().copied().unwrap_or(0);
            if choose_encoding(v.len(), max) == Encoding::Bitmap {
                *self = SidSet::Bitmap(v.iter().copied().collect());
            }
        }
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        match self {
            SidSet::List(v) => v.len(),
            SidSet::Bitmap(b) => b.len(),
            SidSet::Compressed(c) => c.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    pub fn contains(&self, sid: Sid) -> bool {
        match self {
            SidSet::List(v) => v.binary_search(&sid).is_ok(),
            SidSet::Bitmap(b) => b.contains(sid),
            SidSet::Compressed(c) => c.contains(sid),
        }
    }

    /// Iterates sids in increasing order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = Sid> + '_> {
        match self {
            SidSet::List(v) => Box::new(v.iter().copied()),
            SidSet::Bitmap(b) => Box::new(b.iter()),
            SidSet::Compressed(c) => Box::new(c.iter()),
        }
    }

    /// A [`SeekingIterator`] over the set, whatever its encoding — the
    /// join ladder's consumption interface.
    pub fn seeker(&self) -> SidSetSeeker<'_> {
        match self {
            SidSet::List(v) => SidSetSeeker::List(SliceSeeker::new(v)),
            SidSet::Bitmap(b) => SidSetSeeker::Bitmap(BitmapSeeker::new(b)),
            SidSet::Compressed(c) => SidSetSeeker::Compressed(c.iter()),
        }
    }

    /// Collects into a sorted vec.
    pub fn to_vec(&self) -> Vec<Sid> {
        self.iter().collect()
    }

    /// Re-wraps a sorted vec in the same encoding as `self`.
    fn encode_like(&self, v: Vec<Sid>) -> SidSet {
        match self {
            SidSet::List(_) => SidSet::List(v),
            SidSet::Bitmap(_) => SidSet::Bitmap(v.into_iter().collect()),
            SidSet::Compressed(_) => SidSet::Compressed(CompressedSidSet::from_sorted(v)),
        }
    }

    /// Canonicalizes the set for long-term storage under `backend`:
    /// compressed tails are sealed, auto picks the [`choose_encoding`]
    /// form for the final content, and fixed backends coerce strays (e.g.
    /// a bitmap union result inside a compressed index) to their own
    /// encoding. Applied by `InvertedIndex::seal` before an index is
    /// cached, so `heap_bytes` accounting always sees the final form.
    pub fn sealed(self, backend: crate::inverted::SetBackend) -> SidSet {
        use crate::inverted::SetBackend;
        match backend {
            SetBackend::List => match self {
                SidSet::List(_) => self,
                other => SidSet::List(other.to_vec()),
            },
            SetBackend::Bitmap => match self {
                SidSet::Bitmap(_) => self,
                other => SidSet::Bitmap(other.iter().collect()),
            },
            SetBackend::Compressed => match self {
                SidSet::Compressed(mut c) => {
                    c.seal();
                    SidSet::Compressed(c)
                }
                other => SidSet::Compressed(CompressedSidSet::from_sorted(other.to_vec())),
            },
            SetBackend::Auto => {
                let (len, max) = (self.len(), self.iter().last().unwrap_or(0));
                match choose_encoding(len, max) {
                    Encoding::List => self.sealed(SetBackend::List),
                    Encoding::Bitmap => self.sealed(SetBackend::Bitmap),
                    Encoding::Compressed => self.sealed(SetBackend::Compressed),
                }
            }
        }
    }

    /// Intersection; the result keeps `self`'s encoding. Mixed encodings
    /// are supported (the bitmap side is probed per element); whenever a
    /// compressed side is involved the leapfrog [`gallop_intersect`]
    /// kernel skips non-overlapping blocks via the skip table.
    pub fn intersect(&self, other: &SidSet) -> SidSet {
        match (self, other) {
            (SidSet::Compressed(_), _) | (_, SidSet::Compressed(_)) => {
                self.encode_like(gallop_intersect(self.seeker(), other.seeker()))
            }
            (SidSet::List(a), SidSet::List(b)) => {
                let mut out = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                SidSet::List(out)
            }
            (SidSet::Bitmap(a), SidSet::Bitmap(b)) => SidSet::Bitmap(a.intersect(b)),
            (SidSet::List(a), SidSet::Bitmap(b)) => {
                SidSet::List(a.iter().copied().filter(|&s| b.contains(s)).collect())
            }
            (SidSet::Bitmap(a), SidSet::List(b)) => {
                SidSet::Bitmap(b.iter().copied().filter(|&s| a.contains(s)).collect())
            }
        }
    }

    /// Union; the result keeps `self`'s encoding.
    pub fn union(&self, other: &SidSet) -> SidSet {
        match (self, other) {
            (SidSet::Compressed(_), _) | (_, SidSet::Compressed(_)) => {
                let (mut a, mut b) = (self.seeker(), other.seeker());
                let mut out = Vec::new();
                let (mut x, mut y) = (a.next_sid(), b.next_sid());
                loop {
                    match (x, y) {
                        (Some(sa), Some(sb)) => match sa.cmp(&sb) {
                            std::cmp::Ordering::Less => {
                                out.push(sa);
                                x = a.next_sid();
                            }
                            std::cmp::Ordering::Greater => {
                                out.push(sb);
                                y = b.next_sid();
                            }
                            std::cmp::Ordering::Equal => {
                                out.push(sa);
                                x = a.next_sid();
                                y = b.next_sid();
                            }
                        },
                        (Some(sa), None) => {
                            out.push(sa);
                            x = a.next_sid();
                        }
                        (None, Some(sb)) => {
                            out.push(sb);
                            y = b.next_sid();
                        }
                        (None, None) => break,
                    }
                }
                self.encode_like(out)
            }
            (SidSet::List(a), SidSet::List(b)) => {
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            out.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend_from_slice(&a[i..]);
                out.extend_from_slice(&b[j..]);
                SidSet::List(out)
            }
            (SidSet::Bitmap(a), SidSet::Bitmap(b)) => SidSet::Bitmap(a.union(b)),
            (SidSet::List(_), SidSet::Bitmap(b)) => {
                let mut merged: Bitmap = self.iter().collect();
                for s in b.iter() {
                    merged.insert(s);
                }
                SidSet::List(merged.iter().collect())
            }
            (SidSet::Bitmap(a), SidSet::List(b)) => {
                let mut out = a.clone();
                for &s in b {
                    out.insert(s);
                }
                SidSet::Bitmap(out)
            }
        }
    }

    /// Heap bytes (for index size accounting, Table 1's "Size of II").
    /// For the compressed form this is exact — encoded payload plus skip
    /// table, never the decoded size.
    pub fn heap_bytes(&self) -> usize {
        match self {
            SidSet::List(v) => v.len() * 4,
            SidSet::Bitmap(b) => b.heap_bytes(),
            SidSet::Compressed(c) => c.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(v: &[Sid]) -> SidSet {
        SidSet::from_sorted(v.to_vec())
    }

    fn bitmap(v: &[Sid]) -> SidSet {
        SidSet::Bitmap(v.iter().copied().collect())
    }

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::new();
        for s in [5, 64, 1, 200, 64] {
            b.insert(s);
        }
        assert_eq!(b.len(), 4);
        assert!(b.contains(64));
        assert!(!b.contains(63));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 5, 64, 200]);
        assert!(b.heap_bytes() >= 4 * 8);
    }

    #[test]
    fn list_intersection() {
        let a = list(&[1, 3, 5, 7, 200]);
        let b = list(&[3, 4, 5, 200, 300]);
        assert_eq!(a.intersect(&b).to_vec(), vec![3, 5, 200]);
        assert_eq!(b.intersect(&a).to_vec(), vec![3, 5, 200]);
        assert!(a.intersect(&SidSet::empty_list()).is_empty());
    }

    #[test]
    fn list_union() {
        let a = list(&[1, 5]);
        let b = list(&[2, 5, 9]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 5, 9]);
    }

    #[test]
    fn bitmap_set_algebra_matches_lists() {
        let xs = [1u32, 3, 64, 65, 128, 500];
        let ys = [3u32, 64, 400, 500];
        let (la, lb) = (list(&xs), list(&ys));
        let (ba, bb) = (bitmap(&xs), bitmap(&ys));
        assert_eq!(la.intersect(&lb).to_vec(), ba.intersect(&bb).to_vec());
        assert_eq!(la.union(&lb).to_vec(), ba.union(&bb).to_vec());
    }

    #[test]
    fn mixed_encodings() {
        let a = list(&[1, 2, 3, 100]);
        let b = bitmap(&[2, 100, 101]);
        assert_eq!(a.intersect(&b).to_vec(), vec![2, 100]);
        assert_eq!(b.intersect(&a).to_vec(), vec![2, 100]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 100, 101]);
        assert_eq!(b.union(&a).to_vec(), vec![1, 2, 3, 100, 101]);
    }

    #[test]
    fn push_dedupes_in_order() {
        let mut s = SidSet::empty_list();
        for sid in [1, 1, 2, 2, 2, 9] {
            s.push(sid);
        }
        assert_eq!(s.to_vec(), vec![1, 2, 9]);
        let mut b = SidSet::empty_bitmap();
        for sid in [9, 1, 1] {
            b.push(sid);
        }
        assert_eq!(b.to_vec(), vec![1, 9]);
    }

    fn compressed(v: &[Sid]) -> SidSet {
        SidSet::Compressed(CompressedSidSet::from_sorted(v.to_vec()))
    }

    #[test]
    fn compressed_set_algebra_matches_lists() {
        let xs: Vec<Sid> = (0..500).map(|i| i * 3).collect();
        let ys: Vec<Sid> = (0..300).map(|i| i * 5 + 1).collect();
        let (la, lb) = (list(&xs), list(&ys));
        let want_int = la.intersect(&lb).to_vec();
        let want_uni = la.union(&lb).to_vec();
        for a in [list(&xs), bitmap(&xs), compressed(&xs)] {
            for b in [list(&ys), bitmap(&ys), compressed(&ys)] {
                if matches!(a, SidSet::Compressed(_)) || matches!(b, SidSet::Compressed(_)) {
                    assert_eq!(a.intersect(&b).to_vec(), want_int);
                    assert_eq!(a.union(&b).to_vec(), want_uni);
                }
            }
        }
        // The result keeps self's encoding.
        assert!(matches!(
            compressed(&xs).intersect(&lb),
            SidSet::Compressed(_)
        ));
        assert!(matches!(la.intersect(&compressed(&ys)), SidSet::List(_)));
    }

    /// Regression for the promotion boundary: push-time promotion, bulk
    /// `from_sorted_auto`, and `sealed(Auto)` must settle on the same
    /// encoding (and bytes) at, below, and above the density threshold —
    /// push-built bitmaps used to keep whatever encoding mid-build
    /// bookkeeping left them with.
    #[test]
    fn promotion_boundary_is_consistent() {
        use crate::inverted::SetBackend;
        // Dense (max < len*8 ⇒ bitmap), sparse-compressed, and tiny sets,
        // straddling the COMPRESS_MIN_LEN = 16 cardinality gate.
        let cases: Vec<Vec<Sid>> = vec![
            (0..15).collect(),                    // just below the gate → List
            (0..16).collect(),                    // at the gate, dense → Bitmap
            (0..16).map(|i| i * 9).collect(),     // at the gate, max ≥ len*8 → Compressed
            (0..16).map(|i| i * 7).collect(),     // just inside density → Bitmap
            (0..100).map(|i| i * 1000).collect(), // sparse → Compressed
        ];
        for v in cases {
            let bulk = SidSet::from_sorted_auto(v.clone());
            let mut pushed = SidSet::empty_list();
            for &s in &v {
                pushed.push_promoting(s);
            }
            let sealed = pushed.sealed(SetBackend::Auto);
            assert_eq!(
                sealed, bulk,
                "push-promote ∘ seal ≠ from_sorted_auto for {v:?}"
            );
            let expect = choose_encoding(v.len(), v.last().copied().unwrap_or(0));
            let got = match &sealed {
                SidSet::List(_) => Encoding::List,
                SidSet::Bitmap(_) => Encoding::Bitmap,
                SidSet::Compressed(_) => Encoding::Compressed,
            };
            assert_eq!(got, expect, "sealed encoding for {v:?}");
            // Bitmap-staged pushes (the old inconsistent path) also seal
            // to the same canonical form.
            let mut via_bitmap = SidSet::empty_bitmap();
            for &s in &v {
                via_bitmap.push(s);
            }
            assert_eq!(via_bitmap.sealed(SetBackend::Auto), bulk);
        }
    }

    #[test]
    fn sealed_flushes_compressed_tail() {
        use crate::inverted::SetBackend;
        let mut c = SidSet::empty_compressed();
        for s in 0..200u32 {
            c.push(s * 9);
        }
        let SidSet::Compressed(inner) = &c else {
            unreachable!()
        };
        assert!(!inner.is_sealed(), "200 % 128 sids must be staged");
        let sealed = c.sealed(SetBackend::Compressed);
        let SidSet::Compressed(inner) = &sealed else {
            panic!("seal must keep the compressed encoding")
        };
        assert!(inner.is_sealed());
        assert_eq!(
            sealed,
            SidSet::Compressed(CompressedSidSet::from_sorted(
                (0..200u32).map(|s| s * 9).collect()
            ))
        );
    }

    #[test]
    fn contains_and_len() {
        let s = list(&[2, 4, 6]);
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert_eq!(s.len(), 3);
        let b = bitmap(&[2, 4, 6]);
        assert!(b.contains(6));
        assert_eq!(b.len(), 3);
    }
}
