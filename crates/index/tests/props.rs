//! Property tests for the index crate: sid-set algebra against a BTreeSet
//! model, and the join+filter ladder against directly built indices.

use std::collections::BTreeSet;

use proptest::prelude::*;

use solap_eventdb::{ColumnType, EventDb, EventDbBuilder, Sequence, Value};
use solap_index::{
    build_index, join::join, join::rollup_merge, Bitmap, CompressedSidSet, SetBackend, SidSet,
};
use solap_pattern::{MatchPred, Matcher, PatternKind, PatternTemplate};

fn sorted(v: &mut Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v.clone()
}

proptest! {
    /// SidSet union/intersection agree with BTreeSet for every encoding mix.
    #[test]
    fn set_algebra_matches_model(
        mut a in prop::collection::vec(0u32..300, 0..40),
        mut b in prop::collection::vec(0u32..300, 0..40),
        enc in 0u8..9,
    ) {
        let (av, bv) = (sorted(&mut a), sorted(&mut b));
        let model_i: Vec<u32> = {
            let (sa, sb): (BTreeSet<_>, BTreeSet<_>) =
                (av.iter().copied().collect(), bv.iter().copied().collect());
            sa.intersection(&sb).copied().collect()
        };
        let model_u: Vec<u32> = {
            let (sa, sb): (BTreeSet<_>, BTreeSet<_>) =
                (av.iter().copied().collect(), bv.iter().copied().collect());
            sa.union(&sb).copied().collect()
        };
        let make = |v: &[u32], e: u8| -> SidSet {
            match e {
                0 => SidSet::from_sorted(v.to_vec()),
                1 => SidSet::Bitmap(v.iter().copied().collect::<Bitmap>()),
                _ => SidSet::Compressed(CompressedSidSet::from_sorted(v.to_vec())),
            }
        };
        let sa = make(&av, enc % 3);
        let sb = make(&bv, (enc / 3) % 3);
        prop_assert_eq!(sa.intersect(&sb).to_vec(), model_i);
        prop_assert_eq!(sa.union(&sb).to_vec(), model_u);
        // Membership agrees too.
        for probe in [0u32, 1, 150, 299] {
            prop_assert_eq!(sa.contains(probe), av.binary_search(&probe).is_ok());
        }
    }
}

fn build_db(seqs: &[Vec<u8>]) -> (EventDb, Vec<Sequence>) {
    let mut db = EventDbBuilder::new()
        .dimension("item", ColumnType::Str)
        .build()
        .unwrap();
    let mut out = Vec::new();
    let mut row = 0u32;
    for (sid, seq) in seqs.iter().enumerate() {
        let mut rows = Vec::new();
        for &sym in seq {
            db.push_row(&[Value::Str(format!("s{}", sym % 5))]).unwrap();
            rows.push(row);
            row += 1;
        }
        out.push(Sequence {
            sid: sid as u32,
            cluster_key: vec![],
            rows,
        });
    }
    (db, out)
}

fn template(shape: &[usize]) -> PatternTemplate {
    let names = ["A", "B", "C"];
    let syms: Vec<&str> = shape.iter().map(|&d| names[d % 3]).collect();
    let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
    for &s in &syms {
        if !bindings.iter().any(|(n, _, _)| *n == s) {
            bindings.push((s, 0, 0));
        }
    }
    PatternTemplate::new(PatternKind::Substring, &syms, &bindings).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Joining L_{m-1} with L_2 and verifying against the data equals the
    /// directly built L_m — the Figure 15 ladder is lossless.
    #[test]
    fn join_plus_verify_equals_direct(
        seqs in prop::collection::vec(prop::collection::vec(0u8..5, 0..9), 1..8),
        shape in prop::collection::vec(0usize..3, 3..5),
    ) {
        let (db, sequences) = build_db(&seqs);
        let full = template(&shape);
        let m = shape.len();
        // Left: the prefix template of length m-1; right: the trailing pair.
        let prefix = template(&shape[..m - 1]);
        let pair = template(&shape[m - 2..]);
        let (l_prefix, _) = build_index(&db, &sequences, &prefix, SetBackend::List).unwrap();
        let (l_pair, _) = build_index(&db, &sequences, &pair, SetBackend::List).unwrap();
        let candidate = join(&l_prefix, &l_pair, full.signature(), |c| full.is_instantiation(c));
        // Verify candidates against the data.
        let trivial = MatchPred::True;
        let matcher = Matcher::new(&db, &full, &trivial);
        let mut verified: Vec<(Vec<u64>, Vec<u32>)> = Vec::new();
        for (pattern, sids) in &candidate.lists {
            let kept: Vec<u32> = sids
                .iter()
                .filter(|&s| matcher.contains_pattern(&sequences[s as usize], pattern).unwrap())
                .collect();
            if !kept.is_empty() {
                verified.push((pattern.clone(), kept));
            }
        }
        verified.sort();
        let (direct, _) = build_index(&db, &sequences, &full, SetBackend::List).unwrap();
        let mut expected: Vec<(Vec<u64>, Vec<u32>)> = direct
            .lists
            .iter()
            .map(|(k, v)| (k.clone(), v.to_vec()))
            .collect();
        expected.sort();
        prop_assert_eq!(verified, expected);
    }

    /// Rolling an index up by a value mapping equals building the index at
    /// the coarse level directly — when all symbols are distinct.
    #[test]
    fn rollup_merge_equals_coarse_build(
        seqs in prop::collection::vec(prop::collection::vec(0u8..5, 0..9), 1..8),
    ) {
        let (mut db, sequences) = build_db(&seqs);
        db.set_base_level_name(0, "item");
        db.attach_str_level(0, "parity", |n| {
            let v: u32 = n[1..].parse().unwrap();
            format!("p{}", v % 2)
        })
        .unwrap();
        // Distinct-symbol template (A, B) at both levels.
        let fine = PatternTemplate::new(
            PatternKind::Substring,
            &["A", "B"],
            &[("A", 0, 0), ("B", 0, 0)],
        )
        .unwrap();
        let coarse = PatternTemplate::new(
            PatternKind::Substring,
            &["A", "B"],
            &[("A", 0, 1), ("B", 0, 1)],
        )
        .unwrap();
        let (l_fine, _) = build_index(&db, &sequences, &fine, SetBackend::List).unwrap();
        let merged = rollup_merge(&l_fine, coarse.signature(), |_pos, v| {
            db.map_up(0, 0, v, 1)
        })
        .unwrap();
        let (l_coarse, _) = build_index(&db, &sequences, &coarse, SetBackend::List).unwrap();
        let norm = |ix: &solap_index::InvertedIndex| -> Vec<(Vec<u64>, Vec<u32>)> {
            let mut v: Vec<_> = ix.lists.iter().map(|(k, s)| (k.clone(), s.to_vec())).collect();
            v.sort();
            v
        };
        prop_assert_eq!(norm(&merged), norm(&l_coarse));
    }

    /// Build is encoding-independent.
    #[test]
    fn backends_build_identical_indices(
        seqs in prop::collection::vec(prop::collection::vec(0u8..5, 0..9), 1..8),
        shape in prop::collection::vec(0usize..3, 1..4),
    ) {
        let (db, sequences) = build_db(&seqs);
        let t = template(&shape);
        let (list, s1) = build_index(&db, &sequences, &t, SetBackend::List).unwrap();
        for backend in [SetBackend::Bitmap, SetBackend::Compressed, SetBackend::Auto] {
            let (other, s2) = build_index(&db, &sequences, &t, backend).unwrap();
            prop_assert_eq!(s1, s2);
            prop_assert_eq!(list.list_count(), other.list_count());
            for (k, v) in &list.lists {
                prop_assert_eq!(v.to_vec(), other.lists[k].to_vec());
            }
        }
    }
}
