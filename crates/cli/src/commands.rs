//! Command-line argument parsing for the REPL: `k=v` option lists and the
//! `.op` sub-language that maps onto [`solap_core::Op`].

use std::collections::HashMap;

use solap_core::{Op, SCuboidSpec};
use solap_eventdb::EventDb;

/// A user-facing CLI error (printed, never fatal).
#[derive(Debug)]
pub struct CliError(pub String);

/// Parses `key=value` arguments.
pub fn parse_kv(args: &[&str]) -> Result<HashMap<String, String>, CliError> {
    let mut out = HashMap::new();
    for a in args {
        let (k, v) = a
            .split_once('=')
            .ok_or_else(|| CliError(format!("expected key=value, got `{a}`")))?;
        if k.is_empty() || v.is_empty() {
            return Err(CliError(format!("expected key=value, got `{a}`")));
        }
        out.insert(k.to_owned(), v.to_owned());
    }
    Ok(out)
}

/// Parses a `.op …` invocation into an [`Op`], resolving attribute and
/// level names (and slice values) against the schema and the current spec.
pub fn parse_op(
    db: &EventDb,
    args: &[&str],
    current: Option<&SCuboidSpec>,
) -> Result<Op, CliError> {
    let usage = || {
        CliError("usage: .op append|prepend|detail|dehead|prollup|pdrilldown|rollup|drilldown|slice-pattern|slice-group|minsup …".into())
    };
    let op = args.first().copied().ok_or_else(usage)?;
    let arg = |i: usize| -> Result<&str, CliError> {
        args.get(i)
            .copied()
            .ok_or_else(|| CliError(format!("`.op {op}` needs more arguments")))
    };
    let attr_level = |attr_name: &str, level_name: &str| -> Result<(u32, usize), CliError> {
        let attr = db.attr(attr_name).map_err(|e| CliError(e.to_string()))?;
        let level = db
            .level_by_name(attr, level_name)
            .map_err(|e| CliError(e.to_string()))?;
        Ok((attr, level))
    };
    match op {
        "append" | "prepend" => {
            let symbol = arg(1)?.to_owned();
            // If the symbol exists in the current template, reuse its
            // binding; otherwise ATTR and LEVEL are required.
            let existing = current.and_then(|s| {
                s.template
                    .dims
                    .iter()
                    .find(|d| d.name == symbol)
                    .map(|d| (d.attr, d.level))
            });
            let (attr, level) = match (existing, args.len()) {
                (Some(b), 2) => b,
                _ => attr_level(arg(2)?, arg(3)?)?,
            };
            Ok(if op == "append" {
                Op::Append {
                    symbol,
                    attr,
                    level,
                }
            } else {
                Op::Prepend {
                    symbol,
                    attr,
                    level,
                }
            })
        }
        "detail" => Ok(Op::DeTail),
        "dehead" => Ok(Op::DeHead),
        "prollup" => Ok(Op::PRollUp {
            dim: arg(1)?.to_owned(),
        }),
        "pdrilldown" => Ok(Op::PDrillDown {
            dim: arg(1)?.to_owned(),
        }),
        "rollup" => {
            let attr = db.attr(arg(1)?).map_err(|e| CliError(e.to_string()))?;
            Ok(Op::RollUp { attr })
        }
        "drilldown" => {
            let attr = db.attr(arg(1)?).map_err(|e| CliError(e.to_string()))?;
            Ok(Op::DrillDown { attr })
        }
        "slice-pattern" => {
            let dim_name = arg(1)?.to_owned();
            let spec = current.ok_or_else(|| CliError("no current query".into()))?;
            let dim = spec
                .template
                .dims
                .iter()
                .find(|d| d.name == dim_name)
                .ok_or_else(|| CliError(format!("no pattern dimension `{dim_name}`")))?;
            let value = db
                .parse_level_value(dim.attr, dim.level, arg(2)?)
                .map_err(|e| CliError(e.to_string()))?;
            Ok(Op::SlicePattern {
                dim: dim_name,
                value,
            })
        }
        "slice-group" => {
            let idx: usize = arg(1)?
                .parse()
                .map_err(|_| CliError("slice-group needs a dimension index".into()))?;
            let spec = current.ok_or_else(|| CliError("no current query".into()))?;
            let al = spec
                .seq
                .group_by
                .get(idx)
                .ok_or_else(|| CliError(format!("no global dimension #{idx}")))?;
            let value = db
                .parse_level_value(al.attr, al.level, arg(2)?)
                .map_err(|e| CliError(e.to_string()))?;
            Ok(Op::SliceGlobal { dim: idx, value })
        }
        "minsup" => {
            let v = arg(1)?;
            if v == "off" {
                Ok(Op::SetMinSupport(None))
            } else {
                let n: u64 = v
                    .parse()
                    .map_err(|_| CliError("minsup needs a number or `off`".into()))?;
                Ok(Op::SetMinSupport(Some(n)))
            }
        }
        _ => Err(usage()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{ColumnType, EventDbBuilder, Value};

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .build()
            .unwrap();
        db.push_row(&[Value::Int(0), Value::from("Pentagon")])
            .unwrap();
        db.set_base_level_name(1, "station");
        db
    }

    #[test]
    fn kv_parsing() {
        let kv = parse_kv(&["a=1", "b=x"]).unwrap();
        assert_eq!(kv["a"], "1");
        assert_eq!(kv["b"], "x");
        assert!(parse_kv(&["oops"]).is_err());
        assert!(parse_kv(&["=v"]).is_err());
        assert!(parse_kv(&[]).unwrap().is_empty());
    }

    #[test]
    fn op_parsing() {
        let db = db();
        assert!(matches!(
            parse_op(&db, &["append", "Z", "location", "station"], None).unwrap(),
            Op::Append { .. }
        ));
        assert!(matches!(
            parse_op(&db, &["detail"], None).unwrap(),
            Op::DeTail
        ));
        assert!(matches!(
            parse_op(&db, &["dehead"], None).unwrap(),
            Op::DeHead
        ));
        assert!(matches!(
            parse_op(&db, &["prollup", "X"], None).unwrap(),
            Op::PRollUp { .. }
        ));
        assert!(matches!(
            parse_op(&db, &["rollup", "location"], None).unwrap(),
            Op::RollUp { .. }
        ));
        assert!(matches!(
            parse_op(&db, &["minsup", "5"], None).unwrap(),
            Op::SetMinSupport(Some(5))
        ));
        assert!(matches!(
            parse_op(&db, &["minsup", "off"], None).unwrap(),
            Op::SetMinSupport(None)
        ));
        assert!(
            parse_op(&db, &["append", "Z"], None).is_err(),
            "new symbol needs a binding"
        );
        assert!(parse_op(&db, &["warp"], None).is_err());
        assert!(parse_op(&db, &[], None).is_err());
        assert!(parse_op(&db, &["rollup", "bogus"], None).is_err());
    }
}
