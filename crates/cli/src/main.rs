//! `solap` — an interactive S-OLAP REPL.
//!
//! The user-interface layer of the prototype architecture (Figure 6):
//! generate or load data, pose S-cuboid queries in the Figure-3 language,
//! and navigate with the six S-OLAP operations.
//!
//! ```text
//! $ cargo run -p solap-cli
//! solap> .gen transit passengers=500 days=7
//! solap> SELECT COUNT(*) FROM Event
//!    ...> CLUSTER BY card-id AT individual, time AT day
//!    ...> SEQUENCE BY time ASCENDING
//!    ...> CUBOID BY SUBSTRING (X, Y)
//!    ...>   WITH X AS location AT station, Y AS location AT station
//!    ...>   LEFT-MAXIMALITY (x1, y1)
//!    ...>   WITH x1.action = "in" AND y1.action = "out";
//! solap> .op append Z location station
//! solap> .op prollup Z
//! solap> .show 20
//! ```
//!
//! Every statement runs through the shared dispatch layer in
//! `solap-server` — the same code path the wire protocol executes — so
//! the REPL, `--eval` scripts and server sessions behave identically.
//! Engine lifecycle (`.gen`, `.save`, `.load`) is the only CLI-local
//! surface: those commands replace or persist the engine itself.
//!
//! Modes:
//!
//! * `solap --eval 'SCRIPT'` runs a newline-separated script through the
//!   same loop; errors are printed (never abort the run) and the process
//!   exits nonzero if any line failed.
//! * `solap --connect HOST:PORT` attaches the REPL (or `--eval`) to a
//!   running `solap-serve` instance instead of an in-process engine.
//! * `--json` prints each statement's structured response as one JSON
//!   line (`{"ok":…,"code":…,…}`) with stable machine-readable error
//!   codes, for scripting.

#![forbid(unsafe_code)]

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use solap_core::Engine;
use solap_server::client::Client;
use solap_server::command::{generate, help_text, parse_kv};
use solap_server::dispatch::{dispatch, Response, SessionCtx};

/// Where statements execute: an in-process engine (local sessions, the
/// default) or a `solap-serve` instance over the wire.
enum Backend {
    Local(Box<Option<SessionCtx>>),
    Remote(Client),
}

struct Repl {
    backend: Backend,
    /// Print structured JSON lines instead of rendered text.
    json: bool,
    /// Statements that reported an error (drives the `--eval` exit code).
    errors: usize,
}

impl Repl {
    fn local() -> Self {
        Repl {
            backend: Backend::Local(Box::new(None)),
            json: false,
            errors: 0,
        }
    }

    fn remote(client: Client) -> Self {
        Repl {
            backend: Backend::Remote(client),
            json: false,
            errors: 0,
        }
    }

    /// Executes one statement and prints its response. Returns `false`
    /// when the surface should close (`.quit`). `Err` is transport-level
    /// only (a lost server connection), never a statement failure.
    fn handle(&mut self, line: &str, out: &mut impl Write) -> io::Result<bool> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(true);
        }
        let (raw, response) = match &mut self.backend {
            Backend::Remote(client) => {
                let (raw, wire) = client.request_raw(line)?;
                let response = Response {
                    ok: wire.ok,
                    code: wire.code,
                    body: wire.body,
                    profile_json: wire.profile.map(|p| p.render()),
                    plan_json: wire.plan.map(|p| p.render()),
                    quit: wire.quit,
                };
                (Some(raw), response)
            }
            Backend::Local(slot) => (None, eval_local(slot, line)),
        };
        if !response.ok {
            self.errors += 1;
        }
        if self.json {
            // Relay the server's line verbatim when there is one, so the
            // output is exactly what the wire carries.
            writeln!(out, "{}", raw.unwrap_or_else(|| response.to_wire()))?;
        } else if response.ok {
            write!(out, "{}", response.body)?;
        } else {
            writeln!(out, "error: {}", response.body)?;
        }
        Ok(!response.quit)
    }
}

/// Runs a statement against the in-process engine, intercepting the
/// engine-lifecycle commands that the shared dispatch layer deliberately
/// rejects (they replace or persist the engine itself).
fn eval_local(slot: &mut Option<SessionCtx>, line: &str) -> Response {
    if let Some(rest) = line.strip_prefix('.') {
        let mut parts = rest.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match cmd {
            "gen" => return gen_cmd(slot, &args),
            "load" => return load_cmd(slot, &args),
            "save" => return save_cmd(slot, &args),
            // Help and quit must work before any dataset exists.
            "help" if slot.is_none() => return Response::ok(help_text()),
            "quit" | "exit" if slot.is_none() => {
                let mut r = Response::ok("");
                r.quit = true;
                return r;
            }
            _ => {}
        }
    }
    match slot {
        Some(ctx) => dispatch(ctx, line),
        None => Response::err("usage", "no dataset loaded — try `.gen transit`"),
    }
}

/// Installs a fresh engine in the REPL, carrying surface state (the
/// `.profile` toggle) over from the session it replaces.
fn install(slot: &mut Option<SessionCtx>, db: solap_eventdb::EventDb) {
    let show_profile = slot.as_ref().is_some_and(|c| c.show_profile);
    let mut ctx = SessionCtx::new(Arc::new(Engine::builder(db).build()));
    ctx.show_profile = show_profile;
    *slot = Some(ctx);
}

fn gen_cmd(slot: &mut Option<SessionCtx>, args: &[&str]) -> Response {
    let Some(kind) = args.first() else {
        return Response::err("usage", "usage: .gen transit|clickstream|synthetic [k=v …]");
    };
    match parse_kv(&args[1..]).and_then(|kv| generate(kind, &kv)) {
        Ok(db) => {
            let n = db.len();
            install(slot, db);
            Response::ok(format!("generated {n} events\n"))
        }
        Err(e) => Response::err(e.code(), e.message()),
    }
}

fn load_cmd(slot: &mut Option<SessionCtx>, args: &[&str]) -> Response {
    let Some(path) = args.first() else {
        return Response::err("usage", "usage: .load PATH");
    };
    match solap_eventdb::persist::load_from_path(path) {
        Ok(db) => {
            let n = db.len();
            install(slot, db);
            Response::ok(format!("loaded {n} events from {path}\n"))
        }
        Err(e) => Response::err(e.code(), e.to_string()),
    }
}

fn save_cmd(slot: &mut Option<SessionCtx>, args: &[&str]) -> Response {
    let Some(path) = args.first() else {
        return Response::err("usage", "usage: .save PATH");
    };
    let Some(ctx) = slot else {
        return Response::err("usage", "no dataset loaded — try `.gen transit`");
    };
    let db = ctx.session().engine().db();
    match solap_eventdb::persist::save_to_path(&db, path) {
        Ok(()) => Response::ok(format!("saved {} events to {path}\n", db.len())),
        Err(e) => Response::err(e.code(), e.to_string()),
    }
}

/// Feeds a multi-line script through the REPL, honouring the same
/// dot-command / `;`-terminated-query structure as interactive input. A
/// trailing query without `;` still runs. Returns `Ok(false)` if the
/// script quit early.
fn run_script(repl: &mut Repl, script: &str, out: &mut impl Write) -> io::Result<bool> {
    let mut buffer = String::new();
    for line in script.lines() {
        let trimmed = line.trim();
        if buffer.is_empty() && (trimmed.starts_with('.') || trimmed.is_empty()) {
            if !repl.handle(trimmed, out)? {
                return Ok(false);
            }
            continue;
        }
        buffer.push_str(line);
        buffer.push('\n');
        if trimmed.ends_with(';') {
            let text = std::mem::take(&mut buffer);
            if !repl.handle(&text, out)? {
                return Ok(false);
            }
        }
    }
    if !buffer.trim().is_empty() {
        repl.handle(&buffer, out)?;
    }
    Ok(true)
}

fn main() -> io::Result<()> {
    // Arm SOLAP_FAILPOINTS at process entry: a `--connect` REPL never
    // constructs a local `Engine`, so the builder seeding never runs.
    solap_eventdb::failpoint::init();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let flag_value = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let mut repl = match flag_value("--connect") {
        Some(addr) => match Client::connect(addr.as_str()) {
            Ok(client) => Repl::remote(client),
            Err(e) => {
                eprintln!("cannot connect to {addr}: {e}");
                std::process::exit(1);
            }
        },
        None => Repl::local(),
    };
    repl.json = json;

    if args.iter().any(|a| a == "--eval") {
        // Non-interactive mode: run the script, print errors instead of
        // aborting, and exit nonzero if anything failed.
        let Some(script) = flag_value("--eval") else {
            eprintln!("usage: solap [--connect HOST:PORT] [--json] --eval 'SCRIPT'");
            std::process::exit(2);
        };
        let mut stdout = io::stdout();
        run_script(&mut repl, script, &mut stdout)?;
        stdout.flush()?;
        if repl.errors > 0 {
            std::process::exit(1);
        }
        return Ok(());
    }

    let stdin = io::stdin();
    let mut stdout = io::stdout();
    if !json {
        writeln!(
            stdout,
            "S-OLAP — OLAP on sequence data (SIGMOD 2008 reproduction). Type `.help`."
        )?;
    }
    let mut buffer = String::new();
    loop {
        if !json {
            let prompt = if buffer.is_empty() {
                "solap> "
            } else {
                "   ...> "
            };
            write!(stdout, "{prompt}")?;
            stdout.flush()?;
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if buffer.is_empty() && (trimmed.starts_with('.') || trimmed.is_empty()) {
            if !repl.handle(trimmed, &mut stdout)? {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let text = std::mem::take(&mut buffer);
            if !repl.handle(&text, &mut stdout)? {
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Repl {
        let mut repl = Repl::local();
        let mut out = Vec::new();
        repl.handle(".gen transit passengers=60 days=3", &mut out)
            .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("generated"));
        repl
    }

    fn ctx(repl: &Repl) -> &SessionCtx {
        match &repl.backend {
            Backend::Local(slot) => slot.as_ref().as_ref().expect("no local session"),
            _ => panic!("no local session"),
        }
    }

    const QUERY: &str = r#"SELECT COUNT(*) FROM Event
        CLUSTER BY card-id AT individual, time AT day
        SEQUENCE BY time ASCENDING
        CUBOID BY SUBSTRING (X, Y)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1)
          WITH x1.action = "in" AND y1.action = "out";"#;

    #[test]
    fn gen_query_and_ops_flow() {
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("cells via"), "{text}");
        let mut out = Vec::new();
        repl.handle(".op append Z location station", &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("APPEND"), "{text}");
        let mut out = Vec::new();
        repl.handle(".op detail", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("DE-TAIL"));
        let mut out = Vec::new();
        repl.handle(".history", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("APPEND") && text.contains("DE-TAIL"));
        let mut out = Vec::new();
        repl.handle(".back", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("back to:"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut repl = Repl::local();
        let mut out = Vec::new();
        assert!(repl.handle(".show", &mut out).unwrap());
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("error: no dataset"));
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle("SELECT BOGUS;", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("error:"));
        let mut out = Vec::new();
        repl.handle(".op prollup Q", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("error:"));
        assert_eq!(repl.errors, 2);
    }

    #[test]
    fn config_commands_are_session_scoped() {
        let mut repl = setup();
        for cmd in [
            ".strategy cb",
            ".strategy ii",
            ".backend bitmap",
            ".counters dense",
        ] {
            let mut out = Vec::new();
            repl.handle(cmd, &mut out).unwrap();
            assert!(out.is_empty(), "{cmd}: {}", String::from_utf8_lossy(&out));
        }
        let mut out = Vec::new();
        repl.handle(".threads 4", &mut out).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("worker threads: 4"));
        assert_eq!(ctx(&repl).session().config().threads, 4);
        // The engine's own defaults are untouched: the override lives on
        // the session, exactly as it would server-side.
        assert_ne!(
            ctx(&repl).session().engine().config().threads,
            0,
            "engine config remains valid"
        );
        let mut out = Vec::new();
        repl.handle(".strategy warp", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("error"));
    }

    #[test]
    fn timeout_and_budget_commands() {
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle(".timeout 5000", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("5000 ms"));
        assert_eq!(
            ctx(&repl).session().config().timeout,
            Some(std::time::Duration::from_millis(5000))
        );
        let mut out = Vec::new();
        repl.handle(".budget 100", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("100 cells"));
        assert_eq!(ctx(&repl).session().config().budget_cells, Some(100));
        let mut out = Vec::new();
        repl.handle(".timeout 0", &mut out).unwrap();
        assert_eq!(ctx(&repl).session().config().timeout, None);
        let mut out = Vec::new();
        repl.handle(".budget 0", &mut out).unwrap();
        assert_eq!(ctx(&repl).session().config().budget_cells, None);
    }

    #[test]
    fn over_budget_query_reports_error_and_recovers() {
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle(".budget 1", &mut out).unwrap();
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("error:") && text.contains("cells"), "{text}");
        let mut out = Vec::new();
        repl.handle(".budget 0", &mut out).unwrap();
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("cells via"));
    }

    #[test]
    fn save_and_load_roundtrip() {
        let mut repl = setup();
        let path = std::env::temp_dir().join(format!("solap-cli-{}.db", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        let mut out = Vec::new();
        repl.handle(&format!(".save {path_s}"), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("saved"));
        let mut out = Vec::new();
        repl.handle(&format!(".load {path_s}"), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("loaded"));
        std::fs::remove_file(&path).ok();
        // The loaded engine answers queries.
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("cells via"));
    }

    #[test]
    fn help_and_quit_work_without_a_dataset() {
        let mut repl = Repl::local();
        let mut out = Vec::new();
        assert!(repl.handle(".help", &mut out).unwrap());
        assert!(String::from_utf8(out).unwrap().contains("commands:"));
        let mut out = Vec::new();
        assert!(!repl.handle(".quit", &mut out).unwrap());
    }

    #[test]
    fn json_mode_emits_wire_lines_with_codes() {
        let mut repl = setup();
        repl.json = true;
        let mut out = Vec::new();
        repl.handle("SELECT BOGUS;", &mut out).unwrap();
        let line = String::from_utf8(out).unwrap();
        let v = solap_server::json::Json::parse(line.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("code").unwrap().as_str(), Some("parse"));
        assert_eq!(repl.errors, 1);
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        let line = String::from_utf8(out).unwrap();
        let v = solap_server::json::Json::parse(line.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert!(v
            .get("body")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("cells via"));
    }

    #[test]
    fn eval_scripts_report_errors_without_aborting() {
        // A clean script leaves the error counter at zero.
        let mut repl = Repl::local();
        let mut out = Vec::new();
        let script = format!(".gen transit passengers=60 days=3\n{QUERY}\n.show 5");
        assert!(run_script(&mut repl, &script, &mut out).unwrap());
        assert_eq!(repl.errors, 0, "{}", String::from_utf8_lossy(&out));
        // Malformed lines are reported, later lines still run, and the
        // counter drives a nonzero exit.
        let mut repl = Repl::local();
        let mut out = Vec::new();
        let script = ".gen transit passengers=60 days=3\nSELECT BOGUS;\n.schema";
        assert!(run_script(&mut repl, script, &mut out).unwrap());
        let text = String::from_utf8(out).unwrap();
        assert_eq!(repl.errors, 1, "{text}");
        assert!(
            text.contains("error:") && text.contains("location"),
            "{text}"
        );
        // `.quit` stops the script early.
        let mut repl = Repl::local();
        let mut out = Vec::new();
        assert!(!run_script(&mut repl, ".quit\n.schema", &mut out).unwrap());
    }

    #[test]
    fn remote_backend_round_trips_through_a_server() {
        use solap_server::server::{Server, ServerConfig};
        let db = generate(
            "transit",
            &std::collections::HashMap::from([
                ("passengers".to_owned(), "60".to_owned()),
                ("days".to_owned(), "3".to_owned()),
            ]),
        )
        .unwrap();
        let engine = Arc::new(Engine::builder(db).build());
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServerConfig::default()
        };
        let (handle, join) = Server::spawn(engine, config).unwrap();
        let client = Client::connect(handle.local_addr()).unwrap();
        let mut repl = Repl::remote(client);

        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("cells via"));
        let mut out = Vec::new();
        repl.handle(".op append Z location station", &mut out)
            .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("APPEND"));
        // Lifecycle commands are typed `unsupported` errors over the wire.
        let mut out = Vec::new();
        repl.handle(".gen transit", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("error:"));
        // `.quit` closes the session loop.
        let mut out = Vec::new();
        assert!(!repl.handle(".quit", &mut out).unwrap());

        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}
