//! `solap` — an interactive S-OLAP REPL.
//!
//! The user-interface layer of the prototype architecture (Figure 6):
//! generate or load data, pose S-cuboid queries in the Figure-3 language,
//! and navigate with the six S-OLAP operations.
//!
//! ```text
//! $ cargo run -p solap-cli
//! solap> .gen transit passengers=500 days=7
//! solap> SELECT COUNT(*) FROM Event
//!    ...> CLUSTER BY card-id AT individual, time AT day
//!    ...> SEQUENCE BY time ASCENDING
//!    ...> CUBOID BY SUBSTRING (X, Y)
//!    ...>   WITH X AS location AT station, Y AS location AT station
//!    ...>   LEFT-MAXIMALITY (x1, y1)
//!    ...>   WITH x1.action = "in" AND y1.action = "out";
//! solap> .op append Z location station
//! solap> .op prollup Z
//! solap> .show 20
//! ```
//!
//! Non-interactive use: `solap --eval 'SCRIPT'` runs a newline-separated
//! script through the same command loop; errors are printed (never abort
//! the run) and the process exits nonzero if any line failed.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::{self, BufRead, Write};

use solap_core::cb::CounterMode;
use solap_core::{Engine, Strategy};
use solap_datagen::{ClickstreamConfig, SyntheticConfig, TransitConfig};
use solap_eventdb::EventDb;
use solap_index::SetBackend;

mod commands;

use commands::{parse_kv, CliError};

struct Repl {
    engine: Option<Engine>,
    /// The current spec; re-set by every successful query or operation.
    current: Option<solap_core::SCuboidSpec>,
    history: Vec<String>,
    /// Commands and queries that reported an error (drives the `--eval`
    /// exit code).
    errors: usize,
    /// Whether every query prints its profile (`.profile on|off`).
    show_profile: bool,
}

impl Repl {
    fn new() -> Self {
        Repl {
            engine: None,
            current: None,
            history: Vec::new(),
            errors: 0,
            show_profile: false,
        }
    }

    fn engine(&self) -> Result<&Engine, CliError> {
        self.engine
            .as_ref()
            .ok_or_else(|| CliError("no dataset loaded — try `.gen transit`".into()))
    }

    fn handle(&mut self, line: &str, out: &mut impl Write) -> io::Result<bool> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(true);
        }
        let result = if let Some(rest) = line.strip_prefix('.') {
            self.command(rest, out)
        } else {
            self.query(line, out)
        };
        if let Err(CliError(msg)) = result {
            writeln!(out, "error: {msg}")?;
            self.errors += 1;
        }
        Ok(!matches!(line, ".quit" | ".exit"))
    }

    fn command(&mut self, rest: &str, out: &mut impl Write) -> Result<(), CliError> {
        let mut parts = rest.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match cmd {
            "help" => {
                write_help(out).map_err(io_err)?;
            }
            "quit" | "exit" => {}
            "gen" => {
                let kind = args.first().copied().ok_or_else(|| {
                    CliError("usage: .gen transit|clickstream|synthetic [k=v …]".into())
                })?;
                let kv = parse_kv(&args[1..])?;
                let db = generate(kind, &kv)?;
                writeln!(out, "generated {} events", db.len()).map_err(io_err)?;
                self.engine = Some(Engine::new(db));
                self.current = None;
            }
            "schema" => {
                let engine = self.engine()?;
                for (i, col) in engine.db().schema().columns().iter().enumerate() {
                    let levels: Vec<String> = (0..engine.db().level_count(i as u32))
                        .map(|l| engine.db().level_name(i as u32, l))
                        .collect();
                    writeln!(
                        out,
                        "  {:<14} {:<6} {:?}  levels: {}",
                        col.name,
                        col.ctype.name(),
                        col.role,
                        levels.join(" → ")
                    )
                    .map_err(io_err)?;
                }
            }
            "strategy" => {
                let engine = self
                    .engine
                    .as_mut()
                    .ok_or_else(|| CliError("no dataset loaded".into()))?;
                engine.config_mut().strategy = match args.first().copied() {
                    Some("cb") => Strategy::CounterBased,
                    Some("ii") => Strategy::InvertedIndex,
                    Some("auto") => Strategy::Auto,
                    other => {
                        return Err(CliError(format!(
                            "usage: .strategy cb|ii|auto (got {other:?})"
                        )))
                    }
                };
            }
            "backend" => {
                let engine = self
                    .engine
                    .as_mut()
                    .ok_or_else(|| CliError("no dataset loaded".into()))?;
                engine.config_mut().backend = match args.first().copied() {
                    Some("list") => SetBackend::List,
                    Some("bitmap") => SetBackend::Bitmap,
                    other => {
                        return Err(CliError(format!(
                            "usage: .backend list|bitmap (got {other:?})"
                        )))
                    }
                };
            }
            "counters" => {
                let engine = self
                    .engine
                    .as_mut()
                    .ok_or_else(|| CliError("no dataset loaded".into()))?;
                engine.config_mut().counter_mode = match args.first().copied() {
                    Some("hash") => CounterMode::Hash,
                    Some("dense") => CounterMode::Dense,
                    Some("auto") => CounterMode::Auto,
                    other => {
                        return Err(CliError(format!(
                            "usage: .counters hash|dense|auto (got {other:?})"
                        )))
                    }
                };
            }
            "threads" => {
                let engine = self
                    .engine
                    .as_mut()
                    .ok_or_else(|| CliError("no dataset loaded".into()))?;
                let n: usize = args
                    .first()
                    .ok_or_else(|| CliError("usage: .threads N".into()))?
                    .parse()
                    .map_err(|_| CliError("usage: .threads N (N ≥ 1)".into()))?;
                engine.config_mut().threads = n.max(1);
                writeln!(out, "worker threads: {}", engine.config().threads).map_err(io_err)?;
            }
            "timeout" => {
                let engine = self
                    .engine
                    .as_mut()
                    .ok_or_else(|| CliError("no dataset loaded".into()))?;
                let ms: u64 = args
                    .first()
                    .ok_or_else(|| CliError("usage: .timeout MS (0 = off)".into()))?
                    .parse()
                    .map_err(|_| CliError("usage: .timeout MS (0 = off)".into()))?;
                engine.config_mut().timeout =
                    (ms > 0).then(|| std::time::Duration::from_millis(ms));
                match ms {
                    0 => writeln!(out, "query timeout: off"),
                    _ => writeln!(out, "query timeout: {ms} ms"),
                }
                .map_err(io_err)?;
            }
            "budget" => {
                let engine = self
                    .engine
                    .as_mut()
                    .ok_or_else(|| CliError("no dataset loaded".into()))?;
                let cells: u64 = args
                    .first()
                    .ok_or_else(|| CliError("usage: .budget CELLS (0 = off)".into()))?
                    .parse()
                    .map_err(|_| CliError("usage: .budget CELLS (0 = off)".into()))?;
                engine.config_mut().budget_cells = (cells > 0).then_some(cells);
                match cells {
                    0 => writeln!(out, "cell budget: off"),
                    _ => writeln!(out, "cell budget: {cells} cells"),
                }
                .map_err(io_err)?;
            }
            "op" => {
                let prev = self
                    .current
                    .clone()
                    .ok_or_else(|| CliError("no current query — run one first".into()))?;
                let (op, spec, result, table) = {
                    let engine = self.engine()?;
                    let op = commands::parse_op(engine.db(), &args, Some(&prev))?;
                    let (spec, result) = engine.execute_op(&prev, &op).map_err(engine_err)?;
                    let table = result.cuboid.tabulate(engine.db(), 10, true);
                    (op, spec, result, table)
                };
                self.history
                    .push(format!("{} → {}", op.name(), spec.template.render_head()));
                writeln!(
                    out,
                    "{}: {} cells via {} in {:?} ({} sequences scanned)",
                    op.name(),
                    result.cuboid.len(),
                    result.stats.strategy,
                    result.stats.elapsed,
                    result.stats.sequences_scanned
                )
                .map_err(io_err)?;
                write!(out, "{table}").map_err(io_err)?;
                self.current = Some(spec);
            }
            "show" => {
                let n: usize = args
                    .first()
                    .map(|s| s.parse().map_err(|_| CliError("bad row count".into())))
                    .transpose()?
                    .unwrap_or(20);
                let engine = self.engine()?;
                let spec = self
                    .current
                    .as_ref()
                    .ok_or_else(|| CliError("no current query".into()))?;
                let result = engine.execute(spec).map_err(engine_err)?;
                write!(out, "{}", result.cuboid.tabulate(engine.db(), n, true)).map_err(io_err)?;
            }
            "spec" => {
                let engine = self.engine()?;
                let spec = self
                    .current
                    .as_ref()
                    .ok_or_else(|| CliError("no current query".into()))?;
                write!(out, "{}", spec.render(engine.db())).map_err(io_err)?;
            }
            "stats" => {
                let engine = self.engine()?;
                let (sh, sm) = engine.sequence_cache().stats();
                let (ih, im) = engine.index_store().stats();
                let (ch, cm) = engine.cuboid_repo().stats();
                writeln!(
                    out,
                    "sequence cache: {} entries, {sh} hits / {sm} misses\n\
                     index store:    {} indices, {:.1} KiB, {ih} hits / {im} misses\n\
                     cuboid repo:    {} cuboids, {:.1} KiB, {ch} hits / {cm} misses",
                    engine.sequence_cache().len(),
                    engine.index_store().len(),
                    engine.index_store().total_bytes() as f64 / 1024.0,
                    engine.cuboid_repo().len(),
                    engine.cuboid_repo().total_bytes() as f64 / 1024.0,
                )
                .map_err(io_err)?;
            }
            "save" => {
                let path = args
                    .first()
                    .ok_or_else(|| CliError("usage: .save PATH".into()))?;
                let engine = self.engine()?;
                solap_eventdb::persist::save_to_path(engine.db(), path).map_err(engine_err)?;
                writeln!(out, "saved {} events to {path}", engine.db().len()).map_err(io_err)?;
            }
            "load" => {
                let path = args
                    .first()
                    .ok_or_else(|| CliError("usage: .load PATH".into()))?;
                let db = solap_eventdb::persist::load_from_path(path).map_err(engine_err)?;
                writeln!(out, "loaded {} events from {path}", db.len()).map_err(io_err)?;
                self.engine = Some(Engine::new(db));
                self.current = None;
            }
            "history" => {
                for (i, h) in self.history.iter().enumerate() {
                    writeln!(out, "  {i:>3}. {h}").map_err(io_err)?;
                }
            }
            "profile" => {
                match args.first().copied() {
                    Some("on") => {
                        // Detailed counters are needed for the print-out to
                        // carry information, so turn them on too.
                        solap_eventdb::metrics::set_enabled(true);
                        self.show_profile = true;
                        writeln!(out, "per-query profile: on").map_err(io_err)?;
                    }
                    Some("off") => {
                        self.show_profile = false;
                        writeln!(out, "per-query profile: off").map_err(io_err)?;
                    }
                    other => {
                        return Err(CliError(format!("usage: .profile on|off (got {other:?})")))
                    }
                }
            }
            "metrics" => {
                write!(out, "{}", solap_eventdb::metrics::global().export_text())
                    .map_err(io_err)?;
            }
            other => {
                return Err(CliError(format!(
                    "unknown command `.{other}` — try `.help`"
                )))
            }
        }
        Ok(())
    }

    fn query(&mut self, text: &str, out: &mut impl Write) -> Result<(), CliError> {
        let text = text.trim_end_matches(';');
        // Regex-template queries (the §3.2 extension) use `CUBOID BY REGEX`
        // and run on the counter-based path.
        if text.to_ascii_uppercase().contains("CUBOID BY REGEX") {
            let head = text.split_whitespace().next().unwrap_or("");
            if head.eq_ignore_ascii_case("EXPLAIN") || head.eq_ignore_ascii_case("PROFILE") {
                return Err(CliError(
                    "EXPLAIN/PROFILE is not supported for regex-template queries \
                     (they run outside the planned engine path)"
                        .into(),
                ));
            }
            return self.regex_query(text, out);
        }
        let (stmt, plan) = {
            let engine = self.engine()?;
            let stmt = solap_query::parse_statement(engine.db(), text).map_err(engine_err)?;
            let plan = if stmt.mode == solap_query::ExplainMode::Explain {
                Some(engine.explain(&stmt.spec).map_err(engine_err)?)
            } else {
                None
            };
            (stmt, plan)
        };
        if let Some(plan) = plan {
            // EXPLAIN renders the plan without executing anything.
            write!(out, "{plan}").map_err(io_err)?;
            return Ok(());
        }
        let (spec, result, table) = {
            let engine = self.engine()?;
            let spec = stmt.spec;
            let result = engine.execute(&spec).map_err(engine_err)?;
            let table = result.cuboid.tabulate(engine.db(), 15, true);
            (spec, result, table)
        };
        self.history.push(spec.template.render_head());
        writeln!(
            out,
            "{} cells via {} in {:?} ({} sequences scanned, {} KiB of indices built)",
            result.cuboid.len(),
            result.stats.strategy,
            result.stats.elapsed,
            result.stats.sequences_scanned,
            result.stats.index_bytes_built / 1024
        )
        .map_err(io_err)?;
        if stmt.mode == solap_query::ExplainMode::Profile || self.show_profile {
            write!(out, "{}", result.profile.render_text(false)).map_err(io_err)?;
        }
        write!(out, "{table}").map_err(io_err)?;
        self.current = Some(spec);
        Ok(())
    }
}

impl Repl {
    fn regex_query(&mut self, text: &str, out: &mut impl Write) -> Result<(), CliError> {
        let (cuboid, table, render, scanned, start) = {
            let engine = self.engine()?;
            let q = solap_query::parse_regex_query(engine.db(), text).map_err(engine_err)?;
            let start = std::time::Instant::now();
            let groups =
                solap_eventdb::build_sequence_groups(engine.db(), &q.seq).map_err(engine_err)?;
            let mut meter = solap_core::stats::ScanMeter::new();
            let cuboid = solap_core::regexq::regex_cuboid(
                engine.db(),
                &groups,
                &q.template,
                q.restriction,
                &mut meter,
            )
            .map_err(engine_err)?;
            let table = cuboid.tabulate(engine.db(), 15, true);
            (cuboid, table, q.template.render(), meter.count(), start)
        };
        self.history.push(format!("REGEX {render}"));
        writeln!(
            out,
            "{} cells via regex/CB in {:?} ({} sequences scanned)",
            cuboid.len(),
            start.elapsed(),
            scanned
        )
        .map_err(io_err)?;
        write!(out, "{table}").map_err(io_err)?;
        Ok(())
    }
}

fn generate(kind: &str, kv: &HashMap<String, String>) -> Result<EventDb, CliError> {
    let get_usize = |key: &str, default: usize| -> Result<usize, CliError> {
        match kv.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("bad integer for {key}: {v}"))),
            None => Ok(default),
        }
    };
    let get_f64 = |key: &str, default: f64| -> Result<f64, CliError> {
        match kv.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("bad number for {key}: {v}"))),
            None => Ok(default),
        }
    };
    match kind {
        "transit" => {
            let cfg = TransitConfig {
                passengers: get_usize("passengers", 500)?,
                days: get_usize("days", 7)?,
                stations: get_usize("stations", 12)?,
                districts: get_usize("districts", 4)?,
                round_trip_rate: get_f64("round_trip_rate", 0.45)?,
                extra_trips: get_f64("extra_trips", 0.8)?,
                seed: get_usize("seed", 1)? as u64,
                ..Default::default()
            };
            solap_datagen::generate_transit(&cfg).map_err(engine_err)
        }
        "clickstream" => {
            let cfg = ClickstreamConfig {
                sessions: get_usize("sessions", 20_000)?,
                seed: get_usize("seed", 2000)? as u64,
                ..Default::default()
            };
            solap_datagen::generate_clickstream(&cfg).map_err(engine_err)
        }
        "synthetic" => {
            let cfg = SyntheticConfig {
                i: get_usize("i", 100)?,
                l: get_f64("l", 20.0)?,
                theta: get_f64("theta", 0.9)?,
                d: get_usize("d", 10_000)?,
                seed: get_usize("seed", 1)? as u64,
                hierarchy: true,
            };
            solap_datagen::generate_synthetic(&cfg).map_err(engine_err)
        }
        other => Err(CliError(format!(
            "unknown generator `{other}` — transit|clickstream|synthetic"
        ))),
    }
}

fn write_help(out: &mut impl Write) -> io::Result<()> {
    out.write_all(
        b"commands:
  .gen transit|clickstream|synthetic [k=v ...]   generate a dataset
  .schema                                        show columns and hierarchies
  .strategy cb|ii|auto                           pick the construction approach
  .backend list|bitmap                           pick the inverted-list encoding
  .counters hash|dense|auto                      pick the CB counter layout
  .threads N                                     worker threads for construction (1 = sequential)
  .timeout MS                                    per-query deadline in milliseconds (0 = off)
  .budget CELLS                                  per-query cuboid-cell budget (0 = off)
  .op append SYM [ATTR LEVEL] | prepend SYM [ATTR LEVEL]
  .op detail | dehead | prollup DIM | pdrilldown DIM
  .op rollup ATTR | drilldown ATTR
  .op slice-pattern DIM VALUE | slice-group IDX VALUE | minsup N|off
  .save PATH | .load PATH                        persist / restore the event db
  .show [n]        re-tabulate the current cuboid
  .spec            print the current query text
  .stats           cache statistics
  .profile on|off  print each query's per-stage profile (on enables detailed counters)
  .metrics         process-wide cumulative engine metrics
  .history         operations applied so far
  .quit
anything else is parsed as an S-cuboid query; end it with `;`
prefix a query with EXPLAIN to see its plan, or PROFILE to run it and see counters
(CUBOID BY REGEX (X, Y+, .*, X) runs regex templates on the CB path)
(multi-line input: keep typing, the query runs at the `;`)
",
    )
}

fn io_err(e: io::Error) -> CliError {
    CliError(format!("io error: {e}"))
}

fn engine_err(e: solap_eventdb::Error) -> CliError {
    CliError(e.to_string())
}

/// Feeds a multi-line script through the REPL, honouring the same
/// dot-command / `;`-terminated-query structure as interactive input. A
/// trailing query without `;` still runs. Returns `Ok(false)` if the script
/// quit early.
fn run_script(repl: &mut Repl, script: &str, out: &mut impl Write) -> io::Result<bool> {
    let mut buffer = String::new();
    for line in script.lines() {
        let trimmed = line.trim();
        if buffer.is_empty() && (trimmed.starts_with('.') || trimmed.is_empty()) {
            if !repl.handle(trimmed, out)? {
                return Ok(false);
            }
            continue;
        }
        buffer.push_str(line);
        buffer.push('\n');
        if trimmed.ends_with(';') {
            let text = std::mem::take(&mut buffer);
            repl.handle(&text, out)?;
        }
    }
    if !buffer.trim().is_empty() {
        repl.handle(&buffer, out)?;
    }
    Ok(true)
}

fn main() -> io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--eval") {
        // Non-interactive mode: run the script, print errors instead of
        // aborting, and exit nonzero if anything failed.
        let Some(script) = args.get(i + 1) else {
            eprintln!("usage: solap --eval 'SCRIPT'");
            std::process::exit(2);
        };
        let mut stdout = io::stdout();
        let mut repl = Repl::new();
        run_script(&mut repl, script, &mut stdout)?;
        stdout.flush()?;
        if repl.errors > 0 {
            std::process::exit(1);
        }
        return Ok(());
    }
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    let mut repl = Repl::new();
    writeln!(
        stdout,
        "S-OLAP — OLAP on sequence data (SIGMOD 2008 reproduction). Type `.help`."
    )?;
    let mut buffer = String::new();
    loop {
        let prompt = if buffer.is_empty() {
            "solap> "
        } else {
            "   ...> "
        };
        write!(stdout, "{prompt}")?;
        stdout.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if buffer.is_empty() && (trimmed.starts_with('.') || trimmed.is_empty()) {
            if !repl.handle(trimmed, &mut stdout)? {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let text = std::mem::take(&mut buffer);
            repl.handle(&text, &mut stdout)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Repl {
        let mut repl = Repl::new();
        let mut out = Vec::new();
        repl.handle(".gen transit passengers=60 days=3", &mut out)
            .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("generated"));
        repl
    }

    const QUERY: &str = r#"SELECT COUNT(*) FROM Event
        CLUSTER BY card-id AT individual, time AT day
        SEQUENCE BY time ASCENDING
        CUBOID BY SUBSTRING (X, Y)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1)
          WITH x1.action = "in" AND y1.action = "out";"#;

    #[test]
    fn gen_query_and_ops_flow() {
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("cells via"), "{text}");
        let mut out = Vec::new();
        repl.handle(".op append Z location station", &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("APPEND"), "{text}");
        let mut out = Vec::new();
        repl.handle(".op detail", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("DE-TAIL"));
        let mut out = Vec::new();
        repl.handle(".history", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("APPEND") && text.contains("DE-TAIL"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut repl = Repl::new();
        let mut out = Vec::new();
        assert!(repl.handle(".show", &mut out).unwrap());
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("error: no dataset"));
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle("SELECT BOGUS;", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("error:"));
        let mut out = Vec::new();
        repl.handle(".op prollup Q", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("error:"));
    }

    #[test]
    fn strategy_and_backend_switching() {
        let mut repl = setup();
        for cmd in [
            ".strategy cb",
            ".strategy ii",
            ".backend bitmap",
            ".counters dense",
        ] {
            let mut out = Vec::new();
            repl.handle(cmd, &mut out).unwrap();
            assert!(out.is_empty(), "{cmd}: {}", String::from_utf8_lossy(&out));
        }
        let mut out = Vec::new();
        repl.handle(".strategy warp", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("error"));
    }

    #[test]
    fn threads_command_sets_worker_count() {
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle(".threads 4", &mut out).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("worker threads: 4"));
        assert_eq!(repl.engine.as_ref().unwrap().config().threads, 4);
        // A parallel run still answers queries correctly.
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("cells via"));
        // Zero clamps to one; garbage is an error.
        let mut out = Vec::new();
        repl.handle(".threads 0", &mut out).unwrap();
        assert_eq!(repl.engine.as_ref().unwrap().config().threads, 1);
        let mut out = Vec::new();
        repl.handle(".threads lots", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("error"));
    }

    #[test]
    fn schema_and_stats_commands() {
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle(".schema", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("location") && text.contains("district"));
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        let mut out = Vec::new();
        repl.handle(".stats", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("index store"), "{text}");
        let mut out = Vec::new();
        repl.handle(".spec", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("CUBOID BY"));
    }

    #[test]
    fn slice_and_minsup_ops() {
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        let mut out = Vec::new();
        repl.handle(".op slice-pattern X ST000", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("SLICE-PATTERN"));
        let mut out = Vec::new();
        repl.handle(".op minsup 3", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("MIN-SUPPORT"));
        let mut out = Vec::new();
        repl.handle(".op minsup off", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("MIN-SUPPORT"));
    }

    #[test]
    fn regex_queries_run() {
        let mut repl = setup();
        let q = r#"SELECT COUNT(*) FROM Event
            CLUSTER BY card-id AT individual, time AT day
            SEQUENCE BY time ASCENDING
            CUBOID BY REGEX (X, Y, .*, Y, X)
              WITH X AS location AT station, Y AS location AT station
              LEFT-MAXIMALITY;"#;
        let mut out = Vec::new();
        repl.handle(q, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("via regex/CB"), "{text}");
        let mut out = Vec::new();
        repl.handle(".history", &mut out).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("REGEX (X, Y, .*, Y, X)"));
    }

    #[test]
    fn save_and_load_roundtrip() {
        let mut repl = setup();
        let path = std::env::temp_dir().join(format!("solap-cli-{}.db", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        let mut out = Vec::new();
        repl.handle(&format!(".save {path_s}"), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("saved"));
        let mut out = Vec::new();
        repl.handle(&format!(".load {path_s}"), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("loaded"));
        std::fs::remove_file(&path).ok();
        // The loaded engine answers queries.
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("cells via"));
    }

    #[test]
    fn explain_profile_and_metrics_surfaces() {
        let mut repl = setup();
        // EXPLAIN renders a plan and executes nothing.
        let mut out = Vec::new();
        repl.handle(&format!("EXPLAIN {QUERY}"), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("plan:") && text.contains("strategy:"),
            "{text}"
        );
        assert!(!text.contains("cells via"), "EXPLAIN must not execute");
        assert!(repl.current.is_none(), "EXPLAIN leaves no current query");
        // PROFILE executes and appends the per-stage profile.
        let mut out = Vec::new();
        repl.handle(&format!("PROFILE {QUERY}"), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("cells via") && text.contains("profile:"),
            "{text}"
        );
        // .profile on makes plain queries print it too; off stops that.
        let mut out = Vec::new();
        repl.handle(".profile on", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("on"));
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("profile:"));
        let mut out = Vec::new();
        repl.handle(".profile off", &mut out).unwrap();
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("profile:"));
        // .metrics reports the cumulative process-wide export.
        let mut out = Vec::new();
        repl.handle(".metrics", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("engine metrics:"), "{text}");
        // Bad arguments are errors, not aborts.
        let mut out = Vec::new();
        repl.handle(".profile sideways", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("error"));
        // Regex-template queries run outside the planned path: the prefix is
        // rejected with a clear message instead of a confusing parse error.
        let mut out = Vec::new();
        repl.handle(
            "EXPLAIN SELECT COUNT(*) FROM Event CLUSTER BY card-id AT individual \
             SEQUENCE BY time ASCENDING CUBOID BY REGEX (X, Y) \
             WITH X AS location AT station, Y AS location AT station;",
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("not supported for regex-template queries"),
            "{text}"
        );
    }

    #[test]
    fn quit_stops_the_loop() {
        let mut repl = Repl::new();
        let mut out = Vec::new();
        assert!(!repl.handle(".quit", &mut out).unwrap());
    }

    #[test]
    fn timeout_and_budget_commands() {
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle(".timeout 5000", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("5000 ms"));
        assert_eq!(
            repl.engine.as_ref().unwrap().config().timeout,
            Some(std::time::Duration::from_millis(5000))
        );
        let mut out = Vec::new();
        repl.handle(".budget 100", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("100 cells"));
        assert_eq!(
            repl.engine.as_ref().unwrap().config().budget_cells,
            Some(100)
        );
        // Zero switches the limits off; garbage is an error, not an abort.
        let mut out = Vec::new();
        repl.handle(".timeout 0", &mut out).unwrap();
        assert_eq!(repl.engine.as_ref().unwrap().config().timeout, None);
        let mut out = Vec::new();
        repl.handle(".budget 0", &mut out).unwrap();
        assert_eq!(repl.engine.as_ref().unwrap().config().budget_cells, None);
        let mut out = Vec::new();
        repl.handle(".timeout soon", &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("error"));
    }

    #[test]
    fn over_budget_query_reports_error_and_recovers() {
        let mut repl = setup();
        let mut out = Vec::new();
        repl.handle(".budget 1", &mut out).unwrap();
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("error:") && text.contains("cells"), "{text}");
        // Lifting the budget makes the same query succeed on the same
        // engine — the abort left nothing corrupt behind.
        let mut out = Vec::new();
        repl.handle(".budget 0", &mut out).unwrap();
        let mut out = Vec::new();
        repl.handle(QUERY, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("cells via"));
    }

    #[test]
    fn eval_scripts_report_errors_without_aborting() {
        // A clean script leaves the error counter at zero.
        let mut repl = Repl::new();
        let mut out = Vec::new();
        let script = format!(".gen transit passengers=60 days=3\n{QUERY}\n.show 5");
        assert!(run_script(&mut repl, &script, &mut out).unwrap());
        assert_eq!(repl.errors, 0, "{}", String::from_utf8_lossy(&out));
        // Malformed lines are reported, later lines still run, and the
        // counter drives a nonzero exit.
        let mut repl = Repl::new();
        let mut out = Vec::new();
        let script = ".gen transit passengers=60 days=3\nSELECT BOGUS;\n.schema";
        assert!(run_script(&mut repl, script, &mut out).unwrap());
        let text = String::from_utf8(out).unwrap();
        assert_eq!(repl.errors, 1, "{text}");
        assert!(
            text.contains("error:") && text.contains("location"),
            "{text}"
        );
        // `.quit` stops the script early.
        let mut repl = Repl::new();
        let mut out = Vec::new();
        assert!(!run_script(&mut repl, ".quit\n.schema", &mut out).unwrap());
    }
}
