//! no-panic-ratchet fixture: three panic-capable sites in non-test code
//! (unwrap, slice index, panic macro) against a zero baseline.

pub fn f(v: &[u8]) -> u8 {
    let a = v.first().unwrap();
    let b = v[0];
    if *a == 0 {
        panic!("zero");
    }
    b
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_sites_do_not_count() {
        let v = vec![1u8];
        v.first().unwrap();
        let _ = v[0];
    }
}
