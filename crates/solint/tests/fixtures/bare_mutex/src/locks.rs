//! no-bare-mutex fixture: bare `std::sync::Mutex` and `std::sync::RwLock`
//! (both fire); atomics and `Arc` pass.

use std::sync::Mutex;
use std::sync::{Arc, RwLock};
use std::sync::atomic::AtomicU64;

pub struct Shared {
    pub m: Mutex<u64>,
    pub r: Arc<RwLock<u64>>,
    pub c: AtomicU64,
}
