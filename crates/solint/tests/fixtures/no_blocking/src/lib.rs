//! Seeded event-loop blocking: `run` parks on the worker-owned engine
//! lock and reaches a `sleep` through a helper.

use parking_lot::Mutex;

pub struct Loop {
    queue: Mutex<u32>,
    engine: Mutex<u32>,
}

impl Loop {
    pub fn run(&self) {
        let q = self.queue.lock();
        drop(q);
        let g = self.engine.lock();
        drop(g);
        self.backoff();
    }

    fn backoff(&self) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
