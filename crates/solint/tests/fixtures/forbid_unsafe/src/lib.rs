//! forbid-unsafe fixture: a crate root without `#![forbid(unsafe_code)]`
//! that also uses `unsafe` — both fire.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
