//! Seeded stale escape: `calm` stopped being a hot loop long ago, so the
//! waiver above it no longer covers anything and is itself the finding.

// solint: allow(governor-tick) this loop was hot once
pub fn calm() {}
