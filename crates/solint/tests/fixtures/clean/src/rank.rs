//! Clean fixture rank module: mirrors locks.toml exactly.

pub const CLEAN_GATE: u16 = 10;
