#![forbid(unsafe_code)]

//! Clean fixture: every rule armed, nothing fires. Hot loops tick the
//! governor, orderings are justified, no bare std mutex, no panic sites,
//! and every failpoint/counter/knob matches the fixture docs.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Gov;

impl Gov {
    pub fn tick(&self) -> Result<(), ()> {
        Ok(())
    }
}

pub fn scan(gov: &Gov, events: &[u64], total: &AtomicU64) -> Result<(), ()> {
    for ev in events {
        gov.tick()?;
        // ord: independent monotonic accumulator; totals read after join
        total.fetch_add(*ev, Ordering::Relaxed);
    }
    Ok(())
}

pub fn risky() -> Result<(), ()> {
    fail_point!("clean.site");
    let _ = std::env::var("SOLAP_CLEAN");
    Ok(())
}

pub enum Counter {
    EventsScanned,
}

pub struct Gate {
    gate: parking_lot::Mutex<u32>,
}

impl Gate {
    pub fn run(&self) -> u32 {
        *self.gate.lock()
    }
}
