//! governor-tick fixture: one ungoverned hot loop (line 7 fires), one
//! governed loop and one escaped loop (neither fires). Never compiled —
//! scanned by `tests/solint_fixtures.rs`.

pub fn ungoverned(events: &[u64]) -> u64 {
    let mut total = 0;
    for ev in events {
        total += *ev;
    }
    total
}

pub fn governed(gov: &Gov, events: &[u64]) -> Result<u64, ()> {
    let mut total = 0;
    for ev in events {
        gov.tick()?;
        total += *ev;
    }
    Ok(total)
}

pub fn escaped(events: &[u64]) -> u64 {
    let mut total = 0;
    // solint: allow(governor-tick) O(1) per event, fixture demonstrates the escape hatch
    for ev in events {
        total += *ev;
    }
    total
}
