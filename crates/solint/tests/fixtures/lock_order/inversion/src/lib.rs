//! Seeded rank inversion: `bad` blocks on `fx.low` (rank 10) while
//! holding `fx.high` (rank 20); `good` nests in rank order.

use parking_lot::{Mutex, RwLock};

pub struct Engine {
    low: Mutex<u32>,
    high: RwLock<u32>,
}

impl Engine {
    pub fn good(&self) {
        let a = self.low.lock();
        drop(a);
        let b = self.high.read();
        drop(b);
    }

    pub fn bad(&self) {
        let b = self.high.write();
        let a = self.low.lock();
        drop(a);
        drop(b);
    }
}
