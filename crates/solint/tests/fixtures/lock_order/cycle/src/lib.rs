//! Seeded lock-order cycle: `fwd` nests low → high (rank order, legal)
//! and `rev` nests high → low through a helper call. The inversion edge
//! is escaped, but together the edges close a cycle — and cycles can
//! never be escaped.

use parking_lot::Mutex;

pub struct Engine {
    low: Mutex<u32>,
    high: Mutex<u32>,
}

impl Engine {
    pub fn fwd(&self) {
        let a = self.low.lock();
        let b = self.high.lock();
        drop(b);
        drop(a);
    }

    pub fn rev(&self) {
        let b = self.high.lock();
        // solint: allow(lock-order) seeded escape: the cycle must still fire
        self.grab_low();
        drop(b);
    }

    fn grab_low(&self) {
        let a = self.low.lock();
        drop(a);
    }
}
