//! Seeded unranked lock: `mystery` has no locks.toml entry.

use parking_lot::Mutex;

pub struct Engine {
    known: Mutex<u32>,
    mystery: Mutex<u32>,
}
