//! doc-drift fixture: failpoint sites, a Counter enum and SOLAP_* env
//! reads that deliberately disagree with the committed DESIGN.md/README.md.

pub fn work() -> Result<(), ()> {
    fail_point!("cb.group");
    fail_point!("ii.join");
    let _ = std::env::var("SOLAP_SECRET");
    Ok(())
}

pub enum Counter {
    EventsScanned,
    CacheHits,
}
