//! atomic-ordering fixture: one unjustified `Ordering::` use (line 7
//! fires) and one justified use (does not fire).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn unjustified(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn justified(c: &AtomicU64) -> u64 {
    // ord: independent monotonic accumulator; totals read after join
    c.load(Ordering::Relaxed)
}
