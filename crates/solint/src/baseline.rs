//! The `no-panic-ratchet` baseline file: per-file counts of
//! panic-capable sites, committed to the repository and only allowed to
//! shrink.
//!
//! Format — comment lines, then `<count> <path>` per file, sorted by path:
//!
//! ```text
//! # solint no-panic-ratchet baseline
//! 12 crates/core/src/engine.rs
//! ```

use std::io;
use std::path::Path;

/// Parsed baseline: `(path, count)` sorted by path.
pub fn load(path: &Path) -> io::Result<Vec<(String, usize)>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((count, file)) = line.split_once(' ') else {
            continue;
        };
        if let Ok(n) = count.trim().parse::<usize>() {
            out.push((file.trim().to_string(), n));
        }
    }
    out.sort();
    Ok(out)
}

/// Writes the baseline file (sorted, with the regeneration header).
pub fn save(path: &Path, counts: &[(String, usize)]) -> io::Result<()> {
    let mut sorted = counts.to_vec();
    sorted.sort();
    let total: usize = sorted.iter().map(|(_, n)| n).sum();
    let mut out = String::new();
    out.push_str("# solint no-panic-ratchet baseline — panic-capable sites per file\n");
    out.push_str("# (unwrap/expect/panic!/unreachable!/todo!/unimplemented!/slice-index)\n");
    out.push_str("# in non-test library code. This file may only shrink; regenerate after\n");
    out.push_str("# a burn-down with: cargo run -p solint -- --update-baseline\n");
    out.push_str(&format!("# total: {total}\n"));
    for (file, n) in &sorted {
        if *n > 0 {
            out.push_str(&format!("{n} {file}\n"));
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let dir = std::env::temp_dir().join("solint-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("b.txt");
        let counts = vec![
            ("b.rs".to_string(), 3),
            ("a.rs".to_string(), 1),
            ("zero.rs".to_string(), 0),
        ];
        save(&p, &counts).unwrap();
        let loaded = load(&p).unwrap();
        assert_eq!(
            loaded,
            vec![("a.rs".to_string(), 1), ("b.rs".to_string(), 3)],
            "sorted, zero-count files dropped"
        );
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.contains("# total: 4"));
        std::fs::remove_file(&p).ok();
    }
}
