//! The per-file source model rules operate on: the token stream, the
//! comment map, and which lines are test code.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// One lexed source file plus derived facts.
pub struct SourceFile {
    /// Path relative to the analysis root, `/`-separated.
    pub rel: String,
    /// Absolute path.
    pub path: PathBuf,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Total line count.
    pub lines: usize,
    /// `test_lines[line]` (1-based) — inside `#[cfg(test)]` / `#[test]`
    /// item bodies, or the whole file for `tests/`, `benches/`,
    /// `examples/` and `fixtures/` trees.
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Loads and lexes one file. `rel` must use `/` separators.
    pub fn load(root: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path)?;
        Ok(SourceFile::from_text(rel, path, &text))
    }

    /// Builds the model from source text (used directly by unit tests).
    pub fn from_text(rel: &str, path: PathBuf, text: &str) -> SourceFile {
        let lexed = lex(text);
        let lines = text.lines().count() + 1;
        let mut f = SourceFile {
            rel: rel.to_string(),
            path,
            lexed,
            lines,
            test_lines: Vec::new(),
        };
        f.test_lines = f.compute_test_lines();
        f
    }

    /// Whether the whole file is test/bench/example scaffolding by path.
    pub fn is_test_file(&self) -> bool {
        let r = &self.rel;
        r.starts_with("tests/")
            || r.contains("/tests/")
            || r.starts_with("benches/")
            || r.contains("/benches/")
            || r.starts_with("examples/")
            || r.contains("/examples/")
    }

    /// Whether `line` (1-based) is test code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// The tokens of the file.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Finds the matching `}` for the `{` at token index `open`.
    /// Returns the index of the closing token (or the last token on
    /// unbalanced input).
    pub fn match_brace(&self, open: usize) -> usize {
        let toks = self.tokens();
        debug_assert!(toks[open].kind.is_punct(b'{'));
        let mut depth = 0usize;
        for (j, t) in toks.iter().enumerate().skip(open) {
            if t.kind.is_punct(b'{') {
                depth += 1;
            } else if t.kind.is_punct(b'}') {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        toks.len().saturating_sub(1)
    }

    /// Whether a `// solint: allow(rule)` escape comment covers `line`:
    /// on the same line, or on one of the two lines immediately above.
    /// The escape must carry a justification after the closing paren.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        let needle = format!("solint: allow({rule})");
        for l in line.saturating_sub(2)..=line {
            let c = self.lexed.comment_on(l);
            if let Some(pos) = c.find(&needle) {
                let rest = c[pos + needle.len()..].trim();
                if !rest.is_empty() {
                    return true;
                }
            }
        }
        false
    }

    /// Marks test regions: any item annotated `#[test]` or `#[cfg(test)]`
    /// (including `#[cfg(all(test, …))]`) from the attribute to the end of
    /// the item's brace block. Whole-file test paths mark every line.
    fn compute_test_lines(&self) -> Vec<bool> {
        let mut mask = vec![false; self.lines + 2];
        if self.is_test_file() {
            mask.iter_mut().for_each(|b| *b = true);
            return mask;
        }
        let toks = self.tokens();
        let mut i = 0usize;
        while i + 1 < toks.len() {
            if toks[i].kind.is_punct(b'#') && toks[i + 1].kind.is_punct(b'[') {
                // Scan the attribute's bracket extent.
                let mut j = i + 2;
                let mut depth = 1usize;
                let mut is_test_attr = false;
                let mut saw_cfg = false;
                while j < toks.len() && depth > 0 {
                    match &toks[j].kind {
                        TokenKind::Punct(b'[') => depth += 1,
                        TokenKind::Punct(b']') => depth -= 1,
                        TokenKind::Ident(id) => {
                            if id == "cfg" {
                                saw_cfg = true;
                            }
                            if id == "test" && (saw_cfg || j == i + 2) {
                                is_test_attr = true;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if is_test_attr {
                    // Skip any further attributes, then the item header up
                    // to its `{`, then brace-match to the item end.
                    let attr_line = toks[i].line;
                    let mut k = j;
                    while k + 1 < toks.len()
                        && toks[k].kind.is_punct(b'#')
                        && toks[k + 1].kind.is_punct(b'[')
                    {
                        let mut d = 1usize;
                        k += 2;
                        while k < toks.len() && d > 0 {
                            if toks[k].kind.is_punct(b'[') {
                                d += 1;
                            } else if toks[k].kind.is_punct(b']') {
                                d -= 1;
                            }
                            k += 1;
                        }
                    }
                    while k < toks.len()
                        && !toks[k].kind.is_punct(b'{')
                        && !toks[k].kind.is_punct(b';')
                    {
                        k += 1;
                    }
                    if k < toks.len() && toks[k].kind.is_punct(b'{') {
                        let close = self.match_brace(k);
                        let end_line = toks[close].line;
                        for m in mask[attr_line..=end_line.min(self.lines)].iter_mut() {
                            *m = true;
                        }
                        i = close + 1;
                        continue;
                    }
                }
                i = j;
            } else {
                i += 1;
            }
        }
        mask
    }
}

/// Recursively collects `.rs` files under `root`, returning root-relative
/// `/`-separated paths, sorted. `exclude` entries are substring matches
/// against the relative path.
pub fn walk_rs_files(root: &Path, dirs: &[String], exclude: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for d in dirs {
        let base = root.join(d);
        collect(&base, root, exclude, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

fn collect(dir: &Path, root: &Path, exclude: &[String], out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let p = entry.path();
        let rel = match p.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if exclude.iter().any(|e| rel.contains(e.as_str())) {
            continue;
        }
        if p.is_dir() {
            collect(&p, root, exclude, out);
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(text: &str) -> SourceFile {
        SourceFile::from_text("lib.rs", PathBuf::from("lib.rs"), text)
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let f = sf("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n");
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let f = sf("#[test]\nfn t() {\n    boom();\n}\nfn live() {}\n");
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn non_test_cfg_is_not_masked() {
        let f = sf("#[cfg(feature = \"x\")]\nfn live() {\n    ok();\n}\n");
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn tests_dir_is_all_test() {
        let f = SourceFile::from_text("tests/t.rs", PathBuf::from("tests/t.rs"), "fn x() {}\n");
        assert!(f.is_test_line(1));
    }

    #[test]
    fn allow_requires_reason() {
        let f = sf("// solint: allow(some-rule) bounded by charged cells\nfor x in events {}\n// solint: allow(other-rule)\nfor y in events {}\n");
        assert!(f.allowed("some-rule", 2));
        assert!(!f.allowed("other-rule", 4), "reason-less escape rejected");
        assert!(!f.allowed("some-rule", 5));
    }

    #[test]
    fn brace_matching() {
        let f = sf("fn a() { if x { y(); } }\nfn b() {}\n");
        let toks = f.tokens();
        let open = toks.iter().position(|t| t.kind.is_punct(b'{')).unwrap();
        let close = f.match_brace(open);
        assert_eq!(toks[close].line, 1);
        // The next `{` after the close belongs to fn b.
        assert!(toks[close + 1..].iter().any(|t| t.kind.is_punct(b'{')));
    }
}
