//! The `solint` CLI. Run from anywhere in the workspace:
//!
//! ```text
//! cargo run -p solint              # human report, exit 1 on findings
//! cargo run -p solint -- --ci      # same, plus a machine-parsable summary line
//! cargo run -p solint -- --json    # JSON findings on stdout
//! cargo run -p solint -- --update-baseline   # rewrite solint.baseline
//! cargo run -p solint -- --root DIR          # analyze another tree
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut ci = false;
    let mut update_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut sites_of: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--ci" => ci = true,
            "--update-baseline" => update_baseline = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--sites" => match args.next() {
                Some(rel) => sites_of = Some(rel),
                None => return usage("--sites needs a root-relative .rs file"),
            },
            "--help" | "-h" => {
                print!("{}", HELP);
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "solint: {} does not look like the workspace root (no Cargo.toml); pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }
    let config = solint::Config::repo(root);

    if let Some(rel) = sites_of {
        return match solint::source::SourceFile::load(&config.root, &rel) {
            Ok(f) => {
                for (line, what) in solint::rules::panic_ratchet::sites(&f) {
                    println!("{rel}:{line}: {what}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("solint: {rel}: {e}");
                ExitCode::from(2)
            }
        };
    }

    if update_baseline {
        return match solint::update_baseline(&config) {
            Ok(counts) => {
                let total: usize = counts.iter().map(|(_, n)| n).sum();
                println!(
                    "solint: baseline rewritten — {} panic-capable sites across {} files",
                    total,
                    counts.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("solint: baseline write failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    let analysis = solint::run(&config);
    if json {
        println!("{}", solint::render_json(&analysis.findings));
    } else {
        print!(
            "{}",
            solint::render_text(&analysis.findings, analysis.files_scanned)
        );
    }
    if ci {
        eprintln!(
            "solint-ci: findings={} files={}",
            analysis.findings.len(),
            analysis.files_scanned
        );
    }
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// the current directory otherwise.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(d) => {
            let p = PathBuf::from(d);
            p.parent()
                .and_then(|p| p.parent())
                .map(PathBuf::from)
                .unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("solint: {msg}");
    eprint!("{}", HELP);
    ExitCode::from(2)
}

const HELP: &str = "\
solint — workspace static analysis for the S-OLAP engine

USAGE: cargo run -p solint [-- OPTIONS]

OPTIONS:
  --ci                 print a machine-parsable summary line on stderr
  --json               emit findings as JSON on stdout
  --update-baseline    recount panic-capable sites and rewrite solint.baseline
  --sites FILE         list a file's panic-capable sites (burn-down helper)
  --root DIR           analyze DIR instead of this workspace
  -h, --help           this text

Exit status: 0 clean, 1 findings, 2 usage/io error.
Rules and the escape-comment workflow: DESIGN.md §7, README \"Static analysis\".
";
