//! `atomic-ordering`: every `Ordering::…` use in the concurrency-core
//! files (metrics, govern, failpoint) must carry an `// ord:` comment —
//! on the same line or within the two lines above — justifying why that
//! memory ordering is sufficient.
//!
//! Only the five atomic orderings are matched (`Relaxed`, `Acquire`,
//! `Release`, `AcqRel`, `SeqCst`); `std::cmp::Ordering`'s variants don't
//! collide, so comparison code never trips the rule.

use crate::report::{Finding, Rule};
use crate::source::SourceFile;
use crate::Config;

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs the rule over the configured ordering files.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for rel in &config.ordering_files {
        let Some(f) = crate::rules::file(files, rel) else {
            out.push(Finding::new(
                Rule::AtomicOrdering,
                rel,
                0,
                "cataloged concurrency-core file is missing from the scan",
            ));
            continue;
        };
        check_file(f, &mut out);
    }
    out
}

fn check_file(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = f.tokens();
    let mut flagged_lines = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].kind.is_ident("Ordering") {
            continue;
        }
        // `Ordering :: Variant`
        let is_use = i + 3 < toks.len()
            && toks[i + 1].kind.is_punct(b':')
            && toks[i + 2].kind.is_punct(b':')
            && toks[i + 3]
                .kind
                .ident()
                .is_some_and(|v| ATOMIC_ORDERINGS.contains(&v));
        if !is_use {
            continue;
        }
        let line = toks[i].line;
        if f.is_test_line(line) || flagged_lines.contains(&line) || has_ord_comment(f, line) {
            continue;
        }
        flagged_lines.push(line);
        let variant = toks[i + 3].kind.ident().unwrap_or("?");
        let finding = Finding::new(
            Rule::AtomicOrdering,
            &f.rel,
            line,
            format!(
                "`Ordering::{variant}` has no `// ord:` justification on this \
                 line or the two above"
            ),
        );
        out.push(if f.allowed(Rule::AtomicOrdering.id(), line) {
            finding.suppress()
        } else {
            finding
        });
    }
}

/// An `// ord:` comment on `line` or one of the two lines above.
fn has_ord_comment(f: &SourceFile, line: usize) -> bool {
    (line.saturating_sub(2)..=line).any(|l| f.lexed.comment_on(l).contains("ord:"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_on(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_text("govern.rs", PathBuf::from("govern.rs"), src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        out
    }

    #[test]
    fn unjustified_ordering_fires() {
        let out = run_on("fn f() {\n    x.load(Ordering::Relaxed);\n}\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
        assert!(out[0].message.contains("Relaxed"));
    }

    #[test]
    fn same_line_justification_passes() {
        let out = run_on(
            "fn f() {\n    x.load(Ordering::Relaxed); // ord: monotonic counter, no sync\n}\n",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn above_line_justification_passes() {
        let out = run_on(
            "fn f() {\n    // ord: counter only read after join(), which synchronizes\n    x.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn one_finding_per_line() {
        let out = run_on(
            "fn f() {\n    x.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire);\n}\n",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn cmp_ordering_ignored() {
        let out = run_on("fn f() {\n    match a.cmp(&b) { Ordering::Less => {} _ => {} }\n}\n");
        assert!(out.is_empty());
    }

    #[test]
    fn test_code_ignored() {
        let out =
            run_on("#[cfg(test)]\nmod tests {\n    fn t() { x.load(Ordering::SeqCst); }\n}\n");
        assert!(out.is_empty());
    }
}
