//! `no-blocking-in-event-loop`: the readiness-loop thread must never
//! block. From each configured entry point (e.g. `EventLoop::run`), the
//! rule walks the resolved call graph and flags, anywhere reachable:
//!
//! * a blocking acquire of a lock whose `locks.toml` entry says
//!   `event_loop = false` — those locks are owned by worker/engine
//!   threads that can hold them across I/O, so the loop parking on one
//!   stalls every connection;
//! * a call to a cataloged blocking identifier (`sleep`, `join`, …).
//!
//! `try_*` acquires stay legal (the loop's hand-off pattern), and
//! deliberate blocking (shutdown drain) escapes with
//! `// solint: allow(no-blocking-in-event-loop) <reason>`.

use std::collections::BTreeSet;

use crate::report::{Finding, Rule};
use crate::rules::lockgraph::{self, World};
use crate::source::SourceFile;
use crate::Config;

/// Runs the rule for each configured event-loop entry point.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    if config.event_loop_entries.is_empty() {
        return Vec::new();
    }
    let world = match lockgraph::build(config, files) {
        Ok(w) => w,
        // Manifest problems are lock-order's to report.
        Err(_) => return Vec::new(),
    };
    let mut out = Vec::new();
    for spec in &config.event_loop_entries {
        let Some(entry_fn) = lockgraph::find_fn(&world, files, spec) else {
            let file = spec.split("::").next().unwrap_or(spec);
            out.push(Finding::new(
                Rule::NoBlockingInEventLoop,
                file,
                0,
                format!("cataloged event-loop entry `{spec}` not found"),
            ));
            continue;
        };
        check_from(config, files, &world, entry_fn, &mut out);
    }
    // Two entries reaching the same fn would double-report; dedupe.
    out.sort_by(|a, b| {
        (&a.file, a.line)
            .cmp(&(&b.file, b.line))
            .then(a.message.cmp(&b.message))
    });
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

fn check_from(
    config: &Config,
    files: &[SourceFile],
    world: &World,
    entry_fn: usize,
    out: &mut Vec<Finding>,
) {
    // Reachable fns over resolved call edges.
    let mut reach: BTreeSet<usize> = BTreeSet::new();
    let mut stack = vec![entry_fn];
    while let Some(fni) = stack.pop() {
        if !reach.insert(fni) {
            continue;
        }
        for c in &world.calls {
            if c.fn_idx == fni {
                stack.push(c.callee);
            }
        }
    }

    for s in &world.sites {
        if !s.blocking || !reach.contains(&s.fn_idx) {
            continue;
        }
        let e = &world.manifest[s.entry];
        if e.event_loop {
            continue;
        }
        let f = &files[world.fns[s.fn_idx].file];
        let finding = Finding::new(
            Rule::NoBlockingInEventLoop,
            &f.rel,
            s.line,
            format!(
                "event-loop thread may park on `{}` (rank {}, event_loop = \
                 false in locks.toml) — use try_* or hand the work to the \
                 pool",
                e.name, e.rank
            ),
        );
        out.push(if f.allowed(Rule::NoBlockingInEventLoop.id(), s.line) {
            finding.suppress()
        } else {
            finding
        });
    }

    // Cataloged blocking calls (`sleep`, `join`, …) anywhere reachable.
    for &fni in &reach {
        let info = &world.fns[fni];
        let f = &files[info.file];
        let toks = f.tokens();
        for i in info.body_open..info.body_close {
            let Some(id) = toks[i].kind.ident() else {
                continue;
            };
            if !config.event_loop_blocking.iter().any(|b| b == id) {
                continue;
            }
            if i + 1 >= toks.len() || !toks[i + 1].kind.is_punct(b'(') {
                continue;
            }
            let line = toks[i].line;
            let finding = Finding::new(
                Rule::NoBlockingInEventLoop,
                &f.rel,
                line,
                format!(
                    "`{id}(…)` blocks the event-loop thread — move it off \
                     the loop or escape with `// solint: \
                     allow(no-blocking-in-event-loop) <reason>`"
                ),
            );
            out.push(if f.allowed(Rule::NoBlockingInEventLoop.id(), line) {
                finding.suppress()
            } else {
                finding
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_mem(manifest: &str, src: &str) -> Vec<Finding> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!(
            "../../target/solint-no-blocking-tests/{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::write(dir.join("locks.toml"), manifest).unwrap();
        std::fs::write(dir.join("src/a.rs"), src).unwrap();
        let mut config = Config::bare(dir.clone());
        config.locks_manifest = Some("locks.toml".into());
        config.lock_dirs = vec!["src/".into()];
        config.event_loop_entries = vec!["src/a.rs::Loop::run".into()];
        config.event_loop_blocking = vec!["sleep".into(), "join".into()];
        let files = vec![SourceFile::from_text("src/a.rs", dir.join("src/a.rs"), src)];
        let out = check(&config, &files);
        let _ = std::fs::remove_dir_all(&dir);
        out
    }

    const MANIFEST: &str = r#"
[[lock]]
name = "a.queue"
rank = 10
kind = "mutex"
file = "src/a.rs"
field = "queue"
event_loop = true
doc = "loop-safe"

[[lock]]
name = "a.engine"
rank = 20
kind = "mutex"
file = "src/a.rs"
field = "engine"
event_loop = false
doc = "worker-held"
"#;

    const DECLS: &str = "use parking_lot::Mutex;\n\
                         pub struct Loop {\n    queue: Mutex<u32>,\n    engine: Mutex<u32>,\n}\n";

    #[test]
    fn engine_lock_on_loop_thread_fires() {
        let src = format!(
            "{DECLS}impl Loop {{\n    fn run(&self) {{\n        let g = self.engine.lock();\n    }}\n}}\n"
        );
        let out = run_mem(MANIFEST, &src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 8);
        assert!(out[0].message.contains("a.engine"));
    }

    #[test]
    fn loop_safe_lock_passes() {
        let src = format!(
            "{DECLS}impl Loop {{\n    fn run(&self) {{\n        let g = self.queue.lock();\n    }}\n}}\n"
        );
        assert!(run_mem(MANIFEST, &src).is_empty());
    }

    #[test]
    fn try_acquire_of_engine_lock_passes() {
        let src = format!(
            "{DECLS}impl Loop {{\n    fn run(&self) {{\n        if let Some(g) = self.engine.try_lock() {{\n            drop(g);\n        }}\n    }}\n}}\n"
        );
        assert!(run_mem(MANIFEST, &src).is_empty());
    }

    #[test]
    fn blocking_call_through_helper_fires() {
        let src = format!(
            "{DECLS}impl Loop {{\n    fn run(&self) {{\n        self.drain();\n    }}\n    fn drain(&self) {{\n        worker.join();\n    }}\n}}\n"
        );
        let out = run_mem(MANIFEST, &src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 11);
        assert!(out[0].message.contains("join"));
    }

    #[test]
    fn unreachable_blocking_is_ignored() {
        let src = format!(
            "{DECLS}impl Loop {{\n    fn run(&self) {{}}\n}}\nfn elsewhere() {{\n    thread::sleep(d);\n}}\n"
        );
        assert!(run_mem(MANIFEST, &src).is_empty());
    }

    #[test]
    fn escape_suppresses() {
        let src = format!(
            "{DECLS}impl Loop {{\n    fn run(&self) {{\n        // solint: allow(no-blocking-in-event-loop) shutdown drain\n        worker.join();\n    }}\n}}\n"
        );
        let out = run_mem(MANIFEST, &src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].suppressed);
    }

    #[test]
    fn missing_entry_reported() {
        let out = run_mem(MANIFEST, "fn nothing() {}\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not found"));
    }
}
