//! The rule implementations. Each module exposes
//! `check(&Config, &[SourceFile]) -> Vec<Finding>`.

pub mod atomic_ordering;
pub mod bare_mutex;
pub mod doc;
pub mod doc_counters;
pub mod doc_failpoints;
pub mod doc_knobs;
pub mod doc_locks;
pub mod doc_sections;
pub mod forbid_unsafe;
pub mod governor_tick;
pub mod lock_order;
pub(crate) mod lockgraph;
pub mod no_blocking;
pub mod panic_ratchet;
pub mod stale_escape;

use crate::source::SourceFile;

/// Finds the file for a relative path in the scanned set.
pub(crate) fn file<'a>(files: &'a [SourceFile], rel: &str) -> Option<&'a SourceFile> {
    files.iter().find(|f| f.rel == rel)
}

/// Whether `rel` starts with any of the given directory prefixes.
pub(crate) fn in_dirs(rel: &str, dirs: &[String]) -> bool {
    dirs.iter().any(|d| rel.starts_with(d.as_str()))
}

/// Splits a snake_case identifier and returns its last part with a plural
/// `s` folded off (`member_sids` → `sid`, `groups` → `group`).
pub(crate) fn last_name_part(ident: &str) -> &str {
    let last = ident.rsplit('_').next().unwrap_or(ident);
    if last.len() > 2 {
        last.strip_suffix('s').unwrap_or(last)
    } else {
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_parts() {
        assert_eq!(last_name_part("member_sids"), "sid");
        assert_eq!(last_name_part("groups"), "group");
        assert_eq!(last_name_part("cluster_by"), "by");
        assert_eq!(last_name_part("rows"), "row");
        assert_eq!(last_name_part("os"), "os", "short parts are not folded");
    }
}
