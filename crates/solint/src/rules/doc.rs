//! Shared helpers for the doc-drift rules: loading a committed markdown
//! file and extracting names from its catalog tables.

use std::collections::BTreeMap;

use crate::report::{Finding, Rule};
use crate::Config;

/// Loads a doc file as lines; on failure pushes a finding and returns None.
pub fn load_doc(
    config: &Config,
    rel: &str,
    rule: Rule,
    out: &mut Vec<Finding>,
) -> Option<Vec<String>> {
    match std::fs::read_to_string(config.root.join(rel)) {
        Ok(text) => Some(text.lines().map(String::from).collect()),
        Err(e) => {
            out.push(Finding::new(rule, rel, 0, format!("unreadable: {e}")));
            None
        }
    }
}

/// Extracts names from the first cell of each row of the markdown table
/// whose header line contains `header_marker`. A "name" is a backticked
/// span, further split on any character outside `[A-Za-z0-9_.]` (so a
/// compressed `` `a_hits/misses` `` cell yields two names). Returns
/// name → 1-based doc line.
pub fn table_names(lines: &[String], header_marker: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    let Some(start) = lines.iter().position(|l| l.contains(header_marker)) else {
        return out;
    };
    for (idx, line) in lines.iter().enumerate().skip(start + 1) {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            break;
        }
        if trimmed.chars().all(|c| matches!(c, '|' | '-' | ':' | ' ')) {
            continue; // the |---|---| separator row
        }
        let first_cell = trimmed
            .trim_start_matches('|')
            .split('|')
            .next()
            .unwrap_or("");
        for name in backticked_names(first_cell) {
            out.entry(name).or_insert(idx + 1);
        }
    }
    out
}

/// The names inside backticked spans of `cell` (see [`table_names`]).
pub fn backticked_names(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        let span = &after[..close];
        let mut cur = String::new();
        for c in span.chars() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                cur.push(c);
            } else if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        rest = &after[close + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_parsing() {
        let lines: Vec<String> = [
            "## 5. Governance",
            "",
            "| Site | Location |",
            "|---|---|",
            "| `cb.group` | per group |",
            "| `ii.verify` | before a scan |",
            "",
            "prose after the table with `not.a.site`",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let names = table_names(&lines, "| Site |");
        assert_eq!(names.len(), 2);
        assert_eq!(names["cb.group"], 5);
        assert_eq!(names["ii.verify"], 6);
    }

    #[test]
    fn compressed_cells_split() {
        assert_eq!(
            backticked_names("`seq_cache_hits/misses`, `cuboid_cache_hits`"),
            vec!["seq_cache_hits", "misses", "cuboid_cache_hits"]
        );
    }
}
