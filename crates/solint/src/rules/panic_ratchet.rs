//! `no-panic-ratchet`: panic-capable sites in non-test library code of the
//! ratcheted directories are counted per file and checked against the
//! committed baseline, which may only shrink.
//!
//! Counted sites:
//!
//! * `.unwrap()` / `.expect(…)` method calls;
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` /
//!   `assert!`-family macros are **not** counted (asserts state invariants;
//!   the paper-engine style keeps them) except the four panic macros;
//! * slice/array indexing `expr[...]` (an `[` directly after an
//!   expression-ending token), which panics on out-of-bounds.
//!
//! A file whose count exceeds its baseline entry is an error (new panic
//! sites); a file whose count dropped below the baseline is also an error
//! (the ratchet must be banked with `--update-baseline`).

use std::collections::BTreeMap;

use crate::baseline;
use crate::lexer::TokenKind;
use crate::report::{Finding, Rule};
use crate::rules::in_dirs;
use crate::source::SourceFile;
use crate::Config;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Counts panic-capable sites in one file's non-test code.
pub fn count_file(f: &SourceFile) -> usize {
    sites(f).len()
}

/// The `(line, what)` list of panic-capable sites in non-test code.
pub fn sites(f: &SourceFile) -> Vec<(usize, &'static str)> {
    let toks = f.tokens();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if f.is_test_line(t.line) {
            continue;
        }
        match &t.kind {
            TokenKind::Ident(id) if id == "unwrap" || id == "expect" => {
                // `.unwrap()` / `.expect(` — a method call, not a fn def
                // or an `unwrap_or_else` (distinct ident).
                let prev_dot = i > 0 && toks[i - 1].kind.is_punct(b'.');
                let next_paren = i + 1 < toks.len() && toks[i + 1].kind.is_punct(b'(');
                if prev_dot && next_paren {
                    out.push((t.line, if id == "unwrap" { "unwrap" } else { "expect" }));
                }
            }
            TokenKind::Ident(id)
                if PANIC_MACROS.contains(&id.as_str())
                    && i + 1 < toks.len()
                    && toks[i + 1].kind.is_punct(b'!') =>
            {
                out.push((t.line, "panic-macro"));
            }
            TokenKind::Punct(b'[') => {
                // An index expression: `[` directly after an
                // expression-ending token. `vec![…]` (macro bang before the
                // preceding ident) and attributes (`#[…]`) don't qualify.
                if i == 0 {
                    continue;
                }
                let expr_end = match &toks[i - 1].kind {
                    TokenKind::Ident(_) => !(i >= 2 && toks[i - 2].kind.is_punct(b'!')),
                    TokenKind::Punct(b')') | TokenKind::Punct(b']') => true,
                    TokenKind::Str(_) => true,
                    _ => false,
                };
                if expr_end {
                    out.push((t.line, "slice-index"));
                }
            }
            _ => {}
        }
    }
    out
}

/// Current per-file counts across the ratcheted directories, sorted.
pub fn current_counts(config: &Config, files: &[SourceFile]) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = files
        .iter()
        .filter(|f| in_dirs(&f.rel, &config.ratchet_dirs) && !f.is_test_file())
        .map(|f| (f.rel.clone(), count_file(f)))
        .filter(|(_, n)| *n > 0)
        .collect();
    out.sort();
    out
}

/// Compares current counts against the committed baseline.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let Some(rel) = &config.baseline else {
        return Vec::new();
    };
    if config.ratchet_dirs.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let base: BTreeMap<String, usize> = match baseline::load(&config.root.join(rel)) {
        Ok(b) => b.into_iter().collect(),
        Err(e) => {
            out.push(Finding::new(
                Rule::NoPanicRatchet,
                rel,
                0,
                format!("baseline unreadable ({e}); run --update-baseline to create it"),
            ));
            return out;
        }
    };
    let current: BTreeMap<String, usize> = current_counts(config, files).into_iter().collect();
    for (file, &n) in &current {
        let allowed = base.get(file).copied().unwrap_or(0);
        match n.cmp(&allowed) {
            std::cmp::Ordering::Greater => {
                let f = crate::rules::file(files, file);
                let detail = f
                    .map(|f| {
                        let mut lines: Vec<String> = sites(f)
                            .iter()
                            .map(|(l, what)| format!("{l} ({what})"))
                            .collect();
                        lines.truncate(12);
                        format!("; sites at lines {}", lines.join(", "))
                    })
                    .unwrap_or_default();
                out.push(Finding::new(
                    Rule::NoPanicRatchet,
                    file,
                    0,
                    format!(
                        "{n} panic-capable sites exceed the baseline of {allowed} — \
                         convert the new sites to typed errors{detail}"
                    ),
                ));
            }
            std::cmp::Ordering::Less => {
                out.push(Finding::new(
                    Rule::NoPanicRatchet,
                    file,
                    0,
                    format!(
                        "{n} sites but the baseline says {allowed} — bank the \
                         burn-down with `cargo run -p solint -- --update-baseline`"
                    ),
                ));
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    for (file, &allowed) in &base {
        if allowed > 0 && !current.contains_key(file) {
            out.push(Finding::new(
                Rule::NoPanicRatchet,
                file,
                0,
                format!(
                    "baseline lists {allowed} sites but the file now has none (or was \
                     removed) — run --update-baseline"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn count(src: &str) -> usize {
        let f = SourceFile::from_text("x.rs", PathBuf::from("x.rs"), src);
        count_file(&f)
    }

    #[test]
    fn counts_unwrap_expect_panics() {
        assert_eq!(count("fn f() { a.unwrap(); b.expect(\"m\"); }"), 2);
        assert_eq!(count("fn f() { panic!(\"x\"); unreachable!(); }"), 2);
        assert_eq!(count("fn f() { todo!(); unimplemented!() }"), 2);
    }

    #[test]
    fn unwrap_or_else_not_counted() {
        assert_eq!(
            count("fn f() { a.unwrap_or_else(|| 0); a.unwrap_or(0); }"),
            0
        );
    }

    #[test]
    fn fn_defs_not_counted() {
        assert_eq!(count("fn unwrap() {} fn expect(x: u8) {}"), 0);
    }

    #[test]
    fn slice_index_counted() {
        assert_eq!(count("fn f() { let x = v[i]; w[0] = 1; m[k][j]; }"), 4);
    }

    #[test]
    fn non_index_brackets_not_counted() {
        assert_eq!(count("#[derive(Debug)] fn f(v: &[u8], w: [u8; 4]) { let a = vec![1, 2]; let b = [0u8; 3]; }"), 0);
    }

    #[test]
    fn call_result_index_counted() {
        assert_eq!(count("fn f() { g()[0]; }"), 1);
    }

    #[test]
    fn test_code_not_counted() {
        assert_eq!(
            count("#[cfg(test)]\nmod tests {\n    fn t() { a.unwrap(); v[0]; }\n}\n"),
            0
        );
        assert_eq!(count("#[test]\nfn t() { a.unwrap(); }\n"), 0);
    }

    #[test]
    fn strings_and_comments_not_counted() {
        assert_eq!(
            count("fn f() { let s = \"a.unwrap() v[0]\"; } // x.unwrap()"),
            0
        );
    }
}
