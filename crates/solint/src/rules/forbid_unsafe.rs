//! `forbid-unsafe`: every workspace crate root must carry
//! `#![forbid(unsafe_code)]`, and no `unsafe` token may appear anywhere in
//! the scanned tree.
//!
//! The attribute makes the compiler enforce it per crate; the token scan
//! is the linter's belt-and-braces check (it also covers files the
//! compiler only sees under feature gates).

use crate::report::{Finding, Rule};
use crate::source::SourceFile;
use crate::Config;

/// Runs the rule: attribute presence per crate root, token scan per file.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for rel in &config.crate_roots {
        let Some(f) = crate::rules::file(files, rel) else {
            out.push(Finding::new(
                Rule::ForbidUnsafe,
                rel,
                0,
                "crate root is missing from the scan",
            ));
            continue;
        };
        if !has_forbid_attr(f) {
            out.push(Finding::new(
                Rule::ForbidUnsafe,
                rel,
                1,
                "crate root lacks `#![forbid(unsafe_code)]`",
            ));
        }
    }
    for f in files {
        for t in f.tokens() {
            if t.kind.is_ident("unsafe") {
                let finding = Finding::new(
                    Rule::ForbidUnsafe,
                    &f.rel,
                    t.line,
                    "`unsafe` is banned workspace-wide",
                );
                out.push(if f.allowed(Rule::ForbidUnsafe.id(), t.line) {
                    finding.suppress()
                } else {
                    finding
                });
            }
        }
    }
    out
}

/// Whether the token stream contains `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_attr(f: &SourceFile) -> bool {
    let toks = f.tokens();
    toks.windows(9).any(|w| {
        w[0].kind.is_punct(b'#')
            && w[1].kind.is_punct(b'!')
            && w[2].kind.is_punct(b'[')
            && w[3].kind.is_ident("forbid")
            && w[4].kind.is_punct(b'(')
            && w[5].kind.is_ident("unsafe_code")
            && w[6].kind.is_punct(b')')
            && w[7].kind.is_punct(b']')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn root_file(src: &str) -> SourceFile {
        SourceFile::from_text("src/lib.rs", PathBuf::from("src/lib.rs"), src)
    }

    fn run_on(files: Vec<SourceFile>, roots: Vec<&str>) -> Vec<Finding> {
        let mut config = Config::bare(PathBuf::from("."));
        config.crate_roots = roots.into_iter().map(String::from).collect();
        check(&config, &files)
    }

    #[test]
    fn missing_attr_fires() {
        let out = run_on(
            vec![root_file("//! docs\npub fn f() {}\n")],
            vec!["src/lib.rs"],
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("forbid"));
    }

    #[test]
    fn present_attr_passes() {
        let out = run_on(
            vec![root_file(
                "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n",
            )],
            vec!["src/lib.rs"],
        );
        assert!(out.is_empty());
    }

    #[test]
    fn unsafe_token_fires_anywhere() {
        let f = SourceFile::from_text(
            "src/x.rs",
            PathBuf::from("src/x.rs"),
            "fn f() { unsafe { danger() } }\n",
        );
        let out = run_on(vec![f], vec![]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn unsafe_in_string_or_comment_ignored() {
        let f = SourceFile::from_text(
            "src/x.rs",
            PathBuf::from("src/x.rs"),
            "// unsafe is discussed here\nfn f() { let s = \"unsafe\"; }\n",
        );
        let out = run_on(vec![f], vec![]);
        assert!(out.is_empty());
    }
}
