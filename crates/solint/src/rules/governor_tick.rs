//! `governor-tick`: loops over events / sequences / postings in the
//! cataloged hot modules must contain a governor check.
//!
//! The governance contract (DESIGN.md §5) places a cooperative check in
//! every hot loop so over-limit queries abort within one check interval.
//! This rule re-derives "every hot loop" mechanically:
//!
//! * a **loop** is any `for` / `while` / `loop` in non-test code of a
//!   configured hot module;
//! * it is **hot** when its header (the `for PAT in EXPR` / `while COND`
//!   tokens) names hot data — an identifier whose last snake_case part,
//!   plural-folded, is one of [`crate::Config::hot_keywords`]
//!   (`event`, `row`, `seq`, `sid`, `posting`, `list`, `group`, …);
//! * it is **governed** when its body (nested loops included) mentions a
//!   [`crate::Config::governed_markers`] identifier — `tick`, `check_now`,
//!   `charge_cells`, `with_governor`, or any `*_governed` entry point.
//!
//! A hot, ungoverned loop is a finding unless escaped with a justified
//! `// solint: allow(governor-tick) <reason>` comment on the loop line or
//! the two lines above.

use crate::report::{Finding, Rule};
use crate::rules::last_name_part;
use crate::source::SourceFile;
use crate::Config;

/// Runs the rule over the configured hot modules.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for rel in &config.hot_modules {
        let Some(f) = crate::rules::file(files, rel) else {
            out.push(Finding::new(
                Rule::GovernorTick,
                rel,
                0,
                "cataloged hot module is missing from the scan",
            ));
            continue;
        };
        check_file(config, f, &mut out);
    }
    out
}

fn check_file(config: &Config, f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = f.tokens();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let Some(kw) = t.kind.ident() else {
            i += 1;
            continue;
        };
        if !matches!(kw, "for" | "while" | "loop") || f.is_test_line(t.line) {
            i += 1;
            continue;
        }
        let Some(lp) = parse_loop(f, i) else {
            i += 1;
            continue;
        };
        if header_is_hot(f, lp.header, &config.hot_keywords)
            && !body_is_governed(f, lp.body_open, lp.body_close, &config.governed_markers)
        {
            let finding = Finding::new(
                Rule::GovernorTick,
                &f.rel,
                t.line,
                format!(
                    "`{kw}` loop over hot data has no governor check \
                     (tick/check_now/charge_cells) in its body; govern it or \
                     escape with `// solint: allow(governor-tick) <reason>`"
                ),
            );
            out.push(if f.allowed(Rule::GovernorTick.id(), t.line) {
                finding.suppress()
            } else {
                finding
            });
        }
        // Continue scanning *inside* the body too (nested loops are
        // checked independently), so only advance past the header.
        i = lp.body_open + 1;
    }
}

struct Loop {
    /// Token range of the header (exclusive of the body `{`).
    header: (usize, usize),
    body_open: usize,
    body_close: usize,
}

/// Parses a loop starting at the keyword token `i`. Returns `None` for
/// non-loop uses of `for` (trait impls, HRTB `for<'a>`).
fn parse_loop(f: &SourceFile, i: usize) -> Option<Loop> {
    let toks = f.tokens();
    let kw = toks[i].kind.ident()?;
    match kw {
        "loop" => {
            let open = (i + 1 < toks.len() && toks[i + 1].kind.is_punct(b'{')).then_some(i + 1)?;
            let close = f.match_brace(open);
            Some(Loop {
                header: (i, open),
                body_open: open,
                body_close: close,
            })
        }
        "while" => {
            let open = find_body_open(toks, i + 1)?;
            let close = f.match_brace(open);
            Some(Loop {
                header: (i, open),
                body_open: open,
                body_close: close,
            })
        }
        "for" => {
            // HRTB `for<'a>` is not a loop.
            if i + 1 < toks.len() && toks[i + 1].kind.is_punct(b'<') {
                return None;
            }
            let open = find_body_open(toks, i + 1)?;
            // A loop-`for` has an `in` at bracket depth 0 before its body;
            // `impl Trait for Type {` does not.
            let mut depth = 0i32;
            let mut saw_in = false;
            for t in &toks[i + 1..open] {
                match &t.kind {
                    k if k.is_punct(b'(') || k.is_punct(b'[') => depth += 1,
                    k if k.is_punct(b')') || k.is_punct(b']') => depth -= 1,
                    k if depth == 0 && k.is_ident("in") => saw_in = true,
                    _ => {}
                }
            }
            if !saw_in {
                return None;
            }
            let close = f.match_brace(open);
            Some(Loop {
                header: (i, open),
                body_open: open,
                body_close: close,
            })
        }
        _ => None,
    }
}

/// First `{` at paren/bracket depth 0 after `from` (the loop body opener).
fn find_body_open(toks: &[crate::lexer::Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match &t.kind {
            k if k.is_punct(b'(') || k.is_punct(b'[') => depth += 1,
            k if k.is_punct(b')') || k.is_punct(b']') => depth -= 1,
            k if k.is_punct(b'{') && depth == 0 => return Some(j),
            k if k.is_punct(b';') && depth == 0 => return None,
            _ => {}
        }
    }
    None
}

fn header_is_hot(f: &SourceFile, header: (usize, usize), keywords: &[String]) -> bool {
    f.tokens()[header.0..header.1].iter().any(|t| {
        t.kind
            .ident()
            .is_some_and(|id| keywords.iter().any(|k| k == last_name_part(id)))
    })
}

fn body_is_governed(f: &SourceFile, open: usize, close: usize, markers: &[String]) -> bool {
    f.tokens()[open..=close].iter().any(|t| {
        t.kind.ident().is_some_and(|id| {
            markers.iter().any(|m| m == id) || id.ends_with("_governed") || id == "governed"
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_on(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_text("hot.rs", PathBuf::from("hot.rs"), src);
        let mut config = Config::bare(PathBuf::from("."));
        config.hot_modules = vec!["hot.rs".into()];
        let mut out = Vec::new();
        check_file(&config, &f, &mut out);
        out
    }

    #[test]
    fn ungoverned_hot_loop_fires() {
        let out =
            run_on("fn f() {\n    for seq in &group.sequences {\n        touch(seq);\n    }\n}\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn governed_loop_passes() {
        for marker in ["gov.tick()?", "gov.check_now()?", "gov.charge_cells(1)?"] {
            let src = format!("fn f() {{\n    for row in rows {{\n        {marker};\n    }}\n}}\n");
            assert!(run_on(&src).is_empty(), "{marker}");
        }
    }

    #[test]
    fn governed_entry_point_counts() {
        let out = run_on(
            "fn f() {\n    for seqs in chunks {\n        build_index_governed(db, seqs)?;\n    }\n}\n",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn nested_inner_check_governs_outer() {
        let out = run_on(
            "fn f() {\n    for group in groups {\n        for sid in sids {\n            gov.tick()?;\n        }\n    }\n}\n",
        );
        assert!(out.is_empty(), "outer body contains the inner tick");
    }

    #[test]
    fn nested_inner_loop_checked_independently() {
        let out = run_on(
            "fn f() {\n    for group in groups {\n        gov.check_now()?;\n        x();\n    }\n    for sid in sids {\n        nothing();\n    }\n}\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 6);
    }

    #[test]
    fn cold_loops_ignored() {
        let out = run_on(
            "fn f() {\n    for d in 0..n {\n        x();\n    }\n    for (cell, state) in states {\n        y();\n    }\n    while k < m {\n        z();\n    }\n}\n",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn escape_comment_suppresses() {
        let out = run_on(
            "fn f() {\n    // solint: allow(governor-tick) bounded by already-charged cells\n    for seq in seqs {\n        touch(seq);\n    }\n}\n",
        );
        // The finding is still produced (stale-escape proves escapes
        // against it) but marked suppressed.
        assert_eq!(out.len(), 1);
        assert!(out[0].suppressed);
    }

    #[test]
    fn escape_without_reason_rejected() {
        let out = run_on(
            "fn f() {\n    // solint: allow(governor-tick)\n    for seq in seqs {\n        touch(seq);\n    }\n}\n",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let out = run_on("impl Iterator for EventList {\n    fn next(&mut self) {}\n}\n");
        assert!(out.is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let out = run_on(
            "#[cfg(test)]\nmod tests {\n    fn t() {\n        for seq in seqs {\n            x();\n        }\n    }\n}\n",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn while_let_over_postings_fires() {
        let out = run_on(
            "fn f() {\n    while let Some(p) = postings.next() {\n        x(p);\n    }\n}\n",
        );
        assert_eq!(out.len(), 1);
    }
}
