//! `stale-escape`: every `// solint: allow(rule) reason` comment must
//! still cover a live finding.
//!
//! Escapes are point-in-time waivers; when the code they excused is
//! rewritten, the comment lingers and silently licenses future
//! violations at that site. This rule runs after every other rule, sees
//! the *suppressed* findings too, and flags:
//!
//! * an escape whose rule would no longer fire on the lines it covers
//!   (the escape line and the two below — the mirror of
//!   [`SourceFile::allowed`]);
//! * an escape naming a rule solint doesn't have (typo'd escapes
//!   suppress nothing, silently);
//! * an escape with no justification after the closing paren (it
//!   suppresses nothing either — [`SourceFile::allowed`] requires one).
//!
//! Only comments that *lead* with `solint: allow(` count as escapes;
//! prose that quotes the syntax mid-comment (like this module doc) is
//! ignored.

use crate::report::{Finding, Rule};
use crate::source::SourceFile;
use crate::Config;

/// Runs after all other rules, over their complete (unsuppressed +
/// suppressed) finding set.
pub fn check(_config: &Config, files: &[SourceFile], findings: &[Finding]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if f.is_test_file() {
            continue;
        }
        for (line, text) in &f.lexed.comments {
            let Some((rule_id, rest)) = parse_escape(text) else {
                continue;
            };
            if f.is_test_line(*line) {
                continue; // rules skip test code; escapes there are inert
            }
            if !Rule::ALL.iter().any(|r| r.id() == rule_id) {
                out.push(Finding::new(
                    Rule::StaleEscape,
                    &f.rel,
                    *line,
                    format!(
                        "escape names unknown rule `{rule_id}` — it \
                         suppresses nothing"
                    ),
                ));
                continue;
            }
            if rest.trim().is_empty() {
                out.push(Finding::new(
                    Rule::StaleEscape,
                    &f.rel,
                    *line,
                    format!(
                        "escape for `{rule_id}` has no justification — a \
                         reason after the closing paren is required for it \
                         to take effect"
                    ),
                ));
                continue;
            }
            let covered = findings.iter().any(|fd| {
                fd.rule.id() == rule_id && fd.file == f.rel && (*line..=line + 2).contains(&fd.line)
            });
            if !covered {
                out.push(Finding::new(
                    Rule::StaleEscape,
                    &f.rel,
                    *line,
                    format!(
                        "`solint: allow({rule_id})` escape is stale — the \
                         rule no longer fires on the lines it covers; \
                         delete the comment"
                    ),
                ));
            }
        }
    }
    out
}

/// Parses a comment as an escape: after the comment markers it must
/// *start* with `solint: allow(<rule>)`. Returns the rule id and the
/// trailing justification text.
fn parse_escape(comment: &str) -> Option<(&str, &str)> {
    let body = comment.trim_start_matches(['/', '!']).trim_start();
    let rest = body.strip_prefix("solint: allow(")?;
    let close = rest.find(')')?;
    Some((&rest[..close], &rest[close + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_on(src: &str, findings: &[Finding]) -> Vec<Finding> {
        let f = SourceFile::from_text("src/x.rs", PathBuf::from("src/x.rs"), src);
        let config = Config::bare(PathBuf::from("."));
        check(&config, &[f], findings)
    }

    #[test]
    fn live_escape_passes() {
        let src = "// solint: allow(governor-tick) bounded by charged cells\nfor seq in seqs {}\n";
        let covered = vec![Finding::new(Rule::GovernorTick, "src/x.rs", 2, "x").suppress()];
        assert!(run_on(src, &covered).is_empty());
    }

    #[test]
    fn stale_escape_fires() {
        let src = "// solint: allow(governor-tick) the loop below was removed\nfn f() {}\n";
        let out = run_on(src, &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
        assert!(out[0].message.contains("stale"));
    }

    #[test]
    fn finding_outside_coverage_window_does_not_count() {
        let src = "// solint: allow(governor-tick) reason\n\n\n\nfor seq in seqs {}\n";
        let covered = vec![Finding::new(Rule::GovernorTick, "src/x.rs", 5, "x")];
        let out = run_on(src, &covered);
        assert_eq!(out.len(), 1, "line 5 is beyond the 3-line window");
    }

    #[test]
    fn unknown_rule_fires() {
        let out = run_on("// solint: allow(no-such-rule) whatever\n", &[]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unknown rule"));
    }

    #[test]
    fn reasonless_escape_fires() {
        let out = run_on("// solint: allow(governor-tick)\n", &[]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("justification"));
    }

    #[test]
    fn prose_mentioning_escapes_ignored() {
        let src =
            "//! escape with `// solint: allow(governor-tick) <reason>` comments\nfn f() {}\n";
        assert!(run_on(src, &[]).is_empty());
    }

    #[test]
    fn doc_comment_leading_with_escape_counts() {
        let out = run_on(
            "/// solint: allow(governor-tick) docs do count\nfn f() {}\n",
            &[],
        );
        assert_eq!(out.len(), 1, "leading escape in a doc comment is parsed");
    }
}
