//! `lock-order`: every Mutex/RwLock in engine code carries a declared
//! rank in `locks.toml`, and no execution path may block on a lock whose
//! rank is not strictly greater than one it already holds.
//!
//! Rank monotonicity implies deadlock freedom: a cycle of waiting threads
//! needs some thread to block on a rank ≤ one it holds, which this rule
//! (statically) and the `SOLAP_LOCK_WITNESS` shim (dynamically) both
//! forbid. Findings:
//!
//! * **unranked lock** — a `Mutex`/`RwLock`/`Condvar` declaration with no
//!   `locks.toml` entry (file + field keyed);
//! * **manifest drift** — a `locks.toml` entry whose declaration no
//!   longer exists (rename without updating the manifest);
//! * **rank inversion** — a blocking acquire of rank ≤ a held rank,
//!   either directly in one fn or through the (approximate) call graph;
//! * **cycle** — a cycle among lock-order *edges*, which can only exist
//!   when inversions were escaped; cycles are never escapable.
//!
//! Individual inversions escape with
//! `// solint: allow(lock-order) <reason>` at the inner acquisition (or
//! call) site; the witness still checks them at runtime.

use std::collections::{BTreeMap, BTreeSet};

use crate::report::{Finding, Rule};
use crate::rules::lockgraph::{self, World};
use crate::source::SourceFile;
use crate::Config;

/// Runs the rule when a `locks.toml` is configured.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let world = match lockgraph::build(config, files) {
        Ok(w) => w,
        Err(findings) => return findings,
    };
    let mut out = Vec::new();

    for u in &world.unranked {
        let f = &files[u.file];
        let finding = Finding::new(
            Rule::LockOrder,
            &f.rel,
            u.line,
            format!(
                "`{}` field `{}` has no rank in locks.toml — declare it \
                 (rank, kind, file, field) so the hierarchy stays total",
                u.kind, u.field
            ),
        );
        out.push(if f.allowed(Rule::LockOrder.id(), u.line) {
            finding.suppress()
        } else {
            finding
        });
    }

    let Some(manifest_rel) = &config.locks_manifest else {
        return out;
    };
    for &eidx in &world.drifted {
        let e = &world.manifest[eidx];
        out.push(Finding::new(
            Rule::LockOrder,
            manifest_rel,
            e.line,
            format!(
                "`{}`: no `{}` declaration found in {} — locks.toml is out \
                 of date",
                e.name, e.field, e.file
            ),
        ));
    }

    let edges = collect_edges(&world, files);
    report_inversions(&world, files, &edges, &mut out);
    report_cycles(&world, files, &edges, &mut out);
    out
}

/// One ordered acquisition: `to` is blocking-acquired while `from` is
/// held, observed at `file`/`line` (the inner acquire or the call site).
struct Edge {
    from: usize,
    to: usize,
    file: usize,
    line: usize,
    /// The callee's own acquisition site when the edge crosses a call.
    via: Option<(usize, usize)>, // (file, line)
}

/// Every lock-order edge: direct nesting within one fn, plus nesting
/// through resolved calls made while a guard is live.
fn collect_edges(world: &World, files: &[SourceFile]) -> Vec<Edge> {
    let mut edges = Vec::new();
    let mut seen: BTreeSet<(usize, usize, usize, usize)> = BTreeSet::new();
    for outer in &world.sites {
        let range = (outer.tok + 1)..outer.range_end;
        // Direct: another blocking acquire in the same fn inside the
        // guard's extent. (try_* outer holds constrain too — a held lock
        // is held no matter how it was acquired.)
        for inner in &world.sites {
            if inner.fn_idx == outer.fn_idx && inner.blocking && range.contains(&inner.tok) {
                let file = world.fns[outer.fn_idx].file;
                if seen.insert((outer.entry, inner.entry, file, inner.line)) {
                    edges.push(Edge {
                        from: outer.entry,
                        to: inner.entry,
                        file,
                        line: inner.line,
                        via: None,
                    });
                }
            }
        }
        // Through calls: everything the callee transitively acquires is
        // acquired under the outer guard.
        for call in &world.calls {
            if call.fn_idx != outer.fn_idx || !range.contains(&call.tok) {
                continue;
            }
            let file = world.fns[outer.fn_idx].file;
            let line = files[file].tokens()[call.tok].line;
            for &entry in &world.acquired[call.callee] {
                let via = world
                    .acquired_site
                    .get(&(call.callee, entry))
                    .map(|&s| (world.fns[world.sites[s].fn_idx].file, world.sites[s].line));
                if seen.insert((outer.entry, entry, file, line)) {
                    edges.push(Edge {
                        from: outer.entry,
                        to: entry,
                        file,
                        line,
                        via,
                    });
                }
            }
        }
    }
    edges
}

fn report_inversions(world: &World, files: &[SourceFile], edges: &[Edge], out: &mut Vec<Finding>) {
    for e in edges {
        let (from, to) = (&world.manifest[e.from], &world.manifest[e.to]);
        if to.rank > from.rank {
            continue;
        }
        let f = &files[e.file];
        let what = if e.from == e.to {
            format!(
                "re-acquiring `{}` (rank {}) while already holding it would \
                 self-deadlock",
                to.name, to.rank
            )
        } else {
            let via = match e.via {
                Some((vf, vl)) => format!(" via this call (acquired at {}:{})", files[vf].rel, vl),
                None => String::new(),
            };
            format!(
                "acquiring `{}` (rank {}){} while holding `{}` (rank {}) \
                 inverts the lock hierarchy — ranks must strictly increase \
                 (locks.toml / DESIGN.md §14)",
                to.name, to.rank, via, from.name, from.rank
            )
        };
        let finding = Finding::new(Rule::LockOrder, &f.rel, e.line, what);
        out.push(if f.allowed(Rule::LockOrder.id(), e.line) {
            finding.suppress()
        } else {
            finding
        });
    }
}

/// Cycle detection over *all* edges, escaped or not: an escape silences
/// one inversion report, but a set of escapes that closes a cycle
/// re-introduces deadlock and is flagged unconditionally.
fn report_cycles(world: &World, files: &[SourceFile], edges: &[Edge], out: &mut Vec<Finding>) {
    // Adjacency between distinct entries; self-loops are already reported
    // as re-acquisition inversions.
    let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    let mut site: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
    for e in edges {
        if e.from != e.to {
            adj.entry(e.from).or_default().insert(e.to);
            site.entry((e.from, e.to)).or_insert((e.file, e.line));
        }
    }
    // DFS cycle detection with path recovery (the graph has ≤ a few dozen
    // nodes; simplicity over Tarjan).
    let nodes: Vec<usize> = adj.keys().copied().collect();
    let mut reported: BTreeSet<Vec<usize>> = BTreeSet::new();
    for &start in &nodes {
        let mut stack = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            let Some(nexts) = adj.get(&node) else {
                continue;
            };
            for &next in nexts {
                if next == start {
                    // Canonicalize (rotate to min) to report each cycle once.
                    let mut cyc = path.clone();
                    let minpos = cyc
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, v)| **v)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cyc.rotate_left(minpos);
                    if !reported.insert(cyc.clone()) {
                        continue;
                    }
                    let names: Vec<String> = cyc
                        .iter()
                        .chain(cyc.first())
                        .map(|&i| format!("`{}`", world.manifest[i].name))
                        .collect();
                    let &(file, line) = site.get(&(node, start)).unwrap_or(&(0, 0));
                    out.push(Finding::new(
                        Rule::LockOrder,
                        &files[file].rel,
                        line,
                        format!(
                            "lock-order cycle {} — a deadlock is reachable \
                             even though each inversion is escaped; cycles \
                             cannot be escaped",
                            names.join(" → ")
                        ),
                    ));
                } else if !path.contains(&next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn cfg_with(root: &str) -> Config {
        let mut config = Config::bare(PathBuf::from(root));
        config.locks_manifest = Some("locks.toml".into());
        config.lock_dirs = vec!["src/".into()];
        config
    }

    fn run_mem(manifest: &str, src: &str) -> Vec<Finding> {
        // Scratch tree under the workspace target dir (kept inside the
        // repo); unique per call so parallel tests don't collide.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!(
            "../../target/solint-lock-order-tests/{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::write(dir.join("locks.toml"), manifest).unwrap();
        std::fs::write(dir.join("src/a.rs"), src).unwrap();
        let config = cfg_with(dir.to_str().unwrap());
        let files = vec![SourceFile::from_text("src/a.rs", dir.join("src/a.rs"), src)];
        let out = check(&config, &files);
        let _ = std::fs::remove_dir_all(&dir);
        out
    }

    const MANIFEST: &str = r#"
[[lock]]
name = "a.low"
rank = 10
kind = "mutex"
file = "src/a.rs"
field = "low"
event_loop = false
doc = "low"

[[lock]]
name = "a.high"
rank = 20
kind = "mutex"
file = "src/a.rs"
field = "high"
event_loop = false
doc = "high"
"#;

    const DECLS: &str = "use parking_lot::Mutex;\n\
                         pub struct S {\n    low: Mutex<u32>,\n    high: Mutex<u32>,\n}\n";

    #[test]
    fn ascending_order_passes() {
        let src = format!(
            "{DECLS}impl S {{\n    fn ok(&self) {{\n        let a = self.low.lock();\n        let b = self.high.lock();\n        drop(b);\n        drop(a);\n    }}\n}}\n"
        );
        let out = run_mem(MANIFEST, &src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn direct_inversion_fires_at_inner_line() {
        let src = format!(
            "{DECLS}impl S {{\n    fn bad(&self) {{\n        let b = self.high.lock();\n        let a = self.low.lock();\n    }}\n}}\n"
        );
        let out = run_mem(MANIFEST, &src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 9, "inner acquire line");
        assert!(out[0].message.contains("inverts"));
    }

    #[test]
    fn inversion_through_helper_call_fires() {
        let src = format!(
            "{DECLS}impl S {{\n    fn outer(&self) {{\n        let b = self.high.lock();\n        self.helper();\n    }}\n    fn helper(&self) {{\n        let a = self.low.lock();\n    }}\n}}\n"
        );
        let out = run_mem(MANIFEST, &src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 9, "call site line");
        assert!(
            out[0].message.contains("via this call"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn guard_dropped_before_inner_acquire_passes() {
        let src = format!(
            "{DECLS}impl S {{\n    fn ok(&self) {{\n        let b = self.high.lock();\n        drop(b);\n        let a = self.low.lock();\n    }}\n}}\n"
        );
        let out = run_mem(MANIFEST, &src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn temporary_guard_releases_at_statement_end() {
        let src = format!(
            "{DECLS}impl S {{\n    fn ok(&self) {{\n        *self.high.lock() += 1;\n        let a = self.low.lock();\n    }}\n}}\n"
        );
        let out = run_mem(MANIFEST, &src);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unranked_lock_fires() {
        let src = "use parking_lot::Mutex;\npub struct S {\n    mystery: Mutex<u32>,\n}\n";
        let out = run_mem(MANIFEST, src);
        assert!(out
            .iter()
            .any(|f| f.line == 3 && f.message.contains("no rank")));
    }

    #[test]
    fn manifest_drift_fires() {
        let out = run_mem(MANIFEST, "pub struct S;\n");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| f.message.contains("out of date")));
    }

    #[test]
    fn escaped_inversion_suppressed_but_cycle_still_fires() {
        let src = format!(
            "{DECLS}impl S {{\n    fn ab(&self) {{\n        let a = self.low.lock();\n        // solint: allow(lock-order) demo of an escaped edge\n        let b = self.high.lock();\n    }}\n    fn ba(&self) {{\n        let b = self.high.lock();\n        // solint: allow(lock-order) closes the loop\n        let a = self.low.lock();\n    }}\n}}\n"
        );
        let out = run_mem(MANIFEST, &src);
        let visible: Vec<_> = out.iter().filter(|f| !f.suppressed).collect();
        assert_eq!(visible.len(), 1, "{out:?}");
        assert!(
            visible[0].message.contains("cycle"),
            "{}",
            visible[0].message
        );
        assert!(out.iter().any(|f| f.suppressed), "inversion was escaped");
    }

    #[test]
    fn try_acquire_as_inner_is_not_flagged() {
        let src = format!(
            "{DECLS}impl S {{\n    fn ok(&self) {{\n        let b = self.high.lock();\n        if let Some(a) = self.low.try_lock() {{\n            drop(a);\n        }}\n    }}\n}}\n"
        );
        let out = run_mem(MANIFEST, &src);
        assert!(out.is_empty(), "try_lock cannot block: {out:?}");
    }
}
