//! `doc-failpoints`: the set of `fail_point!("site")` call sites in
//! non-test engine code must equal the DESIGN.md §5 failpoint catalog.
//!
//! Code side: every `fail_point ! ( "name" …` invocation. Test code is
//! excluded — the catalog documents engine sites, not test scaffolding.
//! Doc side: the markdown table following the `| Site | Location |`
//! header. Mismatches report file:line on both sides.

use std::collections::BTreeMap;

use crate::report::{Finding, Rule};
use crate::rules::doc::{load_doc, table_names};
use crate::source::SourceFile;
use crate::Config;

/// Collects `fail_point!("name")` sites: name → occurrences (file, line).
pub fn code_sites(files: &[SourceFile]) -> BTreeMap<String, Vec<(String, usize)>> {
    let mut out: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    for f in files {
        if f.is_test_file() {
            continue;
        }
        let toks = f.tokens();
        for i in 0..toks.len() {
            if !toks[i].kind.is_ident("fail_point") {
                continue;
            }
            if !(i + 3 < toks.len()
                && toks[i + 1].kind.is_punct(b'!')
                && toks[i + 2].kind.is_punct(b'('))
            {
                continue;
            }
            let line = toks[i].line;
            if f.is_test_line(line) {
                continue;
            }
            if let Some(name) = toks[i + 3].kind.str_lit() {
                out.entry(name.to_string())
                    .or_default()
                    .push((f.rel.clone(), line));
            }
        }
    }
    out
}

/// Compares the call sites against the DESIGN.md catalog.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let Some(rel) = &config.design_md else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let Some(doc) = load_doc(config, rel, Rule::DocFailpoints, &mut out) else {
        return out;
    };
    let cataloged = table_names(&doc, "| Site |");
    if cataloged.is_empty() {
        out.push(Finding::new(
            Rule::DocFailpoints,
            rel,
            0,
            "no `| Site | Location |` failpoint table found in §5",
        ));
        return out;
    }
    let sites = code_sites(files);
    for (name, occurrences) in &sites {
        if !cataloged.contains_key(name) {
            let (file, line) = &occurrences[0];
            out.push(Finding::new(
                Rule::DocFailpoints,
                file,
                *line,
                format!("fail_point!(\"{name}\") is not in the {rel} §5 catalog — add a table row"),
            ));
        }
    }
    for (name, doc_line) in &cataloged {
        if !sites.contains_key(name) {
            out.push(Finding::new(
                Rule::DocFailpoints,
                rel,
                *doc_line,
                format!("catalog row `{name}` has no fail_point!(\"{name}\") call site in code"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn sites_collected_with_locations() {
        let f = SourceFile::from_text(
            "crates/x/src/a.rs",
            PathBuf::from("a.rs"),
            "fn f() {\n    fail_point!(\"cb.group\")?;\n    fail_point!(\"cb.group\")?;\n    fail_point!(\"ii.verify\")?;\n}\n",
        );
        let sites = code_sites(&[f]);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites["cb.group"].len(), 2);
        assert_eq!(sites["ii.verify"][0].1, 4);
    }

    #[test]
    fn test_sites_excluded() {
        let f = SourceFile::from_text(
            "crates/x/src/a.rs",
            PathBuf::from("a.rs"),
            "#[cfg(test)]\nmod tests {\n    fn t() { fail_point!(\"test.only\")?; }\n}\n",
        );
        assert!(code_sites(&[f]).is_empty());
    }

    #[test]
    fn macro_definition_not_a_site() {
        let f = SourceFile::from_text(
            "crates/x/src/failpoint.rs",
            PathBuf::from("failpoint.rs"),
            "macro_rules! fail_point {\n    ($name:expr) => {};\n}\n",
        );
        assert!(code_sites(&[f]).is_empty());
    }
}
