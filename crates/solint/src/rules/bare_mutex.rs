//! `no-bare-mutex`: engine code must take locks through the
//! poison-recovering `parking_lot` shim, never `std::sync::Mutex` /
//! `std::sync::RwLock` directly.
//!
//! The panic-isolation contract (DESIGN.md §5) relies on every shared
//! structure staying usable after a worker panic; the shim's locks recover
//! from poisoning, `std::sync`'s propagate it. The rule flags any
//! `std::sync` path or use-list that names `Mutex`/`RwLock` in non-test
//! code of the configured directories. Deliberate uses (e.g. a cold
//! registry configured before queries run) escape with
//! `// solint: allow(no-bare-mutex) <reason>`.

use crate::report::{Finding, Rule};
use crate::rules::in_dirs;
use crate::source::SourceFile;
use crate::Config;

/// Runs the rule over files under the configured directories.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !in_dirs(&f.rel, &config.mutex_dirs) || f.is_test_file() {
            continue;
        }
        check_file(f, &mut out);
    }
    out
}

fn check_file(f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = f.tokens();
    for i in 0..toks.len() {
        // `std :: sync :: …` — either a use declaration or an inline path.
        if !(toks[i].kind.is_ident("std")
            && i + 4 < toks.len()
            && toks[i + 1].kind.is_punct(b':')
            && toks[i + 2].kind.is_punct(b':')
            && toks[i + 3].kind.is_ident("sync")
            && toks[i + 4].kind.is_punct(b':'))
        {
            continue;
        }
        // Scan the rest of the path / use-list (bounded) for the banned
        // type names. Stops at `;` so a single `use` line is one unit.
        for t in toks.iter().skip(i + 5).take(40) {
            if t.kind.is_punct(b';') {
                break;
            }
            let Some(id) = t.kind.ident() else { continue };
            if id != "Mutex" && id != "RwLock" {
                continue;
            }
            if f.is_test_line(t.line) {
                continue;
            }
            let finding = Finding::new(
                Rule::NoBareMutex,
                &f.rel,
                t.line,
                format!(
                    "`std::sync::{id}` poisons on panic — use the parking_lot \
                     shim's `{id}` (shims/parking_lot), or escape with \
                     `// solint: allow(no-bare-mutex) <reason>`"
                ),
            );
            out.push(if f.allowed(Rule::NoBareMutex.id(), t.line) {
                finding.suppress()
            } else {
                finding
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run_on(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_text("x.rs", PathBuf::from("x.rs"), src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        out
    }

    #[test]
    fn use_decl_fires() {
        let out = run_on("use std::sync::Mutex;\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("Mutex"));
    }

    #[test]
    fn use_list_fires_per_name() {
        let out = run_on("use std::sync::{Mutex, OnceLock, RwLock};\n");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn inline_path_fires() {
        let out = run_on("fn f() { let m = std::sync::Mutex::new(0); }\n");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn atomics_and_arc_pass() {
        let out = run_on(
            "use std::sync::atomic::{AtomicU64, Ordering};\nuse std::sync::{Arc, OnceLock};\n",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn shim_lock_passes() {
        let out = run_on("use parking_lot::Mutex;\nfn f() { let m = Mutex::new(0); }\n");
        assert!(out.is_empty());
    }

    #[test]
    fn escape_suppresses() {
        let out = run_on(
            "// solint: allow(no-bare-mutex) cold registry, configured before queries run\nuse std::sync::Mutex;\n",
        );
        // Produced for stale-escape bookkeeping, but suppressed.
        assert_eq!(out.len(), 1);
        assert!(out[0].suppressed);
    }

    #[test]
    fn test_code_ignored() {
        let out = run_on("#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n");
        assert!(out.is_empty());
    }
}
