//! `doc-knobs`: every `SOLAP_*` environment variable the workspace reads
//! must have a row in the README knob table, and every `SOLAP_*` knob the
//! table documents must actually be read somewhere.
//!
//! Code side: `env::var("SOLAP_…")` / `env::var_os("SOLAP_…")` calls —
//! test files included, because test-only knobs (`SOLAP_BLESS`) are still
//! user-facing. Doc side: `SOLAP_…` names on the README's table lines
//! (lines starting with `|`).

use std::collections::BTreeMap;

use crate::report::{Finding, Rule};
use crate::source::SourceFile;
use crate::Config;

/// Every `SOLAP_*` env read: name → occurrences (file, line).
pub fn code_reads(files: &[SourceFile]) -> BTreeMap<String, Vec<(String, usize)>> {
    let mut out: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    for f in files {
        let toks = f.tokens();
        for i in 0..toks.len() {
            let is_read = toks[i]
                .kind
                .ident()
                .is_some_and(|id| id == "var" || id == "var_os");
            if !is_read || i + 2 >= toks.len() || !toks[i + 1].kind.is_punct(b'(') {
                continue;
            }
            let Some(lit) = toks[i + 2].kind.str_lit() else {
                continue;
            };
            if lit.starts_with("SOLAP_") {
                out.entry(lit.to_string())
                    .or_default()
                    .push((f.rel.clone(), toks[i].line));
            }
        }
    }
    out
}

/// `SOLAP_*` names on the README's table lines: name → 1-based line.
fn documented_knobs(lines: &[String]) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for (idx, line) in lines.iter().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        for name in solap_names(line) {
            out.entry(name).or_insert(idx + 1);
        }
    }
    out
}

/// Extracts every `SOLAP_[A-Z0-9_]+` substring of `text`.
fn solap_names(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("SOLAP_") {
        let tail = &rest[pos..];
        let end = tail
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(tail.len());
        out.push(tail[..end].trim_end_matches('_').to_string());
        rest = &tail[end.max(6)..];
    }
    out
}

/// Compares env reads against the README knob table.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let Some(rel) = &config.readme_md else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let Some(doc) = crate::rules::doc::load_doc(config, rel, Rule::DocKnobs, &mut out) else {
        return out;
    };
    let documented = documented_knobs(&doc);
    let reads = code_reads(files);
    for (name, occurrences) in &reads {
        if !documented.contains_key(name) {
            let (file, line) = &occurrences[0];
            out.push(Finding::new(
                Rule::DocKnobs,
                file,
                *line,
                format!("env knob `{name}` is read here but has no row in the {rel} knob table"),
            ));
        }
    }
    for (name, line) in &documented {
        if !reads.contains_key(name) {
            out.push(Finding::new(
                Rule::DocKnobs,
                rel,
                *line,
                format!("documented knob `{name}` is never read in the workspace"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn reads_collected() {
        let f = SourceFile::from_text(
            "src/a.rs",
            PathBuf::from("a.rs"),
            "fn f() {\n    let t = std::env::var(\"SOLAP_THREADS\");\n    let b = env::var_os(\"SOLAP_BLESS\");\n    let other = env::var(\"HOME\");\n}\n",
        );
        let reads = code_reads(&[f]);
        assert_eq!(reads.len(), 2);
        assert_eq!(reads["SOLAP_THREADS"][0].1, 2);
        assert_eq!(reads["SOLAP_BLESS"][0].1, 3);
    }

    #[test]
    fn table_lines_only() {
        let lines: Vec<String> = [
            "set `SOLAP_PROSE_ONLY` to taste",
            "| Worker threads | `.threads N` | `SOLAP_THREADS` |",
            "| Fault injection | — | `SOLAP_FAILPOINTS=site=error` |",
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let d = documented_knobs(&lines);
        assert_eq!(d.len(), 2);
        assert_eq!(d["SOLAP_THREADS"], 2);
        assert!(d.contains_key("SOLAP_FAILPOINTS"));
        assert!(!d.contains_key("SOLAP_PROSE_ONLY"));
    }

    #[test]
    fn name_extraction_stops_at_delimiters() {
        assert_eq!(
            solap_names("`SOLAP_FAILPOINTS=x` and SOLAP_TRACE=json"),
            vec!["SOLAP_FAILPOINTS", "SOLAP_TRACE"]
        );
    }
}
