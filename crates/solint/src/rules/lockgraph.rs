//! The shared lock-analysis model behind `lock-order` and
//! `no-blocking-in-event-loop`: declared locks, acquisition sites with
//! approximate guard lifetimes, a function table, and a name-resolved
//! call graph — all derived from solint's flat token stream.
//!
//! The approximation is deliberately simple and its bias is documented:
//!
//! * **guard lifetimes** over-approximate (a `let`-bound guard is held to
//!   the end of its enclosing block unless an explicit `drop(g)` appears;
//!   a temporary to the end of its statement), so the analysis may report
//!   an ordering edge the program never executes, never miss one it does;
//! * **call edges** under-approximate (calls resolve only through
//!   `self.m()` on a known impl type or a workspace-unique simple name),
//!   so chains through trait objects or popular method names are
//!   invisible — the runtime lock witness (shims/parking_lot) is the
//!   backstop there.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Token;
use crate::manifest::{self, LockEntry, LockKind};
use crate::report::{Finding, Rule};
use crate::rules::in_dirs;
use crate::source::SourceFile;
use crate::Config;

/// Type/static wrappers that may sit between a field name and its lock
/// type in a declaration (`queue: Arc<Mutex<…>>`).
const WRAPPERS: [&str; 4] = ["Arc", "OnceLock", "Box", "Lazy"];

/// One function (or method) with its body extent.
pub(crate) struct FnInfo {
    /// Index into the scanned file list.
    pub file: usize,
    /// Bare name.
    pub simple: String,
    /// Enclosing `impl` type, when inside one.
    pub impl_type: Option<String>,
    /// Token index of the body `{` / matching `}`.
    pub body_open: usize,
    pub body_close: usize,
}

/// One resolved lock acquisition.
pub(crate) struct Site {
    /// Index into [`World::fns`].
    pub fn_idx: usize,
    /// Index into [`World::manifest`].
    pub entry: usize,
    /// Token index of the `lock`/`read`/`write` method ident.
    pub tok: usize,
    /// Source line.
    pub line: usize,
    /// Token index (exclusive) where the guard is conservatively released.
    pub range_end: usize,
    /// `lock()`/`read()`/`write()` (true) vs `try_*` (false) — only a
    /// blocking acquire can deadlock as the *inner* lock.
    pub blocking: bool,
}

/// One resolved call edge.
pub(crate) struct Call {
    /// Caller index into [`World::fns`].
    pub fn_idx: usize,
    /// Token index of the callee name at the call site.
    pub tok: usize,
    /// Callee index into [`World::fns`].
    pub callee: usize,
}

/// An undeclared (unranked) lock declaration.
pub(crate) struct Unranked {
    pub file: usize,
    pub line: usize,
    pub field: String,
    pub kind: &'static str,
}

/// The assembled analysis world.
pub(crate) struct World {
    pub manifest: Vec<LockEntry>,
    pub fns: Vec<FnInfo>,
    pub sites: Vec<Site>,
    pub calls: Vec<Call>,
    pub unranked: Vec<Unranked>,
    /// Manifest entries (by index) with no matching declaration found.
    pub drifted: Vec<usize>,
    /// Entry set (by manifest index) transitively blocking-acquired per fn.
    pub acquired: Vec<BTreeSet<usize>>,
    /// Representative direct acquisition site per (fn, entry), for
    /// file:line reporting through call chains.
    pub acquired_site: BTreeMap<(usize, usize), usize>,
}

/// A call site awaiting resolution against the complete fn table.
struct RawCall {
    fn_idx: usize,
    tok: usize,
    name: String,
    self_call: bool,
}

/// Builds the world, or returns manifest problems as findings. An empty
/// error vec means the rule is unconfigured (no manifest path).
pub(crate) fn build(config: &Config, files: &[SourceFile]) -> Result<World, Vec<Finding>> {
    let Some(manifest_rel) = &config.locks_manifest else {
        return Err(Vec::new());
    };
    let manifest = match manifest::load(&config.root.join(manifest_rel)) {
        Ok(m) => m,
        Err(e) => {
            let (line, msg) = e.split_once(": ").unwrap_or(("0", e.as_str()));
            return Err(vec![Finding::new(
                Rule::LockOrder,
                manifest_rel,
                line.parse().unwrap_or(0),
                msg.to_string(),
            )]);
        }
    };

    let mut world = World {
        manifest,
        fns: Vec::new(),
        sites: Vec::new(),
        calls: Vec::new(),
        unranked: Vec::new(),
        drifted: Vec::new(),
        acquired: Vec::new(),
        acquired_site: BTreeMap::new(),
    };

    let mut declared: BTreeSet<usize> = BTreeSet::new();
    for (fidx, f) in files.iter().enumerate() {
        if lockable(config, f) {
            discover_decls(&mut world, f, fidx, &mut declared);
        }
        collect_fns(&mut world, f, fidx);
    }
    for i in 0..world.manifest.len() {
        if !declared.contains(&i) {
            world.drifted.push(i);
        }
    }

    // `accessor().lock()` resolution: a fn whose body declares a manifest
    // lock as a `static` (the failpoint `registry()` pattern) returns it.
    let mut lock_accessors: BTreeMap<String, usize> = BTreeMap::new();
    for info in &world.fns {
        let toks = files[info.file].tokens();
        for (eidx, e) in world.manifest.iter().enumerate() {
            if e.file == files[info.file].rel
                && e.kind != LockKind::Condvar
                && is_static_decl_inside(toks, info.body_open, info.body_close, &e.field)
            {
                lock_accessors.insert(info.simple.clone(), eidx);
            }
        }
    }

    let mut raw_calls: Vec<RawCall> = Vec::new();
    for (fidx, f) in files.iter().enumerate() {
        if lockable(config, f) {
            collect_sites(&mut world, f, fidx, &lock_accessors);
        }
        collect_calls(&world, f, fidx, &mut raw_calls);
    }

    resolve_call_targets(&mut world, &raw_calls);
    compute_closures(&mut world);
    Ok(world)
}

fn lockable(config: &Config, f: &SourceFile) -> bool {
    in_dirs(&f.rel, &config.lock_dirs) && !f.is_test_file()
}

/// Whether `static FIELD :` appears between the body tokens.
fn is_static_decl_inside(toks: &[Token], open: usize, close: usize, field: &str) -> bool {
    (open..close.saturating_sub(2)).any(|i| {
        toks[i].kind.is_ident("static")
            && toks[i + 1].kind.is_ident(field)
            && toks[i + 2].kind.is_punct(b':')
    })
}

/// Finds Mutex/RwLock/Condvar declarations and matches them against the
/// manifest; unmatched ones become `unranked`.
fn discover_decls(world: &mut World, f: &SourceFile, fidx: usize, declared: &mut BTreeSet<usize>) {
    let toks = f.tokens();
    for i in 0..toks.len() {
        let Some(id) = toks[i].kind.ident() else {
            continue;
        };
        let kind = match id {
            "Mutex" | "RwLock" if i + 1 < toks.len() && toks[i + 1].kind.is_punct(b'<') => id,
            // A condvar declaration is `name : Condvar` NOT followed by
            // `::` (which would be the `Condvar::new()` constructor).
            "Condvar" if i + 1 < toks.len() && !toks[i + 1].kind.is_punct(b':') => id,
            _ => continue,
        };
        if f.is_test_line(toks[i].line) {
            continue;
        }
        let Some(field) = decl_field_name(toks, i) else {
            continue;
        };
        match world
            .manifest
            .iter()
            .position(|e| e.file == f.rel && e.field == field)
        {
            Some(eidx) => {
                declared.insert(eidx);
            }
            None => world.unranked.push(Unranked {
                file: fidx,
                line: toks[i].line,
                field,
                kind: match kind {
                    "Mutex" => "Mutex",
                    "RwLock" => "RwLock",
                    _ => "Condvar",
                },
            }),
        }
    }
}

/// Walks back from the lock-type token to the declared field/static name:
/// `name : [wrapper <]* LockType`. Returns `None` for non-declaration
/// positions (fn params behind `&`, return types, nested generics).
fn decl_field_name(toks: &[Token], type_tok: usize) -> Option<String> {
    let mut j = type_tok;
    for _ in 0..16 {
        if j == 0 {
            return None;
        }
        j -= 1;
        match &toks[j].kind {
            k if k.is_punct(b'<') => continue,
            k if k.is_punct(b':') => {
                // `::` path separator — hop over it and its segment.
                if j > 0 && toks[j - 1].kind.is_punct(b':') {
                    if j < 2 || toks[j - 2].kind.ident().is_none() {
                        return None;
                    }
                    j -= 2;
                    continue;
                }
                // Single `:` — the declaration colon; the name precedes it.
                let name = toks.get(j.checked_sub(1)?)?.kind.ident()?;
                // Require a declaration-shaped context before the name so
                // generic bounds (`T: Into<Mutex<…>>`) and typed fn params
                // we cannot track don't register as declarations.
                let ok = match j.checked_sub(2).map(|b| &toks[b].kind) {
                    None => true,
                    Some(k) => {
                        k.is_punct(b'{')
                            || k.is_punct(b',')
                            || k.is_ident("pub")
                            || k.is_ident("static")
                            || k.is_ident("mut")
                            || k.is_punct(b')') // after a `pub(crate)` list
                    }
                };
                return ok.then(|| name.to_string());
            }
            k if k.ident().is_some_and(|w| WRAPPERS.contains(&w)) => continue,
            _ => return None,
        }
    }
    None
}

/// Registers every fn with its body extent and enclosing impl type.
fn collect_fns(world: &mut World, f: &SourceFile, fidx: usize) {
    let toks = f.tokens();
    // impl extents: (body_open, body_close, type name).
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].kind.is_ident("impl") {
            continue;
        }
        let Some(open) = find_body_open(toks, i + 1) else {
            continue;
        };
        if let Some(ty) = impl_type_name(toks, i + 1, open) {
            impls.push((open, f.match_brace(open), ty));
        }
    }
    for i in 0..toks.len() {
        if !toks[i].kind.is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.kind.ident()) else {
            continue;
        };
        if f.is_test_line(toks[i].line) {
            continue;
        }
        let Some(open) = find_body_open(toks, i + 2) else {
            continue; // bodyless trait-method declaration
        };
        let close = f.match_brace(open);
        let impl_type = impls
            .iter()
            .filter(|(o, c, _)| *o < i && i < *c)
            .map(|(_, _, t)| t.clone())
            .next_back();
        world.fns.push(FnInfo {
            file: fidx,
            simple: name.to_string(),
            impl_type,
            body_open: open,
            body_close: close,
        });
    }
}

/// The implemented type of an `impl` header: the last path segment after
/// `for` when present, else the first path after the generic params.
fn impl_type_name(toks: &[Token], from: usize, body_open: usize) -> Option<String> {
    let mut start = from;
    // Skip `<…>` generic params by angle counting.
    if toks.get(start)?.kind.is_punct(b'<') {
        let mut depth = 0i32;
        while start < body_open {
            if toks[start].kind.is_punct(b'<') {
                depth += 1;
            } else if toks[start].kind.is_punct(b'>') {
                depth -= 1;
                if depth == 0 {
                    start += 1;
                    break;
                }
            }
            start += 1;
        }
    }
    // If a `for` appears at angle depth 0, the implemented type follows it.
    let mut depth = 0i32;
    let mut type_from = start;
    for (j, t) in toks.iter().enumerate().take(body_open).skip(start) {
        match &t.kind {
            k if k.is_punct(b'<') => depth += 1,
            k if k.is_punct(b'>') => depth -= 1,
            k if depth == 0 && k.is_ident("for") => type_from = j + 1,
            _ => {}
        }
    }
    // Read one `a::b::C` path, returning its last segment.
    let mut j = type_from;
    let mut last: Option<&str> = None;
    while j < body_open {
        match toks[j].kind.ident() {
            Some(id) => {
                last = Some(id);
                if j + 2 < body_open
                    && toks[j + 1].kind.is_punct(b':')
                    && toks[j + 2].kind.is_punct(b':')
                {
                    j += 3;
                    continue;
                }
                break;
            }
            None => break,
        }
    }
    last.map(String::from)
}

/// First `{` at paren/bracket depth 0 after `from`; `None` when a `;`
/// ends the item first.
fn find_body_open(toks: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match &t.kind {
            k if k.is_punct(b'(') || k.is_punct(b'[') => depth += 1,
            k if k.is_punct(b')') || k.is_punct(b']') => depth -= 1,
            k if k.is_punct(b'{') && depth == 0 => return Some(j),
            k if k.is_punct(b';') && depth == 0 => return None,
            _ => {}
        }
    }
    None
}

const ACQUIRE_METHODS: [(&str, bool); 6] = [
    ("lock", true),
    ("read", true),
    ("write", true),
    ("try_lock", false),
    ("try_read", false),
    ("try_write", false),
];

/// Finds `recv.lock()` / `recv.read()` / … sites, resolves the receiver
/// to a manifest entry, and computes the guard's conservative extent.
fn collect_sites(
    world: &mut World,
    f: &SourceFile,
    fidx: usize,
    lock_accessors: &BTreeMap<String, usize>,
) {
    let toks = f.tokens();
    for i in 2..toks.len().saturating_sub(1) {
        let Some(m) = toks[i].kind.ident() else {
            continue;
        };
        let Some(&(_, blocking)) = ACQUIRE_METHODS.iter().find(|(n, _)| *n == m) else {
            continue;
        };
        if !toks[i - 1].kind.is_punct(b'.') || !toks[i + 1].kind.is_punct(b'(') {
            continue;
        }
        if f.is_test_line(toks[i].line) {
            continue;
        }
        // Resolve the receiver just before the `.`.
        let entry = match &toks[i - 2].kind {
            k if k.ident().is_some() => resolve_field(world, &f.rel, k.ident().unwrap_or_default()),
            // `accessor().lock()` — match the call back to its name.
            k if k.is_punct(b')') => {
                accessor_before(toks, i - 2).and_then(|name| lock_accessors.get(name).copied())
            }
            _ => None,
        };
        let Some(entry) = entry else { continue };
        let Some(fn_idx) = enclosing_fn(world, fidx, i) else {
            continue;
        };
        let range_end = guard_range_end(f, i, world.fns[fn_idx].body_close);
        world.sites.push(Site {
            fn_idx,
            entry,
            tok: i,
            line: toks[i].line,
            range_end,
            blocking,
        });
    }
}

/// A field receiver resolves to the manifest entry declared in the same
/// file first, else to a workspace-unique field name.
fn resolve_field(world: &World, rel: &str, recv: &str) -> Option<usize> {
    let mut same_file = None;
    let mut anywhere = Vec::new();
    for (idx, e) in world.manifest.iter().enumerate() {
        if e.kind == LockKind::Condvar || e.field != recv {
            continue;
        }
        if e.file == rel {
            same_file = Some(idx);
        }
        anywhere.push(idx);
    }
    same_file.or(match anywhere.as_slice() {
        [one] => Some(*one),
        _ => None,
    })
}

/// For `name ( … ) . lock()`, walks back from the `)` to the accessor
/// name.
fn accessor_before(toks: &[Token], close: usize) -> Option<&str> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        match &toks[j].kind {
            k if k.is_punct(b')') => depth += 1,
            k if k.is_punct(b'(') => {
                depth -= 1;
                if depth == 0 {
                    return toks.get(j.checked_sub(1)?)?.kind.ident();
                }
            }
            _ => {}
        }
        j = j.checked_sub(1)?;
    }
}

/// The innermost registered fn whose body contains token `tok`.
fn enclosing_fn(world: &World, fidx: usize, tok: usize) -> Option<usize> {
    world
        .fns
        .iter()
        .enumerate()
        .filter(|(_, info)| info.file == fidx && info.body_open < tok && tok < info.body_close)
        .min_by_key(|(_, info)| info.body_close - info.body_open)
        .map(|(i, _)| i)
}

/// Conservative guard extent. The guard is *named* (lives to the end of
/// its enclosing block, or to an explicit `drop(var)`) only for the
/// exact shape `let [mut] var = <chain>.lock();` — the acquire as the
/// complete right-hand side. Anything else (`let x = m.lock().clone()`,
/// an acquire nested in a call's arguments, a match/if-let scrutinee) is
/// a temporary whose guard dies at its statement's `;`; the scan to the
/// next depth-0 `;` over-covers scrutinee tails, which is the safe
/// direction.
fn guard_range_end(f: &SourceFile, site: usize, fn_close: usize) -> usize {
    let toks = f.tokens();
    // Start of the receiver chain: hop back over `recv . m` links.
    let mut start = site - 1; // the `.`
    while start >= 2 && toks[start].kind.is_punct(b'.') && toks[start - 1].kind.ident().is_some() {
        if start >= 3 && toks[start - 2].kind.is_punct(b'.') {
            start -= 2;
        } else {
            start -= 1;
            break;
        }
    }
    // The acquire call is `()`; it binds the guard only when the result
    // is not consumed further (`;` right after) and the statement is a
    // plain `let var = …`.
    let after_call = toks
        .get(site + 2)
        .is_some_and(|t| t.kind.is_punct(b')'))
        .then_some(site + 3);
    let mut let_var: Option<&str> = None;
    let is_let = after_call.is_some_and(|a| toks.get(a).is_some_and(|t| t.kind.is_punct(b';')))
        && start >= 3
        && toks[start - 1].kind.is_punct(b'=')
        && {
            let_var = toks[start - 2].kind.ident();
            let mut l = start - 3;
            if toks[l].kind.is_ident("mut") && l > 0 {
                l -= 1;
            }
            let_var.is_some() && toks[l].kind.is_ident("let")
        };
    if is_let {
        // Held to the end of the enclosing block, or an explicit drop.
        let close = enclosing_block_close(f, site).min(fn_close);
        if let Some(var) = let_var {
            for k in site..close.saturating_sub(3) {
                if toks[k].kind.is_ident("drop")
                    && toks[k + 1].kind.is_punct(b'(')
                    && toks[k + 2].kind.is_ident(var)
                    && toks[k + 3].kind.is_punct(b')')
                {
                    return k;
                }
            }
        }
        close
    } else {
        // Temporary: to the next `;` at relative brace depth 0, or the
        // enclosing block's `}` (match tails, if/else expressions).
        let mut depth = 0i32;
        for (k, t) in toks.iter().enumerate().skip(site).take(fn_close - site) {
            match &t.kind {
                kd if kd.is_punct(b'{') => depth += 1,
                kd if kd.is_punct(b'}') => {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                }
                kd if kd.is_punct(b';') && depth == 0 => return k,
                _ => {}
            }
        }
        fn_close
    }
}

/// The `}` closing the innermost block containing token `tok`.
fn enclosing_block_close(f: &SourceFile, tok: usize) -> usize {
    let toks = f.tokens();
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(tok) {
        match &t.kind {
            kd if kd.is_punct(b'{') => depth += 1,
            kd if kd.is_punct(b'}') => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Collects call sites for later resolution.
fn collect_calls(world: &World, f: &SourceFile, fidx: usize, raw: &mut Vec<RawCall>) {
    let toks = f.tokens();
    for i in 0..toks.len().saturating_sub(1) {
        let Some(name) = toks[i].kind.ident() else {
            continue;
        };
        if !toks[i + 1].kind.is_punct(b'(') || f.is_test_line(toks[i].line) {
            continue;
        }
        if i > 0 && toks[i - 1].kind.is_ident("fn") {
            continue; // a declaration, not a call
        }
        let (self_call, skip) = if i >= 2 && toks[i - 1].kind.is_punct(b'.') {
            match &toks[i - 2].kind {
                k if k.is_ident("self") => (true, false),
                // `expr().m(…)` chains: the receiver is an untypeable
                // value — resolving `m` by bare name there would fabricate
                // edges from every `.get(…)`/`.iter(…)` on it.
                k if k.ident().is_some() => (false, false),
                _ => (false, true),
            }
        } else {
            (false, false)
        };
        if skip {
            continue;
        }
        let Some(fn_idx) = enclosing_fn(world, fidx, i) else {
            continue;
        };
        raw.push(RawCall {
            fn_idx,
            tok: i,
            name: name.to_string(),
            self_call,
        });
    }
}

/// Resolves raw calls against the fn table: `self.m()` prefers the
/// caller's impl type; everything else requires a workspace-unique name.
fn resolve_call_targets(world: &mut World, raw: &[RawCall]) {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, info) in world.fns.iter().enumerate() {
        by_name.entry(info.simple.as_str()).or_default().push(i);
    }
    let mut calls = Vec::new();
    for rc in raw {
        let Some(candidates) = by_name.get(rc.name.as_str()) else {
            continue;
        };
        let callee = if rc.self_call {
            let caller_ty = world.fns[rc.fn_idx].impl_type.as_deref();
            let typed: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| world.fns[i].impl_type.as_deref() == caller_ty)
                .collect();
            match typed.as_slice() {
                [one] => Some(*one),
                _ => unique(candidates),
            }
        } else {
            unique(candidates)
        };
        if let Some(callee) = callee {
            if callee != rc.fn_idx {
                calls.push(Call {
                    fn_idx: rc.fn_idx,
                    tok: rc.tok,
                    callee,
                });
            }
        }
    }
    world.calls = calls;
}

fn unique(c: &[usize]) -> Option<usize> {
    match c {
        [one] => Some(*one),
        _ => None,
    }
}

/// Fixpoint: the set of entries each fn blocking-acquires, directly or
/// through resolved calls, with a representative direct site for each.
fn compute_closures(world: &mut World) {
    world.acquired = vec![BTreeSet::new(); world.fns.len()];
    for (sidx, s) in world.sites.iter().enumerate() {
        if s.blocking && world.acquired[s.fn_idx].insert(s.entry) {
            world.acquired_site.insert((s.fn_idx, s.entry), sidx);
        }
    }
    loop {
        let mut changed = false;
        for ci in 0..world.calls.len() {
            let (caller, callee) = (world.calls[ci].fn_idx, world.calls[ci].callee);
            let add: Vec<usize> = world.acquired[callee]
                .iter()
                .copied()
                .filter(|e| !world.acquired[caller].contains(e))
                .collect();
            for e in add {
                world.acquired[caller].insert(e);
                if let Some(&site) = world.acquired_site.get(&(callee, e)) {
                    world.acquired_site.insert((caller, e), site);
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Locates a fn by `path/to/file.rs::Type::name` or `path/to/file.rs::name`.
pub(crate) fn find_fn(world: &World, files: &[SourceFile], spec: &str) -> Option<usize> {
    let (file, rest) = spec.split_once("::")?;
    let (ty, name) = match rest.rsplit_once("::") {
        Some((t, n)) => (Some(t), n),
        None => (None, rest),
    };
    world.fns.iter().position(|info| {
        files[info.file].rel == file
            && info.simple == name
            && (ty.is_none() || info.impl_type.as_deref() == ty)
    })
}
