//! `doc-counters`: the `Counter` enum's variants (snake_cased, which is
//! exactly what `Counter::name()` returns) must equal the DESIGN.md §6
//! counter table.
//!
//! Code side: the variants of `enum Counter` in the metrics file.
//! Doc side: the markdown table following the `| Counter |` header.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::report::{Finding, Rule};
use crate::rules::doc::{load_doc, table_names};
use crate::source::SourceFile;
use crate::Config;

/// The `Counter` enum's variants as snake_case names → declaration line.
pub fn counter_names(f: &SourceFile) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    let toks = f.tokens();
    let Some(open) = toks.windows(3).position(|w| {
        w[0].kind.is_ident("enum") && w[1].kind.is_ident("Counter") && w[2].kind.is_punct(b'{')
    }) else {
        return out;
    };
    let open = open + 2;
    let close = f.match_brace(open);
    let mut i = open + 1;
    while i < close {
        match &toks[i].kind {
            // Skip `#[…]` attribute extents between variants.
            TokenKind::Punct(b'#') if i + 1 < close && toks[i + 1].kind.is_punct(b'[') => {
                let mut depth = 1usize;
                i += 2;
                while i < close && depth > 0 {
                    if toks[i].kind.is_punct(b'[') {
                        depth += 1;
                    } else if toks[i].kind.is_punct(b']') {
                        depth -= 1;
                    }
                    i += 1;
                }
            }
            TokenKind::Ident(id) => {
                out.entry(snake_case(id)).or_insert(toks[i].line);
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// CamelCase → snake_case (`SeqCacheHits` → `seq_cache_hits`).
pub fn snake_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for (i, c) in s.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Compares the enum against the DESIGN.md table.
pub fn check(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let (Some(design_rel), Some(metrics_rel)) = (&config.design_md, &config.metrics_file) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let Some(f) = crate::rules::file(files, metrics_rel) else {
        out.push(Finding::new(
            Rule::DocCounters,
            metrics_rel,
            0,
            "metrics file is missing from the scan",
        ));
        return out;
    };
    let code = counter_names(f);
    if code.is_empty() {
        out.push(Finding::new(
            Rule::DocCounters,
            metrics_rel,
            0,
            "no `enum Counter` found",
        ));
        return out;
    }
    let Some(doc) = load_doc(config, design_rel, Rule::DocCounters, &mut out) else {
        return out;
    };
    let documented = table_names(&doc, "| Counter |");
    if documented.is_empty() {
        out.push(Finding::new(
            Rule::DocCounters,
            design_rel,
            0,
            "no `| Counter | … |` table found in §6",
        ));
        return out;
    }
    for (name, line) in &code {
        if !documented.contains_key(name) {
            out.push(Finding::new(
                Rule::DocCounters,
                metrics_rel,
                *line,
                format!("counter `{name}` is not in the {design_rel} §6 table — add a row"),
            ));
        }
    }
    for (name, line) in &documented {
        if !code.contains_key(name) {
            out.push(Finding::new(
                Rule::DocCounters,
                design_rel,
                *line,
                format!(
                    "table names `{name}` but `enum Counter` in {metrics_rel} has no such variant"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn snake_casing() {
        assert_eq!(snake_case("EventsScanned"), "events_scanned");
        assert_eq!(snake_case("SeqCacheHits"), "seq_cache_hits");
    }

    #[test]
    fn variants_extracted() {
        let f = SourceFile::from_text(
            "metrics.rs",
            PathBuf::from("metrics.rs"),
            "pub enum Counter {\n    /// Scanned.\n    EventsScanned,\n    #[doc(hidden)]\n    IndexJoins,\n}\npub enum Other { NotACounter }\n",
        );
        let names = counter_names(&f);
        assert_eq!(names.len(), 2);
        assert!(names.contains_key("events_scanned"));
        assert_eq!(names["index_joins"], 5);
        assert!(!names.contains_key("not_a_counter"));
    }
}
