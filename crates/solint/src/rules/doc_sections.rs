//! `doc-sections`: every required architecture section must keep its
//! `## …` heading in DESIGN.md.
//!
//! The other doc-drift rules pin *tables* (failpoints, counters, knobs,
//! locks); this one pins whole chapters. A subsystem the config names in
//! `design_sections` — seeded with §15 "Cost-based planning" — cannot
//! ship with its design chapter renamed away or deleted: the heading
//! match is on the section *title*, so renumbering is fine but dropping
//! the chapter is a finding.

use crate::report::{Finding, Rule};
use crate::rules::doc::load_doc;
use crate::source::SourceFile;
use crate::Config;

/// Checks that each configured section title has a markdown `##` heading
/// ending in that title (numbering prefixes like `## 15.` are ignored).
pub fn check(config: &Config, _files: &[SourceFile]) -> Vec<Finding> {
    let Some(design_rel) = &config.design_md else {
        return Vec::new();
    };
    if config.design_sections.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let Some(lines) = load_doc(config, design_rel, Rule::DocSections, &mut out) else {
        return out;
    };
    for required in &config.design_sections {
        let found = lines.iter().any(|l| {
            let t = l.trim();
            t.starts_with("## ") && t.ends_with(required.as_str())
        });
        if !found {
            out.push(Finding::new(
                Rule::DocSections,
                design_rel,
                0,
                format!(
                    "required section `{required}` has no `## … {required}` heading — \
                     restore the design chapter (or update the solint config if it moved)"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn off_when_unconfigured() {
        let config = Config::bare(PathBuf::from("/nonexistent"));
        assert!(check(&config, &[]).is_empty(), "no design_md → rule off");
        let mut config = Config::bare(PathBuf::from("/nonexistent"));
        config.design_md = Some("DESIGN.md".into());
        assert!(
            check(&config, &[]).is_empty(),
            "no required sections → rule off (doc not even read)"
        );
    }
}
