//! `doc-locks`: the lock hierarchy has three authored copies — the
//! `locks.toml` manifest, the `parking_lot::rank` constants the ranked
//! constructors use, and the DESIGN.md §14 rank table — and this rule
//! keeps all three identical.
//!
//! Drift checks, each reported at the lagging side's file:line:
//!
//! * every non-condvar manifest entry has a `pub const <NAME>: u16 = <rank>;`
//!   in the rank module, with the same value (condvars share their
//!   mutex's rank and have no constant);
//! * every rank-module constant is declared in the manifest;
//! * every manifest entry appears in the DESIGN.md rank table with its
//!   rank on the same row, and the table names nothing undeclared.

use std::collections::BTreeMap;

use crate::manifest::{self, LockKind};
use crate::report::{Finding, Rule};
use crate::rules::doc::{load_doc, table_names};
use crate::source::SourceFile;
use crate::Config;

/// The DESIGN.md table header this rule anchors on.
const TABLE_MARKER: &str = "| Lock | Rank |";

/// Runs the rule when a manifest and a rank module are configured.
pub fn check(config: &Config, _files: &[SourceFile]) -> Vec<Finding> {
    let (Some(manifest_rel), Some(module_rel)) = (&config.locks_manifest, &config.lock_rank_module)
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let entries = match manifest::load(&config.root.join(manifest_rel)) {
        Ok(e) => e,
        Err(_) => return out, // lock-order reports manifest problems
    };

    // Manifest ↔ rank-module constants.
    let consts = match std::fs::read_to_string(config.root.join(module_rel)) {
        Ok(text) => parse_rank_consts(&text),
        Err(e) => {
            out.push(Finding::new(
                Rule::DocLocks,
                module_rel,
                0,
                format!("unreadable rank module: {e}"),
            ));
            return out;
        }
    };
    for e in &entries {
        if e.kind == LockKind::Condvar {
            continue;
        }
        match consts.get(&e.const_name()) {
            None => out.push(Finding::new(
                Rule::DocLocks,
                manifest_rel,
                e.line,
                format!(
                    "`{}` (rank {}) has no `pub const {}: u16 = …;` in {} — \
                     the ranked constructor cannot reference it",
                    e.name,
                    e.rank,
                    e.const_name(),
                    module_rel
                ),
            )),
            Some(&(value, line)) if value != e.rank => out.push(Finding::new(
                Rule::DocLocks,
                module_rel,
                line,
                format!(
                    "`{}` is {} here but {} declares rank {} for `{}`",
                    e.const_name(),
                    value,
                    manifest_rel,
                    e.rank,
                    e.name
                ),
            )),
            Some(_) => {}
        }
    }
    for (name, &(_, line)) in &consts {
        if !entries
            .iter()
            .any(|e| e.kind != LockKind::Condvar && &e.const_name() == name)
        {
            out.push(Finding::new(
                Rule::DocLocks,
                module_rel,
                line,
                format!("rank constant `{name}` has no locks.toml entry"),
            ));
        }
    }

    // Manifest ↔ DESIGN.md §14 table.
    let Some(design_rel) = &config.design_md else {
        return out;
    };
    let Some(lines) = load_doc(config, design_rel, Rule::DocLocks, &mut out) else {
        return out;
    };
    let table = table_names(&lines, TABLE_MARKER);
    if table.is_empty() {
        out.push(Finding::new(
            Rule::DocLocks,
            design_rel,
            0,
            format!("no `{TABLE_MARKER}` rank table found"),
        ));
        return out;
    }
    for e in &entries {
        match table.get(&e.name) {
            None => out.push(Finding::new(
                Rule::DocLocks,
                manifest_rel,
                e.line,
                format!("`{}` is missing from the {design_rel} rank table", e.name),
            )),
            Some(&line) => {
                let row = lines.get(line - 1).map(String::as_str).unwrap_or("");
                if !row.contains(&format!("| {} |", e.rank)) {
                    out.push(Finding::new(
                        Rule::DocLocks,
                        design_rel,
                        line,
                        format!(
                            "rank table row for `{}` does not say rank {}",
                            e.name, e.rank
                        ),
                    ));
                }
            }
        }
    }
    for (name, &line) in &table {
        if !entries.iter().any(|e| &e.name == name) {
            out.push(Finding::new(
                Rule::DocLocks,
                design_rel,
                line,
                format!("rank table names `{name}`, which locks.toml does not declare"),
            ));
        }
    }
    out
}

/// Extracts `pub const NAME: u16 = VALUE;` lines → name → (value, line).
fn parse_rank_consts(text: &str) -> BTreeMap<String, (u16, usize)> {
    let mut out = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let Some(rest) = line.strip_prefix("pub const ") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once(": u16 = ") else {
            continue;
        };
        let Some(value) = rest.strip_suffix(';').and_then(|v| v.parse::<u16>().ok()) else {
            continue;
        };
        out.insert(name.trim().to_string(), (value, idx + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_parsing() {
        let consts = parse_rank_consts(
            "pub mod rank {\n    pub const ENGINE_DB: u16 = 30;\n    pub const X_Y: u16 = 55;\n    const PRIVATE: u16 = 1;\n}\n",
        );
        assert_eq!(consts.len(), 2);
        assert_eq!(consts["ENGINE_DB"], (30, 2));
        assert_eq!(consts["X_Y"], (55, 3));
    }
}
