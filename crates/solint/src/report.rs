//! Findings and the human / JSON report renderers.

use std::fmt;

/// The rule catalog. Every finding carries exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hot-module loops over events/sequences/postings must tick the
    /// governor (or carry a justified escape comment).
    GovernorTick,
    /// Panic-capable sites in library code may not exceed the committed
    /// baseline (which may only shrink).
    NoPanicRatchet,
    /// Every `Ordering::…` use in the concurrency-core files needs an
    /// `// ord:` justification comment.
    AtomicOrdering,
    /// Engine code must use the poison-recovering `parking_lot` shim, not
    /// `std::sync::Mutex`/`RwLock`.
    NoBareMutex,
    /// Every workspace crate root must carry `#![forbid(unsafe_code)]`,
    /// and no `unsafe` may appear anywhere.
    ForbidUnsafe,
    /// Lock acquisitions must follow the `locks.toml` rank hierarchy:
    /// every lock declared and ranked, no rank inversion along any
    /// (inter-procedural) acquisition chain, no cycles.
    LockOrder,
    /// The readiness-loop thread may not block: no engine-lock
    /// acquisition, no blocking syscalls, on any function reachable from
    /// the configured event-loop entry points.
    NoBlockingInEventLoop,
    /// Every `// solint: allow(rule)` escape must still suppress a live
    /// finding; stale escapes are errors.
    StaleEscape,
    /// `fail_point!` sites in code ≡ the DESIGN.md §5 catalog.
    DocFailpoints,
    /// `Counter` enum variants ≡ the DESIGN.md §6 counter table.
    DocCounters,
    /// `SOLAP_*` env reads ≡ the README knob table.
    DocKnobs,
    /// `locks.toml` ≡ the shim's `rank` constants ≡ the DESIGN.md §14
    /// rank table.
    DocLocks,
    /// Every required architecture section (the config's
    /// `design_sections`) has a `## …` heading in DESIGN.md — a
    /// subsystem cannot ship with its design chapter deleted.
    DocSections,
}

impl Rule {
    /// The stable kebab-case rule id (used in reports and escape comments).
    pub fn id(self) -> &'static str {
        match self {
            Rule::GovernorTick => "governor-tick",
            Rule::NoPanicRatchet => "no-panic-ratchet",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::NoBareMutex => "no-bare-mutex",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::LockOrder => "lock-order",
            Rule::NoBlockingInEventLoop => "no-blocking-in-event-loop",
            Rule::StaleEscape => "stale-escape",
            Rule::DocFailpoints => "doc-failpoints",
            Rule::DocCounters => "doc-counters",
            Rule::DocKnobs => "doc-knobs",
            Rule::DocLocks => "doc-locks",
            Rule::DocSections => "doc-sections",
        }
    }

    /// All rules, in report order.
    pub const ALL: [Rule; 13] = [
        Rule::GovernorTick,
        Rule::NoPanicRatchet,
        Rule::AtomicOrdering,
        Rule::NoBareMutex,
        Rule::ForbidUnsafe,
        Rule::LockOrder,
        Rule::NoBlockingInEventLoop,
        Rule::StaleEscape,
        Rule::DocFailpoints,
        Rule::DocCounters,
        Rule::DocKnobs,
        Rule::DocLocks,
        Rule::DocSections,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Root-relative `/`-separated path.
    pub file: String,
    /// 1-based line (0 = whole file).
    pub line: usize,
    /// Human-readable description, including the other side's location for
    /// doc-drift findings.
    pub message: String,
    /// True when a justified `// solint: allow(rule)` escape covers the
    /// site. Suppressed findings are dropped from reports, but the
    /// `stale-escape` rule uses them to prove each escape is still live.
    pub suppressed: bool,
}

impl Finding {
    /// Shorthand constructor (not suppressed).
    pub fn new(rule: Rule, file: &str, line: usize, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
            suppressed: false,
        }
    }

    /// Marks the finding as escape-suppressed.
    pub fn suppress(mut self) -> Finding {
        self.suppressed = true;
        self
    }
}

/// Renders findings for humans, grouped by rule.
pub fn render_text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    if findings.is_empty() {
        out.push_str(&format!(
            "solint: clean — 0 findings across {files_scanned} files\n"
        ));
        return out;
    }
    let mut sorted = findings.to_vec();
    sorted.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    let mut current: Option<Rule> = None;
    for f in &sorted {
        if current != Some(f.rule) {
            out.push_str(&format!("\n[{}]\n", f.rule.id()));
            current = Some(f.rule);
        }
        if f.line > 0 {
            out.push_str(&format!("  {}:{}: {}\n", f.file, f.line, f.message));
        } else {
            out.push_str(&format!("  {}: {}\n", f.file, f.message));
        }
    }
    out.push_str(&format!(
        "\nsolint: {} finding(s) across {files_scanned} files\n",
        findings.len()
    ));
    out
}

/// Renders findings as a JSON array (stable field order, no dependencies).
pub fn render_json(findings: &[Finding]) -> String {
    let mut sorted = findings.to_vec();
    sorted.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    let mut out = String::from("[");
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule.id(),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_groups_by_rule() {
        let fs = vec![
            Finding::new(Rule::DocKnobs, "b.rs", 2, "m2"),
            Finding::new(Rule::GovernorTick, "a.rs", 1, "m1"),
        ];
        let t = render_text(&fs, 3);
        let gpos = t.find("[governor-tick]").unwrap();
        let kpos = t.find("[doc-knobs]").unwrap();
        assert!(gpos < kpos, "rule order follows the catalog");
        assert!(t.contains("a.rs:1: m1"));
        assert!(t.contains("2 finding(s) across 3 files"));
    }

    #[test]
    fn clean_report() {
        assert!(render_text(&[], 10).contains("clean"));
    }

    #[test]
    fn json_is_escaped_and_balanced() {
        let fs = vec![Finding::new(Rule::NoBareMutex, "a.rs", 7, "say \"no\"")];
        let j = render_json(&fs);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"rule\":\"no-bare-mutex\""));
    }
}
