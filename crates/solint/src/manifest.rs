//! The `locks.toml` lock-hierarchy manifest: parsing and the entry model.
//!
//! A deliberately minimal line-based TOML subset (no dependencies, like
//! the rest of solint): `[[lock]]` array-of-tables entries with
//! string / integer / boolean values, `#` comments, no nesting. That is
//! exactly the shape the checked-in manifest uses; anything else is a
//! parse error with a line number.

use std::path::Path;

/// What kind of synchronization primitive a manifest entry declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `parking_lot::Mutex`.
    Mutex,
    /// `parking_lot::RwLock`.
    RwLock,
    /// `parking_lot::Condvar` — shares its mutex's rank; never acquired
    /// directly, so it gets no `rank` constant and no acquisition sites.
    Condvar,
}

impl LockKind {
    fn parse(s: &str) -> Option<LockKind> {
        match s {
            "mutex" => Some(LockKind::Mutex),
            "rwlock" => Some(LockKind::RwLock),
            "condvar" => Some(LockKind::Condvar),
            _ => None,
        }
    }
}

/// One `[[lock]]` entry of the manifest.
#[derive(Debug, Clone)]
pub struct LockEntry {
    /// Hierarchy name, e.g. `engine.db`.
    pub name: String,
    /// Rank: strictly increasing along every acquisition chain.
    pub rank: u16,
    /// Primitive kind.
    pub kind: LockKind,
    /// Root-relative file holding the declaration.
    pub file: String,
    /// The field (or static) name declared with this lock.
    pub field: String,
    /// Whether the readiness event-loop thread may block on this lock.
    pub event_loop: bool,
    /// One-line description (rendered into the DESIGN.md rank table).
    pub doc: String,
    /// 1-based manifest line of the `[[lock]]` header.
    pub line: usize,
}

impl LockEntry {
    /// The `parking_lot::rank` constant name for this entry
    /// (`engine.db` → `ENGINE_DB`). Condvars have none.
    pub fn const_name(&self) -> String {
        self.name
            .chars()
            .map(|c| {
                if c == '.' {
                    '_'
                } else {
                    c.to_ascii_uppercase()
                }
            })
            .collect()
    }
}

/// Parses the manifest file. Errors carry `line: message`.
pub fn load(path: &Path) -> Result<Vec<LockEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("0: unreadable manifest: {e}"))?;
    parse(&text)
}

/// Parses manifest text (split out for unit tests).
pub fn parse(text: &str) -> Result<Vec<LockEntry>, String> {
    struct Partial {
        line: usize,
        name: Option<String>,
        rank: Option<u16>,
        kind: Option<LockKind>,
        file: Option<String>,
        field: Option<String>,
        event_loop: Option<bool>,
        doc: Option<String>,
    }
    fn finish(p: Partial) -> Result<LockEntry, String> {
        let missing = |what: &str| format!("{}: `[[lock]]` entry is missing `{what}`", p.line);
        Ok(LockEntry {
            name: p.name.ok_or_else(|| missing("name"))?,
            rank: p.rank.ok_or_else(|| missing("rank"))?,
            kind: p.kind.ok_or_else(|| missing("kind"))?,
            file: p.file.ok_or_else(|| missing("file"))?,
            field: p.field.ok_or_else(|| missing("field"))?,
            event_loop: p.event_loop.ok_or_else(|| missing("event_loop"))?,
            doc: p.doc.ok_or_else(|| missing("doc"))?,
            line: p.line,
        })
    }

    let mut out = Vec::new();
    let mut cur: Option<Partial> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[lock]]" {
            if let Some(p) = cur.take() {
                out.push(finish(p)?);
            }
            cur = Some(Partial {
                line: lineno,
                name: None,
                rank: None,
                kind: None,
                file: None,
                field: None,
                event_loop: None,
                doc: None,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("{lineno}: expected `key = value` or `[[lock]]`"));
        };
        let Some(p) = cur.as_mut() else {
            return Err(format!("{lineno}: `{}` before any `[[lock]]`", key.trim()));
        };
        let key = key.trim();
        let value = value.trim();
        let string = |v: &str| -> Result<String, String> {
            v.strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(String::from)
                .ok_or_else(|| format!("{lineno}: `{key}` must be a quoted string"))
        };
        match key {
            "name" => p.name = Some(string(value)?),
            "rank" => {
                p.rank = Some(
                    value
                        .parse::<u16>()
                        .map_err(|_| format!("{lineno}: `rank` must be an integer 0..=65535"))?,
                )
            }
            "kind" => {
                let s = string(value)?;
                p.kind = Some(LockKind::parse(&s).ok_or_else(|| {
                    format!("{lineno}: `kind` must be \"mutex\", \"rwlock\" or \"condvar\"")
                })?)
            }
            "file" => p.file = Some(string(value)?),
            "field" => p.field = Some(string(value)?),
            "event_loop" => {
                p.event_loop = Some(match value {
                    "true" => true,
                    "false" => false,
                    _ => return Err(format!("{lineno}: `event_loop` must be true or false")),
                })
            }
            "doc" => p.doc = Some(string(value)?),
            _ => return Err(format!("{lineno}: unknown key `{key}`")),
        }
    }
    if let Some(p) = cur.take() {
        out.push(finish(p)?);
    }
    // Duplicate names are manifest bugs; equal ranks are only legal for a
    // condvar sharing its guarded mutex's rank.
    for (i, a) in out.iter().enumerate() {
        for b in &out[i + 1..] {
            if a.name == b.name {
                return Err(format!("{}: duplicate lock name `{}`", b.line, b.name));
            }
            if a.rank == b.rank && a.kind != LockKind::Condvar && b.kind != LockKind::Condvar {
                return Err(format!(
                    "{}: `{}` and `{}` share rank {} but neither is a condvar",
                    b.line, a.name, b.name, b.rank
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# comment
[[lock]]
name = "a.x"
rank = 10
kind = "mutex"
file = "src/a.rs"
field = "x"
event_loop = true
doc = "the x lock"

[[lock]]
name = "a.x_cv"
rank = 10
kind = "condvar"
file = "src/a.rs"
field = "cv"
event_loop = true
doc = "waits under a.x"
"#;

    #[test]
    fn parses_entries_and_condvar_rank_sharing() {
        let entries = parse(GOOD).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a.x");
        assert_eq!(entries[0].rank, 10);
        assert_eq!(entries[0].kind, LockKind::Mutex);
        assert!(entries[0].event_loop);
        assert_eq!(entries[0].const_name(), "A_X");
        assert_eq!(entries[1].kind, LockKind::Condvar);
    }

    #[test]
    fn missing_field_is_an_error() {
        let err = parse("[[lock]]\nname = \"a\"\n").unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn duplicate_rank_without_condvar_is_an_error() {
        let two = GOOD.replace("kind = \"condvar\"", "kind = \"mutex\"");
        let err = parse(&two).unwrap_err();
        assert!(err.contains("share rank"), "{err}");
    }

    #[test]
    fn bad_syntax_carries_line_numbers() {
        let err = parse("[[lock]]\nrank = ten\n").unwrap_err();
        assert!(err.starts_with("2:"), "{err}");
    }

    #[test]
    fn the_repo_manifest_parses() {
        // Guard the checked-in manifest itself; path relative to the
        // crate dir during `cargo test`.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("locks.toml");
        let entries = load(&root).unwrap();
        assert!(entries.len() >= 10, "all engine locks declared");
    }
}
