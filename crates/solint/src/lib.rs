//! `solint` — workspace static analysis for the S-OLAP engine.
//!
//! The engine's load-bearing invariants (PRs 1–3) are conventions a
//! compiler cannot see: every hot loop must tick the [`QueryGovernor`],
//! every failpoint / counter / knob must be cataloged in the docs, atomic
//! orderings must be deliberate, hot paths must not panic. `solint` makes
//! those conventions machine-checked: a from-scratch lexer + item scanner
//! (no external dependencies — crates.io is unreachable in this
//! environment, consistent with the `shims/*` approach) walks the
//! workspace and enforces two rule classes:
//!
//! * **code rules** — [`Rule::GovernorTick`], [`Rule::NoPanicRatchet`]
//!   (against the committed `solint.baseline`, which may only shrink),
//!   [`Rule::AtomicOrdering`], [`Rule::NoBareMutex`],
//!   [`Rule::ForbidUnsafe`], [`Rule::LockOrder`] (every lock ranked in
//!   `locks.toml`; inter-procedural acquisition edges must strictly
//!   increase in rank, cycles are never escapable),
//!   [`Rule::NoBlockingInEventLoop`] (no blocking syscalls or event-loop
//!   lock parking reachable from the readiness loop), and
//!   [`Rule::StaleEscape`] (every `// solint: allow(rule)` must still
//!   cover a live finding);
//! * **doc-drift rules** — [`Rule::DocFailpoints`], [`Rule::DocCounters`],
//!   [`Rule::DocKnobs`], [`Rule::DocLocks`] (the `locks.toml` manifest,
//!   the shim rank constants, and the DESIGN.md §14 rank table must agree
//!   three ways), each comparing a code-side catalog against the
//!   committed documentation and reporting file:line on both sides, and
//!   [`Rule::DocSections`] (required DESIGN.md chapters keep their
//!   headings).
//!
//! Run it with `cargo run -p solint -- --ci`; see DESIGN.md §7 for the
//! contract each rule guards and README for baseline/escape workflow.
//!
//! [`QueryGovernor`]: https://docs.rs/ (eventdb::govern, in-workspace)

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod source;

use std::path::{Path, PathBuf};

pub use report::{render_json, render_text, Finding, Rule};
use source::{walk_rs_files, SourceFile};

/// What to analyze and where the contracts live. [`Config::repo`] is the
/// real workspace; fixture tests build custom configs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Analysis root (the workspace root for the real run).
    pub root: PathBuf,
    /// Directories walked for the workspace-wide rules, relative to root.
    pub scan_dirs: Vec<String>,
    /// Relative-path substrings excluded from every walk.
    pub exclude: Vec<String>,
    /// The cataloged hot modules for `governor-tick` (relative paths).
    pub hot_modules: Vec<String>,
    /// Identifier name-parts that mark a loop as iterating hot data.
    pub hot_keywords: Vec<String>,
    /// Identifiers whose presence in a loop body proves governance.
    pub governed_markers: Vec<String>,
    /// Directory prefixes whose non-test code is panic-ratcheted.
    pub ratchet_dirs: Vec<String>,
    /// The ratchet baseline file, relative to root (`None` = rule off).
    pub baseline: Option<String>,
    /// Files whose `Ordering::…` uses need `// ord:` justifications.
    pub ordering_files: Vec<String>,
    /// Directory prefixes where bare `std::sync::Mutex`/`RwLock` is banned.
    pub mutex_dirs: Vec<String>,
    /// Crate-root files that must carry `#![forbid(unsafe_code)]`.
    pub crate_roots: Vec<String>,
    /// DESIGN.md (relative), for the failpoint §5 / counter §6 catalogs.
    pub design_md: Option<String>,
    /// Section titles that must keep a `## …` heading in DESIGN.md
    /// (`doc-sections`; empty = rule off).
    pub design_sections: Vec<String>,
    /// README.md (relative), for the knob table.
    pub readme_md: Option<String>,
    /// The file holding the `Counter` enum (relative).
    pub metrics_file: Option<String>,
    /// The lock-hierarchy manifest (relative; `None` = lock rules off).
    pub locks_manifest: Option<String>,
    /// The file declaring the `pub const <NAME>: u16` rank constants.
    pub lock_rank_module: Option<String>,
    /// Directory prefixes whose lock declarations/acquisitions are
    /// analyzed by `lock-order`.
    pub lock_dirs: Vec<String>,
    /// Event-loop entry fns (`path/to/file.rs::Type::name`) for
    /// `no-blocking-in-event-loop`.
    pub event_loop_entries: Vec<String>,
    /// Identifiers that block the calling thread (`sleep`, `join`, …).
    pub event_loop_blocking: Vec<String>,
}

impl Config {
    /// The real repository's contract set.
    pub fn repo(root: PathBuf) -> Config {
        let crate_roots = discover_crate_roots(&root);
        Config {
            root,
            scan_dirs: vec![
                "crates".into(),
                "shims".into(),
                "src".into(),
                "tests".into(),
                "examples".into(),
            ],
            exclude: vec![
                "solint/tests/fixtures/".into(),
                "/target/".into(),
                "proptest-regressions".into(),
            ],
            hot_modules: vec![
                "crates/eventdb/src/seqquery.rs".into(),
                "crates/pattern/src/matcher.rs".into(),
                "crates/core/src/cb.rs".into(),
                "crates/core/src/ii.rs".into(),
                "crates/core/src/regexq.rs".into(),
                "crates/index/src/codec.rs".into(),
                "crates/eventdb/src/wal.rs".into(),
                "crates/eventdb/src/log.rs".into(),
                "crates/server/src/server.rs".into(),
                "crates/server/src/readiness.rs".into(),
                "crates/server/src/conn.rs".into(),
            ],
            hot_keywords: default_hot_keywords(),
            governed_markers: default_governed_markers(),
            ratchet_dirs: vec![
                "crates/eventdb/src/".into(),
                "crates/core/src/".into(),
                "crates/server/src/".into(),
            ],
            baseline: Some("solint.baseline".into()),
            ordering_files: vec![
                "crates/eventdb/src/metrics.rs".into(),
                "crates/eventdb/src/govern.rs".into(),
                "crates/eventdb/src/failpoint.rs".into(),
            ],
            mutex_dirs: vec!["crates/".into(), "src/".into()],
            crate_roots,
            design_md: Some("DESIGN.md".into()),
            design_sections: vec![
                "Observability".into(),
                "Static analysis & invariants".into(),
                "Lock hierarchy & deadlock freedom".into(),
                "Cost-based planning".into(),
            ],
            readme_md: Some("README.md".into()),
            metrics_file: Some("crates/eventdb/src/metrics.rs".into()),
            locks_manifest: Some("locks.toml".into()),
            lock_rank_module: Some("shims/parking_lot/src/lib.rs".into()),
            lock_dirs: vec!["crates/".into(), "src/".into()],
            event_loop_entries: vec!["crates/server/src/server.rs::EventLoop::run".into()],
            event_loop_blocking: vec!["sleep".into(), "join".into()],
        }
    }

    /// A minimal config for fixture trees: every rule off until fields are
    /// filled in by the test.
    pub fn bare(root: PathBuf) -> Config {
        Config {
            root,
            scan_dirs: vec![String::new()],
            exclude: vec!["/target/".into()],
            hot_modules: vec![],
            hot_keywords: default_hot_keywords(),
            governed_markers: default_governed_markers(),
            ratchet_dirs: vec![],
            baseline: None,
            ordering_files: vec![],
            mutex_dirs: vec![],
            crate_roots: vec![],
            design_md: None,
            design_sections: vec![],
            readme_md: None,
            metrics_file: None,
            locks_manifest: None,
            lock_rank_module: None,
            lock_dirs: vec![],
            event_loop_entries: vec![],
            event_loop_blocking: vec![],
        }
    }
}

/// Loop-header name-parts that mark per-event / per-sequence / per-posting
/// iteration (matched against the last `_`-part of each identifier, with
/// plural folding).
pub fn default_hot_keywords() -> Vec<String> {
    [
        "event",
        "row",
        "seq",
        "sequence",
        "sid",
        "posting",
        "list",
        "occurrence",
        "occ",
        "window",
        "cluster",
        "group",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

/// Identifiers proving a loop body is governed: direct governor calls, the
/// `*_governed` entry points, and governor attachment.
pub fn default_governed_markers() -> Vec<String> {
    ["tick", "check_now", "charge_cells", "with_governor"]
        .into_iter()
        .map(String::from)
        .collect()
}

/// Workspace crate roots: `src/lib.rs` / `src/main.rs` beside every
/// `Cargo.toml` under root, `crates/` and `shims/`.
fn discover_crate_roots(root: &Path) -> Vec<String> {
    let mut dirs: Vec<PathBuf> = vec![root.to_path_buf()];
    for parent in ["crates", "shims"] {
        if let Ok(entries) = std::fs::read_dir(root.join(parent)) {
            for e in entries.flatten() {
                if e.path().is_dir() {
                    dirs.push(e.path());
                }
            }
        }
    }
    let mut out = Vec::new();
    for d in dirs {
        if !d.join("Cargo.toml").is_file() {
            continue;
        }
        for rootfile in ["src/lib.rs", "src/main.rs"] {
            let p = d.join(rootfile);
            if p.is_file() {
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

/// The result of one analysis run.
pub struct Analysis {
    /// Every finding, unsorted.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Runs every configured rule and collects findings.
pub fn run(config: &Config) -> Analysis {
    let rels = walk_rs_files(&config.root, &config.scan_dirs, &config.exclude);
    let mut files = Vec::new();
    let mut findings = Vec::new();
    for rel in &rels {
        match SourceFile::load(&config.root, rel) {
            Ok(f) => files.push(f),
            Err(e) => findings.push(Finding::new(
                Rule::ForbidUnsafe,
                rel,
                0,
                format!("unreadable source file: {e}"),
            )),
        }
    }

    findings.extend(rules::governor_tick::check(config, &files));
    findings.extend(rules::panic_ratchet::check(config, &files));
    findings.extend(rules::atomic_ordering::check(config, &files));
    findings.extend(rules::bare_mutex::check(config, &files));
    findings.extend(rules::forbid_unsafe::check(config, &files));
    findings.extend(rules::lock_order::check(config, &files));
    findings.extend(rules::no_blocking::check(config, &files));
    findings.extend(rules::doc_failpoints::check(config, &files));
    findings.extend(rules::doc_counters::check(config, &files));
    findings.extend(rules::doc_knobs::check(config, &files));
    findings.extend(rules::doc_locks::check(config, &files));
    findings.extend(rules::doc_sections::check(config, &files));

    // Escaped findings stay in the stream as `suppressed` until here so
    // stale-escape can prove each escape still covers something; only the
    // live findings leave the analysis.
    let stale = rules::stale_escape::check(config, &files, &findings);
    findings.retain(|f| !f.suppressed);
    findings.extend(stale);

    Analysis {
        findings,
        files_scanned: files.len(),
    }
}

/// Recomputes the panic-ratchet counts and rewrites the baseline file.
/// Returns the new per-file counts (path, count), sorted by path.
pub fn update_baseline(config: &Config) -> std::io::Result<Vec<(String, usize)>> {
    let rels = walk_rs_files(&config.root, &config.scan_dirs, &config.exclude);
    let mut files = Vec::new();
    for rel in &rels {
        if let Ok(f) = SourceFile::load(&config.root, rel) {
            files.push(f);
        }
    }
    let counts = rules::panic_ratchet::current_counts(config, &files);
    if let Some(rel) = &config.baseline {
        baseline::save(&config.root.join(rel), &counts)?;
    }
    Ok(counts)
}
