//! A hand-rolled Rust lexer — just enough fidelity for solint's rules.
//!
//! The linter never parses expressions; every rule works off a flat token
//! stream plus a per-line comment map. The lexer therefore only needs to be
//! exact about the things that would otherwise corrupt that stream:
//! comments (line, nested block, doc), string literals (plain, raw, byte),
//! char literals vs lifetimes, and numbers. Everything else is an `Ident`
//! or a one-byte `Punct`.

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Token kinds. Operators are emitted as single [`TokenKind::Punct`] bytes;
/// rules that need `::` or `#![` match short punct runs themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `unsafe`, `Ordering`, …).
    Ident(String),
    /// String literal — the *contents*, with escapes left as written.
    Str(String),
    /// Character literal (contents unexamined).
    Char,
    /// Lifetime (`'a`), label included.
    Lifetime,
    /// Numeric literal (int or float, suffix included).
    Num,
    /// A single punctuation byte (`{`, `}`, `(`, `!`, `:`, …).
    Punct(u8),
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The string-literal contents, if this is a string.
    pub fn str_lit(&self) -> Option<&str> {
        match self {
            TokenKind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is the given punctuation byte.
    pub fn is_punct(&self, b: u8) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == b)
    }

    /// Whether this is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, TokenKind::Ident(i) if i == s)
    }
}

/// The lex result: the token stream and every comment, line by line.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens, in source order.
    pub tokens: Vec<Token>,
    /// `(line, text)` for each comment, in source order. Block comments
    /// contribute one entry per line they span, so per-line lookups work
    /// uniformly.
    pub comments: Vec<(usize, String)>,
}

impl Lexed {
    /// Concatenated comment text on `line` (empty if none).
    pub fn comment_on(&self, line: usize) -> String {
        let mut out = String::new();
        for (l, t) in &self.comments {
            if *l == line {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t);
            }
        }
        out
    }
}

/// Lexes `src`. Never fails: unterminated constructs consume to EOF, which
/// is good enough for a linter that runs on code rustc already accepts.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    macro_rules! push {
        ($kind:expr, $line:expr) => {
            out.tokens.push(Token {
                kind: $kind,
                line: $line,
            })
        };
    }

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push((line, src[start..i].to_string()));
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Nested block comment; record its text per spanned line.
                let mut depth = 1usize;
                i += 2;
                let mut seg_start = i;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else if b[i] == b'\n' {
                        out.comments.push((line, src[seg_start..i].to_string()));
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(seg_start);
                out.comments.push((line, src[seg_start..end].to_string()));
            }
            b'"' => {
                let (contents, ni, nl) = lex_string(src, i + 1, line);
                push!(TokenKind::Str(contents), line);
                i = ni;
                line = nl;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let (contents, ni, nl) = lex_raw_or_byte(src, i, line);
                push!(TokenKind::Str(contents), line);
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Char literal or lifetime.
                if is_char_literal(b, i) {
                    i = skip_char_literal(b, i);
                    push!(TokenKind::Char, line);
                } else {
                    i += 1;
                    while i < n && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    push!(TokenKind::Lifetime, line);
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < n && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                // `r#ident` raw identifiers arrive here as `r` — but the
                // raw-string branch already peeled `r"`/`r#"`, so an `r`
                // followed by `#` then a letter is a raw identifier.
                if i == start + 1 && b[start] == b'r' && i < n && b[i] == b'#' {
                    i += 1;
                    let id_start = i;
                    while i < n && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    push!(TokenKind::Ident(src[id_start..i].to_string()), line);
                } else {
                    push!(TokenKind::Ident(src[start..i].to_string()), line);
                }
            }
            c if c.is_ascii_digit() => {
                i = skip_number(b, i);
                push!(TokenKind::Num, line);
            }
            _ => {
                push!(TokenKind::Punct(c), line);
                i += 1;
            }
        }
    }
    out
}

/// After `"`, consume to the closing quote. Returns (contents, index after
/// the close, updated line).
fn lex_string(src: &str, mut i: usize, mut line: usize) -> (String, usize, usize) {
    let b = src.as_bytes();
    let start = i;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A `\<newline>` continuation still ends the source line —
                // count it, or every token below drifts up one line.
                if i + 1 < b.len() && b[i + 1] == b'\n' {
                    line += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'"' => {
                return (src[start..i].to_string(), i + 1, line);
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[start..i].to_string(), i, line)
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string literal.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let n = b.len();
    match b[i] {
        b'b' => {
            // b"..." | br"..." | br#"..."#
            if i + 1 < n && b[i + 1] == b'"' {
                return true;
            }
            if i + 1 < n && b[i + 1] == b'r' {
                let mut j = i + 2;
                while j < n && b[j] == b'#' {
                    j += 1;
                }
                return j < n && b[j] == b'"';
            }
            false
        }
        b'r' => {
            // r"..." | r#"..."# (but NOT r#ident)
            let mut j = i + 1;
            while j < n && b[j] == b'#' {
                j += 1;
            }
            j < n && b[j] == b'"' && (b[i + 1] == b'"' || b[i + 1] == b'#')
        }
        _ => false,
    }
}

/// Consumes a raw/byte string starting at `i`. Returns (contents, index
/// after close, updated line).
fn lex_raw_or_byte(src: &str, mut i: usize, mut line: usize) -> (String, usize, usize) {
    let b = src.as_bytes();
    let n = b.len();
    if b[i] == b'b' {
        i += 1;
    }
    if i < n && b[i] == b'r' {
        i += 1;
        let mut hashes = 0usize;
        while i < n && b[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        let start = i;
        while i < n {
            if b[i] == b'"' {
                let mut j = i + 1;
                let mut h = 0usize;
                while j < n && b[j] == b'#' && h < hashes {
                    j += 1;
                    h += 1;
                }
                if h == hashes {
                    return (src[start..i].to_string(), j, line);
                }
            }
            if b[i] == b'\n' {
                line += 1;
            }
            i += 1;
        }
        (src[start..i].to_string(), i, line)
    } else {
        // b"..."
        lex_string(src, i + 1, line)
    }
}

/// Whether the `'` at `i` opens a char literal (vs a lifetime).
fn is_char_literal(b: &[u8], i: usize) -> bool {
    let n = b.len();
    if i + 1 >= n {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    // 'x' — a single char (possibly multibyte UTF-8) then a closing quote.
    let mut j = i + 1;
    if b[j] < 0x80 {
        j += 1;
    } else {
        while j < n && (b[j] >= 0x80) {
            j += 1;
        }
    }
    j < n && b[j] == b'\''
}

/// Consumes a char literal starting at `'`; returns the index after it.
fn skip_char_literal(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    i += 1;
    while i < n {
        match b[i] {
            b'\\' => i = (i + 2).min(n),
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Consumes a numeric literal; returns the index after it. Stops before a
/// `..` range so `0..n` lexes as `0`, `.`, `.`, `n`.
fn skip_number(b: &[u8], mut i: usize) -> usize {
    let n = b.len();
    while i < n {
        let c = b[i];
        if c == b'.' {
            if i + 1 < n && b[i + 1] == b'.' {
                return i;
            }
            if i + 1 < n && (b[i + 1].is_ascii_digit() || b[i + 1] == b'_') {
                i += 1;
                continue;
            }
            // `1.` or tuple-ish — stop, let `.` be a punct.
            return i;
        }
        if c.is_ascii_alphanumeric() || c == b'_' {
            i += 1;
        } else {
            break;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("let x = 1;\nfor y in 0..n {}\n");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind.is_ident("for") && t.line == 2));
        assert!(l.tokens.iter().any(|t| t.kind.is_ident("in")));
        assert!(l.tokens.iter().any(|t| matches!(t.kind, TokenKind::Num)));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("a // solint: allow(x) reason\n/* b1\nb2 */ c");
        assert_eq!(idents("a // hidden\nb"), vec!["a", "b"]);
        assert!(l.comment_on(1).contains("solint: allow(x)"));
        assert!(l.comment_on(2).contains("b1"));
        assert!(l.comment_on(3).contains("b2"));
        assert!(l.tokens.iter().any(|t| t.kind.is_ident("c")));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"f("for x in y { unwrap }"); g"#);
        assert_eq!(idents(r#"f("for x in y { unwrap }"); g"#), vec!["f", "g"]);
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind.str_lit() == Some("for x in y { unwrap }")));
    }

    #[test]
    fn string_line_continuations_count_lines() {
        // `\` at end of line inside a string spans source lines; tokens
        // after the literal must land on the right line.
        let l = lex("let s = \"a\\\n b\\\n c\";\nafter");
        let after = l.tokens.iter().find(|t| t.kind.is_ident("after")).unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let l = lex(r##"let a = r#"quote " inside"#; let b = "esc\"aped";"##);
        let strs: Vec<&str> = l.tokens.iter().filter_map(|t| t.kind.str_lit()).collect();
        assert_eq!(strs, vec![r#"quote " inside"#, r#"esc\"aped"#]);
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex(r"let c = 'x'; fn f<'a>(v: &'a str) {} let nl = '\n';");
        let chars = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Char))
            .count();
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Lifetime))
            .count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1; r"), vec!["let", "type", "r"]);
    }

    #[test]
    fn numbers_stop_before_ranges() {
        let l = lex("for i in 0..10 {}");
        let nums = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Num))
            .count();
        assert_eq!(nums, 2);
        let dots = l.tokens.iter().filter(|t| t.kind.is_punct(b'.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let l = lex("let s = \"a\nb\";\nlast");
        let last = l.tokens.iter().find(|t| t.kind.is_ident("last")).unwrap();
        assert_eq!(last.line, 3);
    }
}
