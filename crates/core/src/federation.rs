//! Cross-vendor data integration with pseudonymization — §6 "Data
//! Integration and Privacy".
//!
//! The paper's scenario: a subway company and a bus company offer a
//! subway-then-bus transfer discount and want to analyse joint travel
//! patterns, but "each vendor still owns its uploaded data and the data is
//! not accessible by the others … how to integrate the two
//! separately-owned sequence databases … without disclosing the base data
//! to each other is a challenging research topic."
//!
//! This module prototypes the natural first-order design the paper's
//! centralised-clearing-house setting suggests:
//!
//! 1. Each vendor locally **pseudonymizes** its contribution: card ids are
//!    replaced by a keyed hash (the shared clearing-house salt), exact
//!    amounts and any column the vendor marks private are dropped, and the
//!    remaining dimensions may be coarsened to an agreed abstraction level
//!    before leaving the vendor (e.g. `station → district`).
//! 2. The coordinator **merges** the pseudonymized event streams by hashed
//!    card id and timestamp into one event database, tagging each event
//!    with its `vendor`.
//! 3. Ordinary S-OLAP queries then run over the merged database — e.g. the
//!    transfer pattern `(X, Y)` with `x1.vendor = "subway" AND
//!    y1.vendor = "bus"`.
//!
//! What the coordinator learns is exactly the released projection: no raw
//! card ids (the salt never leaves the vendors), no private columns, and
//! dimensions only at the agreed coarseness — properties the tests assert.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use solap_eventdb::{AttrId, ColumnType, Error, EventDb, EventDbBuilder, Result, Value};

/// One vendor's contribution policy: what leaves the vendor's premises.
#[derive(Debug, Clone)]
pub struct VendorRelease {
    /// Vendor label, recorded on every released event (e.g. `subway`).
    pub vendor: String,
    /// The time attribute (copied through — ordering must survive).
    pub time_attr: AttrId,
    /// The subject attribute whose values are pseudonymized (card id).
    pub subject_attr: AttrId,
    /// Dimension attributes to release, each at an agreed abstraction
    /// level (coarsening happens vendor-side).
    pub released_dims: Vec<(AttrId, usize)>,
}

/// The agreed clearing-house parameters: a shared salt for subject
/// pseudonymization. In production this would be a keyed MAC; a
/// salted-and-mixed 64-bit hash keeps the prototype dependency-free while
/// preserving the structural property the tests check (same card ⇒ same
/// pseudonym across vendors; pseudonym reveals nothing linkable without
/// the salt).
#[derive(Debug, Clone, Copy)]
pub struct ClearingHouse {
    /// The shared secret salt.
    pub salt: u64,
}

impl ClearingHouse {
    /// Pseudonymizes a subject id.
    pub fn pseudonym(&self, subject: i64) -> i64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.salt.hash(&mut h);
        subject.hash(&mut h);
        (h.finish() >> 1) as i64 // keep it positive for readability
    }
}

/// A released (pseudonymized, projected, coarsened) event.
#[derive(Debug, Clone, PartialEq)]
pub struct ReleasedEvent {
    /// Pseudonymized subject.
    pub subject: i64,
    /// Event time (epoch seconds).
    pub time: i64,
    /// The vendor label.
    pub vendor: String,
    /// Released dimension values, rendered at the agreed level.
    pub dims: Vec<String>,
}

/// Produces a vendor's release: the only data that leaves the vendor.
pub fn release(
    db: &EventDb,
    policy: &VendorRelease,
    house: &ClearingHouse,
) -> Result<Vec<ReleasedEvent>> {
    let mut out = Vec::with_capacity(db.len());
    for row in 0..db.len() as u32 {
        let subject = db
            .int(row, policy.subject_attr)
            .ok_or_else(|| Error::InvalidOperation("subject attribute must be integer".into()))?;
        let time = db
            .int(row, policy.time_attr)
            .ok_or_else(|| Error::InvalidOperation("time attribute must be time/int".into()))?;
        let mut dims = Vec::with_capacity(policy.released_dims.len());
        for &(attr, level) in &policy.released_dims {
            let v = db.value_at_level(row, attr, level)?;
            dims.push(db.render_level(attr, level, v));
        }
        out.push(ReleasedEvent {
            subject: house.pseudonym(subject),
            time,
            vendor: policy.vendor.clone(),
            dims,
        });
    }
    Ok(out)
}

/// Merges vendor releases into a coordinator-side event database with the
/// schema `(time, subject, vendor, dim0, dim1, …)`. Dimension names are
/// taken from the first release's policy via `dim_names`.
pub fn merge(releases: &[Vec<ReleasedEvent>], dim_names: &[&str]) -> Result<EventDb> {
    let mut builder = EventDbBuilder::new()
        .dimension("time", ColumnType::Time)
        .dimension("subject", ColumnType::Int)
        .dimension("vendor", ColumnType::Str);
    for name in dim_names {
        builder = builder.dimension(name, ColumnType::Str);
    }
    let mut db = builder.build()?;
    // Merge-sort by (subject, time) so the coordinator's CLUSTER BY subject
    // / SEQUENCE BY time sees well-formed cross-vendor journeys.
    let mut all: Vec<&ReleasedEvent> = releases.iter().flatten().collect();
    all.sort_by_key(|e| (e.subject, e.time));
    for e in &all {
        if e.dims.len() != dim_names.len() {
            return Err(Error::InvalidOperation(format!(
                "release arity mismatch: event has {} dims, schema has {}",
                e.dims.len(),
                dim_names.len()
            )));
        }
        let mut row: Vec<Value> = vec![
            Value::Time(e.time),
            Value::Int(e.subject),
            Value::Str(e.vendor.clone()),
        ];
        row.extend(e.dims.iter().map(|d| Value::Str(d.clone())));
        db.push_row(&row)?;
    }
    Ok(db)
}

/// Convenience statistics over a release, used by vendors to audit what
/// they are about to share: distinct subjects and the value domains of
/// each released dimension.
pub fn release_audit(release: &[ReleasedEvent]) -> (usize, Vec<usize>) {
    let mut subjects = std::collections::HashSet::new();
    let mut domains: Vec<std::collections::HashSet<&str>> = Vec::new();
    for e in release {
        subjects.insert(e.subject);
        if domains.len() < e.dims.len() {
            domains.resize_with(e.dims.len(), Default::default);
        }
        for (i, d) in e.dims.iter().enumerate() {
            domains[i].insert(d);
        }
    }
    (subjects.len(), domains.iter().map(|d| d.len()).collect())
}

/// Verifies that a merged database links subjects consistently: the number
/// of distinct merged subjects equals the size of the union of per-release
/// subject sets (pseudonymization is injective across the federation for
/// all practical sizes — 64-bit hash collisions aside).
pub fn linkage_check(releases: &[Vec<ReleasedEvent>], merged: &EventDb) -> bool {
    let mut union: std::collections::HashSet<i64> = std::collections::HashSet::new();
    for r in releases {
        for e in r {
            union.insert(e.subject);
        }
    }
    let mut merged_subjects = std::collections::HashSet::new();
    for row in 0..merged.len() as u32 {
        merged_subjects.insert(merged.int(row, 1).expect("subject column"));
    }
    merged_subjects == union
}

/// A helper for tests and demos: how many subjects appear in more than one
/// vendor's release (the transfer-eligible population).
pub fn shared_subjects(releases: &[Vec<ReleasedEvent>]) -> usize {
    let mut seen: HashMap<i64, usize> = HashMap::new();
    for (v, r) in releases.iter().enumerate() {
        let mut in_this: std::collections::HashSet<i64> = std::collections::HashSet::new();
        for e in r {
            in_this.insert(e.subject);
        }
        for s in in_this {
            *seen.entry(s).or_insert(0) |= 1 << v;
        }
    }
    seen.values()
        .filter(|&&mask: &&usize| mask.count_ones() > 1)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::spec::SCuboidSpec;
    use solap_eventdb::{AttrLevel, CmpOp, SortKey, TimeHierarchy};
    use solap_pattern::{MatchPred, PatternKind, PatternTemplate};

    /// Builds a vendor database: card-id, time, stop (with stop → zone).
    fn vendor_db(vendor_seed: i64, cards: &[i64]) -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("time", ColumnType::Time)
            .dimension("card-id", ColumnType::Int)
            .dimension("stop", ColumnType::Str)
            .measure("amount", ColumnType::Float)
            .build()
            .unwrap();
        db.set_time_hierarchy(0, TimeHierarchy::time_day_week())
            .unwrap();
        for (i, &card) in cards.iter().enumerate() {
            for leg in 0..2i64 {
                db.push_row(&[
                    Value::Time(1_000_000 + vendor_seed * 100 + i as i64 * 10 + leg),
                    Value::Int(card),
                    Value::Str(format!("V{vendor_seed}-S{}", (i as i64 + leg) % 3)),
                    Value::Float(-2.0),
                ])
                .unwrap();
            }
        }
        db.set_base_level_name(2, "stop");
        db.attach_str_level(2, "zone", |s| format!("Z{}", &s[s.len() - 1..]))
            .unwrap();
        db
    }

    fn policies() -> (VendorRelease, VendorRelease) {
        (
            VendorRelease {
                vendor: "subway".into(),
                time_attr: 0,
                subject_attr: 1,
                released_dims: vec![(2, 1)], // zone level only
            },
            VendorRelease {
                vendor: "bus".into(),
                time_attr: 0,
                subject_attr: 1,
                released_dims: vec![(2, 1)],
            },
        )
    }

    #[test]
    fn pseudonyms_link_across_vendors_without_raw_ids() {
        let house = ClearingHouse { salt: 0xfeed };
        let subway = vendor_db(1, &[100, 200, 300]);
        let bus = vendor_db(2, &[200, 300, 400]);
        let (p_subway, p_bus) = policies();
        let r1 = release(&subway, &p_subway, &house).unwrap();
        let r2 = release(&bus, &p_bus, &house).unwrap();
        // Same card ⇒ same pseudonym across vendors.
        assert_eq!(shared_subjects(&[r1.clone(), r2.clone()]), 2); // cards 200, 300
                                                                   // Raw ids never appear in the release.
        for e in r1.iter().chain(&r2) {
            assert!(![100, 200, 300, 400].contains(&e.subject));
        }
        // A different salt unlinks everything (no join possible without it).
        let other = ClearingHouse { salt: 0xbeef };
        let r1b = release(&subway, &p_subway, &other).unwrap();
        assert_ne!(r1[0].subject, r1b[0].subject);
    }

    #[test]
    fn released_dims_are_coarsened_and_private_columns_absent() {
        let house = ClearingHouse { salt: 7 };
        let subway = vendor_db(1, &[100]);
        let (p_subway, _) = policies();
        let r = release(&subway, &p_subway, &house).unwrap();
        let (subjects, domains) = release_audit(&r);
        assert_eq!(subjects, 1);
        // Only zones leave the vendor — never stop names, never amounts.
        assert_eq!(domains.len(), 1);
        for e in &r {
            assert!(e.dims[0].starts_with('Z'), "coarse zone only: {:?}", e.dims);
        }
    }

    #[test]
    fn merged_database_answers_transfer_queries() {
        let house = ClearingHouse { salt: 42 };
        let subway = vendor_db(1, &[100, 200, 300]);
        let bus = vendor_db(2, &[200, 300, 400]);
        let (p_subway, p_bus) = policies();
        let releases = vec![
            release(&subway, &p_subway, &house).unwrap(),
            release(&bus, &p_bus, &house).unwrap(),
        ];
        let merged = merge(&releases, &["zone"]).unwrap();
        assert!(linkage_check(&releases, &merged));
        // S-OLAP over the federation: subway→bus transfers (X, Y) by zone.
        let engine = Engine::new(merged);
        let vendor = engine.db().attr("vendor").unwrap();
        let zone = engine.db().attr("zone").unwrap();
        let template = PatternTemplate::new(
            PatternKind::Subsequence,
            &["X", "Y"],
            &[("X", zone, 0), ("Y", zone, 0)],
        )
        .unwrap();
        // One `db()` guard per statement: nesting two reads of the same
        // lock in one expression trips the lock witness.
        let subject = engine.db().attr("subject").unwrap();
        let time = engine.db().attr("time").unwrap();
        let spec = SCuboidSpec::new(
            template,
            vec![AttrLevel::new(subject, 0)],
            vec![SortKey {
                attr: time,
                ascending: true,
            }],
        )
        .with_mpred(
            MatchPred::cmp(0, vendor, CmpOp::Eq, "subway").and(MatchPred::cmp(
                1,
                vendor,
                CmpOp::Eq,
                "bus",
            )),
        );
        let out = engine.execute(&spec).unwrap();
        // Cards 200 and 300 rode both vendors (subway events precede bus
        // events by construction), so transfer cells exist.
        assert!(out.cuboid.total_count() >= 2, "{:?}", out.cuboid);
        // And a card that only rode the bus contributes nothing: slice to
        // the all-bus predicate flipped around must yield zero.
        let mut reversed = spec.clone();
        reversed.mpred = MatchPred::cmp(0, vendor, CmpOp::Eq, "bus").and(MatchPred::cmp(
            1,
            vendor,
            CmpOp::Eq,
            "subway",
        ));
        let rev = engine.execute(&reversed).unwrap();
        assert_eq!(rev.cuboid.total_count(), 0, "bus precedes subway nowhere");
    }

    #[test]
    fn merge_rejects_mismatched_arity() {
        let e = ReleasedEvent {
            subject: 1,
            time: 0,
            vendor: "x".into(),
            dims: vec!["a".into(), "b".into()],
        };
        assert!(merge(&[vec![e]], &["only-one"]).is_err());
    }
}
