//! # solap-core
//!
//! The S-OLAP engine — the primary contribution of "OLAP on Sequence Data"
//! (SIGMOD 2008), reproduced in Rust.
//!
//! S-OLAP extends OLAP to sequence data: a sequence can be characterised not
//! only by the attribute values of its constituting events but by the
//! substring/subsequence patterns it possesses, enabling **pattern-based
//! grouping and aggregation**. This crate implements:
//!
//! * [`spec::SCuboidSpec`] — the full S-cuboid specification (Figure 3):
//!   selection, clustering, sequence formation, sequence grouping, pattern
//!   grouping (template + cell restriction + matching predicate) and the
//!   aggregate function.
//! * [`cuboid::SCuboid`] — the computed sequence cuboid: cells keyed by
//!   global-dimension and pattern-dimension values.
//! * [`cb`] — the counter-based construction approach (§4.2.1, Figure 7).
//! * [`ii`] — the inverted-index approach (§4.2.2, Figures 9/15): on-demand
//!   index building, joins from the largest available prefix index,
//!   verification scans, and the P-ROLL-UP merge / P-DRILL-DOWN refinement
//!   fast paths.
//! * [`engine::Engine`] — the S-OLAP engine of Figure 6, wiring the
//!   sequence cache, index store and cuboid repository together.
//! * [`ops`] / [`session::Session`] — the six S-OLAP operations (APPEND,
//!   PREPEND, DE-TAIL, DE-HEAD, P-ROLL-UP, P-DRILL-DOWN) plus the classical
//!   roll-up/drill-down/slice on global dimensions, with interactive
//!   navigation state.
//! * [`lattice`] — the S-cube partial order (§3.4) and its
//!   non-summarizability.
//! * §6 extensions: [`iceberg`] (minimum-support cells), [`online`]
//!   (online aggregation with periodic approximate refreshes) and
//!   [`incremental`] (appending a new day of events without full rebuild).
//! * [`plan`] — cost-based planning over the S-cube lattice: a calibrated
//!   [`plan::CostModel`], a [`plan::Planner`] that enumerates CB / II /
//!   ancestor-reuse alternatives, and the index-materialization advisor
//!   (§4.2.2's open problem; the deprecated [`advisor`] façade remains for
//!   one release).
//! * Future-work prototypes the paper calls out: [`regexq`]
//!   (regular-expression pattern templates, §3.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod cb;
pub mod cuboid;
pub mod engine;
pub mod federation;
pub mod iceberg;
pub mod ii;
pub mod incremental;
pub mod lattice;
pub mod online;
pub mod ops;
pub mod plan;
pub mod regexq;
pub mod repo;
pub mod session;
pub mod spec;
pub mod stats;

pub use cuboid::{CellKey, SCuboid};
pub use engine::{
    DbGuard, Engine, EngineBuilder, EngineConfig, QueryOutput, StoreReport, Strategy,
};
pub use ops::Op;
pub use plan::{
    CostEstimate, CostModel, PlanAlternative, PlanChoice, PlanContext, PlanReport, Planner,
    QueryPlan,
};
pub use repo::{RepoStats, RetentionPolicy};
pub use session::{HistoryEntry, Session};
pub use spec::SCuboidSpec;
pub use stats::ExecStats;
