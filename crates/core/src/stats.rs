//! Execution statistics — the quantities the paper's evaluation reports.
//!
//! Table 1 and Figure 16 report, per query: runtime, the **number of
//! sequences scanned** (distinct sequences fetched during the query — CB
//! rescans the whole dataset every time, II only touches sequences in
//! relevant lists), and the size of the inverted indices built.

use std::time::Duration;

use solap_eventdb::Sid;
use solap_index::Bitmap;

/// Statistics of one query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Which strategy produced the result (`"CB"`, `"II"`, `"cache"`).
    pub strategy: &'static str,
    /// Distinct sequences fetched while answering the query (index builds,
    /// verification scans and per-list counting all mark sequences).
    pub sequences_scanned: u64,
    /// Inverted indices built during this query (count).
    pub indices_built: u64,
    /// Bytes of inverted indices built during this query.
    pub index_bytes_built: usize,
    /// Index joins performed (Figure 15 line 8).
    pub index_joins: u64,
    /// Whether the cuboid repository answered the query outright.
    pub cuboid_cache_hit: bool,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl ExecStats {
    /// Accumulates another execution's statistics (for cumulative series
    /// like Figure 16's).
    pub fn accumulate(&mut self, other: &ExecStats) {
        self.sequences_scanned += other.sequences_scanned;
        self.indices_built += other.indices_built;
        self.index_bytes_built += other.index_bytes_built;
        self.index_joins += other.index_joins;
        self.elapsed += other.elapsed;
    }
}

/// Tracks distinct sequences scanned during one query execution.
///
/// The same sequence may be touched by an index build, several verification
/// scans and the final counting pass; like the paper's accounting, it is
/// charged once per query.
#[derive(Debug, Default)]
pub struct ScanMeter {
    visited: Bitmap,
    count: u64,
}

impl ScanMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `sid` scanned; counts only first touches.
    pub fn touch(&mut self, sid: Sid) {
        if !self.visited.contains(sid) {
            self.visited.insert(sid);
            self.count += 1;
        }
    }

    /// Marks a contiguous range of sids scanned (whole-group scans).
    pub fn touch_range(&mut self, sids: impl Iterator<Item = Sid>) {
        for s in sids {
            self.touch(s);
        }
    }

    /// Distinct sequences scanned so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another meter into this one, preserving the distinct-count
    /// semantics: a sequence touched by several workers is still charged
    /// once. This is how per-worker meters from parallel construction are
    /// summed at join time.
    pub fn absorb(&mut self, other: &ScanMeter) {
        for sid in other.visited.iter() {
            self.touch(sid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_distinct() {
        let mut m = ScanMeter::new();
        for s in [1, 2, 2, 1, 700, 700] {
            m.touch(s);
        }
        assert_eq!(m.count(), 3);
        m.touch_range(0..5);
        assert_eq!(m.count(), 6); // 0,3,4 new
    }

    #[test]
    fn absorb_preserves_distinct_counting() {
        let mut a = ScanMeter::new();
        a.touch_range([1, 2, 3].into_iter());
        let mut b = ScanMeter::new();
        b.touch_range([3, 4, 700].into_iter());
        a.absorb(&b);
        assert_eq!(a.count(), 5, "overlap charged once");
        a.absorb(&ScanMeter::new());
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn accumulate_sums() {
        let mut a = ExecStats {
            sequences_scanned: 10,
            indices_built: 1,
            index_bytes_built: 100,
            index_joins: 2,
            elapsed: Duration::from_millis(5),
            ..Default::default()
        };
        let b = ExecStats {
            sequences_scanned: 5,
            indices_built: 0,
            index_bytes_built: 50,
            index_joins: 1,
            elapsed: Duration::from_millis(3),
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.sequences_scanned, 15);
        assert_eq!(a.index_bytes_built, 150);
        assert_eq!(a.index_joins, 3);
        assert_eq!(a.elapsed, Duration::from_millis(8));
    }
}
